"""Integration tests: oracle, manual simulation, and the full case study.

These assert the *shape* of the paper's results (who wins, by roughly what
factor), not bit-exact numbers.
"""

import pytest

from repro.evaluation import (
    ALL_MODELS,
    run_manual_evaluation,
    still_vulnerable,
)
from repro.evaluation.figures import fig3_complexity, fig3_values, quality_summary
from repro.evaluation.manual import EVALUATORS, evaluator_agreement_matrix
from repro.evaluation.oracle import is_cwe_present, present_cwes, supported_cwes
from repro.evaluation.tables import generation_stats, table2_detection, table2_values, table3_patching
from repro.metrics.stats import wilcoxon_rank_sum


class TestOracle:
    def test_supported_cwes_cover_corpus(self, flat_samples):
        supported = set(supported_cwes())
        needed = {c for s in flat_samples for c in s.true_cwe_ids}
        assert needed <= supported

    def test_unknown_cwe_is_false(self):
        assert not is_cwe_present("eval(x)", "CWE-787")

    def test_present_cwes_subset(self):
        source = "pickle.loads(x)\neval(y)\n"
        assert present_cwes(source, ("CWE-502", "CWE-095", "CWE-089")) == (
            "CWE-502",
            "CWE-095",
        )

    def test_still_vulnerable(self):
        assert still_vulnerable("pickle.loads(x)", ("CWE-502",))
        assert not still_vulnerable("json.loads(x)", ("CWE-502",))


class TestManualEvaluation:
    def test_discrepancy_rate_about_3_percent(self, flat_samples):
        result = run_manual_evaluation(flat_samples)
        assert 0.015 <= result.discrepancy_rate <= 0.06  # paper: ~3 %

    def test_full_final_consensus(self, flat_samples):
        result = run_manual_evaluation(flat_samples)
        assert result.consensus_rate == 1.0

    def test_final_verdict_is_truth(self, flat_samples):
        result = run_manual_evaluation(flat_samples[:50])
        for sample in flat_samples[:50]:
            assert result.verdict(sample.sample_id) == sample.is_vulnerable

    def test_deterministic(self, flat_samples):
        a = run_manual_evaluation(flat_samples[:100])
        b = run_manual_evaluation(flat_samples[:100])
        assert [j.votes for j in a.judgements] == [j.votes for j in b.judgements]

    def test_agreement_matrix(self, flat_samples):
        result = run_manual_evaluation(flat_samples)
        matrix = evaluator_agreement_matrix(result)
        assert len(matrix) == 3  # pairs of 3 evaluators
        assert all(0.9 <= v <= 1.0 for v in matrix.values())

    def test_evaluator_roster(self):
        assert len(EVALUATORS) == 3


class TestCaseStudyShape:
    """The headline reproduction claims, asserted as ranges."""

    def test_patchitpy_headline(self, case_study):
        matrix = case_study.detection["patchitpy"][ALL_MODELS]
        assert matrix.precision == pytest.approx(0.97, abs=0.015)
        assert matrix.recall == pytest.approx(0.88, abs=0.02)
        assert matrix.f1 == pytest.approx(0.93, abs=0.015)
        assert matrix.accuracy == pytest.approx(0.89, abs=0.015)

    def test_patchitpy_best_f1_and_accuracy(self, case_study):
        ours = case_study.detection["patchitpy"][ALL_MODELS]
        for tool, per_model in case_study.detection.items():
            if tool == "patchitpy":
                continue
            assert ours.f1 > per_model[ALL_MODELS].f1, tool
            assert ours.accuracy > per_model[ALL_MODELS].accuracy, tool

    def test_static_tools_low_recall(self, case_study):
        for tool in ("codeql", "semgrep", "bandit"):
            matrix = case_study.detection[tool][ALL_MODELS]
            assert matrix.recall < 0.6, tool
            assert matrix.precision > 0.85, tool

    def test_llms_high_recall_low_precision(self, case_study):
        for tool in ("chatgpt-4o", "claude-3.7", "gemini-2.0"):
            matrix = case_study.detection[tool][ALL_MODELS]
            assert matrix.recall >= 0.85, tool
            assert matrix.precision < 0.90, tool

    def test_vulnerable_counts_match_paper(self, case_study):
        assert case_study.vulnerable_counts == {
            "copilot": 169,
            "claude": 126,
            "deepseek": 166,
        }

    def test_63_distinct_cwes(self, case_study):
        assert len(case_study.cwe_frequency) == 63

    def test_repair_rates(self, case_study):
        ours = case_study.patching["patchitpy"]
        assert ours[ALL_MODELS].patched_detected == pytest.approx(0.80, abs=0.03)
        assert ours[ALL_MODELS].patched_total == pytest.approx(0.70, abs=0.03)
        # per-model ordering: Claude > DeepSeek > Copilot (Table III)
        assert (
            ours["claude"].patched_detected
            > ours["deepseek"].patched_detected
            > ours["copilot"].patched_detected
        )

    def test_patchitpy_out_repairs_llms(self, case_study):
        ours = case_study.patching["patchitpy"][ALL_MODELS].patched_detected
        for tool in ("chatgpt-4o", "claude-3.7", "gemini-2.0"):
            assert ours > case_study.patching[tool][ALL_MODELS].patched_detected, tool

    def test_detected_cwe_counts(self, case_study):
        # paper: 51 / 41 / 47 distinct CWEs for Copilot / Claude / DeepSeek;
        # the shape claim is that Claude's corpus (fewest vulnerable
        # samples) exposes the fewest distinct CWEs
        counts = {m: len(c) for m, c in case_study.detected_cwes.items()}
        assert counts["claude"] == min(counts.values())
        assert all(35 <= n <= 55 for n in counts.values())

    def test_fig3_shape(self, case_study):
        values = fig3_values(case_study)
        generated = values["generated"]["mean"]
        assert values["patchitpy"]["mean"] == pytest.approx(generated, rel=0.05)
        for llm in ("chatgpt-4o", "claude-3.7", "gemini-2.0"):
            assert values[llm]["mean"] > generated * 1.2, llm
        # claude-3.7 inflates complexity the most (paper ordering)
        assert values["claude-3.7"]["mean"] >= values["gemini-2.0"]["mean"]
        assert values["gemini-2.0"]["mean"] >= values["chatgpt-4o"]["mean"] * 0.95

    def test_fig3_significance(self, case_study):
        baseline = case_study.complexity["generated"]
        ours = wilcoxon_rank_sum(case_study.complexity["patchitpy"], baseline)
        assert not ours.significant()
        for llm in ("chatgpt-4o", "claude-3.7", "gemini-2.0"):
            test = wilcoxon_rank_sum(case_study.complexity[llm], baseline)
            assert test.significant(), llm

    def test_quality_equivalence(self, case_study):
        reference = case_study.quality["ground-truth"]
        for group in ("patchitpy", "chatgpt-4o", "claude-3.7", "gemini-2.0"):
            test = wilcoxon_rank_sum(case_study.quality[group], reference)
            assert not test.significant(), group

    def test_manual_sim_included(self, case_study):
        assert case_study.manual is not None
        assert 0.01 <= case_study.manual.discrepancy_rate <= 0.06


class TestRenderers:
    def test_table2_renders(self, case_study):
        text = table2_detection(case_study)
        assert "patchitpy" in text and "All models" in text
        assert text.count("|") > 50

    def test_table2_values_structure(self, case_study):
        values = table2_values(case_study)
        assert values["Precision"]["patchitpy"][ALL_MODELS] > 0.9

    def test_table3_renders(self, case_study):
        text = table3_patching(case_study)
        assert "Patched [Det.]" in text and "Patched [Tot.]" in text

    def test_generation_stats_renders(self, case_study):
        text = generation_stats(case_study)
        assert "169/203" in text
        assert "distinct CWEs generated: 63" in text

    def test_fig3_renders(self, case_study):
        text = fig3_complexity(case_study)
        assert "Wilcoxon" in text and "#" in text

    def test_quality_summary_renders(self, case_study):
        text = quality_summary(case_study)
        assert "ground-truth" in text
