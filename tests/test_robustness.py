"""Failure-injection and adversarial-input robustness tests.

The engine is exposed to untrusted, machine-generated text; it must stay
total (never raise), bounded (no catastrophic backtracking), and sane on
encodings and pathological structure.
"""

import time

import pytest

from repro.baselines import MiniBandit, MiniCodeQL, MiniSemgrep
from repro.core import PatchitPy
from repro.metrics.complexity import cyclomatic_complexity
from repro.metrics.quality import check_quality
from repro.standardize import standardize

ENGINE = PatchitPy()

ADVERSARIAL = [
    "",  # empty
    "\x00\x00\x00",  # null bytes
    "﻿import os\n",  # BOM
    "x = 1\r\ny = 2\r\n",  # CRLF
    "é = 'ünïcode'\n变量 = 1\n",  # unicode identifiers
    "x" * 100_000,  # one enormous token
    "(" * 2_000,  # deep open parens
    "'" + "a" * 50_000,  # unterminated huge string
    "f'" + "{x}" * 5_000 + "'",  # f-string with thousands of fields
    "# " + "A" * 100_000,  # enormous comment
    "\n" * 10_000,  # only newlines
    "eval(" * 500,  # nested eval prefixes, unbalanced
    "execute(\"SELECT '" + "((" * 300 + "\")",  # quote/paren chaos in SQL-ish text
]


class TestEngineRobustness:
    @pytest.mark.parametrize("payload", ADVERSARIAL, ids=range(len(ADVERSARIAL)))
    def test_detect_total(self, payload):
        ENGINE.detect(payload)

    @pytest.mark.parametrize("payload", ADVERSARIAL, ids=range(len(ADVERSARIAL)))
    def test_patch_total(self, payload):
        assert isinstance(ENGINE.patch(payload).patched, str)

    def test_no_catastrophic_backtracking(self):
        # worst-case inputs for the alternation-heavy SQL/command rules
        hostile = 'cur.execute("' + "%s " * 400 + '" % (' + "x," * 400 + "))\n"
        started = time.perf_counter()
        ENGINE.detect(hostile)
        assert time.perf_counter() - started < 2.0

    def test_long_single_line(self):
        line = "value = " + " + ".join(f"f{i}()" for i in range(2000)) + "\n"
        started = time.perf_counter()
        ENGINE.detect(line)
        assert time.perf_counter() - started < 2.0


class TestSubsystemRobustness:
    @pytest.mark.parametrize("payload", ADVERSARIAL, ids=range(len(ADVERSARIAL)))
    def test_standardizer_total(self, payload):
        standardize(payload)

    @pytest.mark.parametrize("payload", ADVERSARIAL, ids=range(len(ADVERSARIAL)))
    def test_complexity_total(self, payload):
        assert cyclomatic_complexity(payload) >= 0

    @pytest.mark.parametrize("payload", ADVERSARIAL, ids=range(len(ADVERSARIAL)))
    def test_quality_total(self, payload):
        report = check_quality(payload)
        assert 0.0 <= report.score <= 10.0

    @pytest.mark.parametrize("payload", ADVERSARIAL, ids=range(len(ADVERSARIAL)))
    def test_baselines_total(self, payload):
        MiniBandit().analyze_source(payload)
        MiniSemgrep().analyze_source(payload)
        MiniCodeQL().analyze_source(payload)


class TestSeedSensitivity:
    """The paper's conclusions must not hinge on the default seed."""

    @pytest.mark.parametrize("seed", [7, 1234])
    def test_shape_holds_across_seeds(self, seed):
        from repro.baselines import MiniBandit
        from repro.generators import generate_all_models
        from repro.metrics import from_verdicts

        samples = [s for items in generate_all_models(seed).values() for s in items]
        engine_matrix = from_verdicts(
            (s.is_vulnerable, ENGINE.is_vulnerable(s.source)) for s in samples
        )
        bandit = MiniBandit()
        bandit_matrix = from_verdicts(
            (s.is_vulnerable, bandit.is_vulnerable(s)) for s in samples
        )
        assert engine_matrix.f1 > bandit_matrix.f1
        assert engine_matrix.precision > 0.9
        assert engine_matrix.recall > 0.8
