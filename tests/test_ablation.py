"""Tests for the ablation studies (E8/E9/E10 support)."""

import pytest

from repro.evaluation.ablation import (
    guards_ablation,
    import_insertion_ablation,
    incomplete_snippet_study,
    ruleset_size_ablation,
    standardization_ablation,
    strip_guards,
)
from repro.core.rules import default_ruleset


class TestGuards:
    def test_strip_guards_removes_all(self):
        stripped = strip_guards(default_ruleset())
        assert all(r.guards == () for r in stripped)
        assert len(stripped) == 85

    def test_guards_buy_precision(self):
        result = guards_ablation()
        with_guards = result["with-guards"]
        without = result["without-guards"]
        assert with_guards.precision > without.precision
        # removing vetoes can only add matches
        assert without.recall >= with_guards.recall


class TestImportInsertion:
    def test_insertion_removes_dangling_imports(self):
        result = import_insertion_ablation()
        assert result.patched_samples > 100
        assert (
            result.missing_import_samples_without_insertion
            > 5 * max(result.missing_import_samples_with_insertion, 1)
        )


class TestStandardization:
    def test_standardization_lengthens_lcs(self):
        result = standardization_ablation()
        assert result.pairs >= 20
        assert result.mean_lcs_ratio_standardized > result.mean_lcs_ratio_raw


class TestIncompleteStudy:
    def test_ast_tools_fail_on_incomplete(self):
        rows = {row.tool: row for row in incomplete_snippet_study()}
        # the paper's central mechanism: AST tools see nothing in snippets
        assert rows["codeql"].recall_incomplete == 0.0
        assert rows["bandit"].recall_incomplete == 0.0
        # PatchitPy's pattern matching barely notices incompleteness
        assert rows["patchitpy"].recall_incomplete >= 0.75
        assert rows["patchitpy"].recall_parseable >= 0.8
        # Semgrep's textual matching also survives snippets
        assert rows["semgrep"].recall_incomplete > 0.2


class TestRulesetSize:
    def test_extended_trades_precision_for_recall(self):
        result = ruleset_size_ablation()
        default = result["default-85"]
        extended = result["extended"]
        assert extended.recall >= default.recall
        assert extended.precision <= default.precision
