"""Tests for the PatchitPy engine: detect → patch → verify."""

import pytest

from repro import PatchitPy, default_ruleset
from repro.core.patcher import apply_patches
from repro.core.rules import RuleSet
from repro.types import Patch, Span

SQLI = '''import sqlite3

def lookup(uid):
    conn = sqlite3.connect("db")
    cur = conn.cursor()
    cur.execute(f"SELECT * FROM users WHERE id = {uid}")
    return cur.fetchone()
'''

MULTI_VULN = '''from flask import Flask, request
import pickle

app = Flask(__name__)

@app.route("/load", methods=["POST"])
def load():
    state = pickle.loads(request.data)
    return f"<p>{state}</p>"

if __name__ == "__main__":
    app.run(debug=True)
'''


class TestDetect:
    def test_sql_injection_found(self, engine):
        findings = engine.detect(SQLI)
        assert any(f.cwe_id == "CWE-089" for f in findings)

    def test_clean_code_clean(self, engine):
        clean = 'import sqlite3\n\ndef f(uid):\n    cur.execute("SELECT * FROM t WHERE id=?", (uid,))\n'
        assert engine.detect(clean) == []

    def test_multi_vuln_all_found(self, engine):
        cwes = {f.cwe_id for f in engine.detect(MULTI_VULN)}
        assert {"CWE-502", "CWE-079", "CWE-209"} <= cwes

    def test_is_vulnerable(self, engine):
        assert engine.is_vulnerable(SQLI)
        assert not engine.is_vulnerable("print('hello')\n")

    def test_incomplete_snippet_still_detected(self, engine):
        incomplete = "```python\n" + SQLI + "```\n"
        assert engine.is_vulnerable(incomplete)

    def test_indented_fragment_still_detected(self, engine):
        indented = "\n".join("    " + line for line in SQLI.splitlines())
        assert engine.is_vulnerable(indented)


class TestPatch:
    def test_sql_injection_patched(self, engine):
        result = engine.patch(SQLI)
        assert 'cur.execute("SELECT * FROM users WHERE id = ?", (uid,))' in result.patched
        assert not engine.is_vulnerable(result.patched)

    def test_multi_vuln_fixed_point(self, engine):
        result = engine.patch(MULTI_VULN)
        assert engine.detect(result.patched) == []
        assert "json.loads(request.data)" in result.patched
        assert "escape(state)" in result.patched
        assert "debug=False" in result.patched

    def test_imports_inserted_once(self, engine):
        result = engine.patch(MULTI_VULN)
        assert result.patched.count("import json") == 1
        assert result.patched.count("from flask import escape") == 1

    def test_unused_import_pruned(self, engine):
        result = engine.patch(MULTI_VULN)
        assert "import pickle" not in result.patched

    def test_prune_can_be_disabled(self):
        engine = PatchitPy(prune_imports=False)
        result = engine.patch(MULTI_VULN)
        assert "import pickle" in result.patched

    def test_patch_idempotent(self, engine):
        once = engine.patch(SQLI).patched
        twice = engine.patch(once).patched
        assert once == twice

    def test_clean_input_unchanged(self, engine):
        clean = "def f():\n    return 1\n"
        result = engine.patch(clean)
        assert result.patched == clean
        assert not result.changed

    def test_unpatchable_findings_reported(self, engine):
        ssrf = (
            "import requests\nfrom flask import Flask, request\n"
            'data = requests.get(request.args.get("url"), timeout=5)\n'
        )
        result = engine.patch(ssrf)
        assert any(f.cwe_id == "CWE-918" for f in result.unpatchable)

    def test_detection_only_rule_leaves_source(self, engine):
        source = "exec(payload)\n"
        result = engine.patch(source)
        assert "exec(payload)" in result.patched

    def test_max_passes_validation(self):
        with pytest.raises(ValueError):
            PatchitPy(max_passes=0)

    def test_applied_patch_metadata(self, engine):
        result = engine.patch(SQLI)
        assert result.applied
        assert all(p.rule_id.startswith("PIT-") for p in result.applied)


class TestRenderPatchesSpanAnchoring:
    """Regression: the search fallback must not render a patch from one
    match and splice it at another finding's stale span."""

    def test_stale_span_reanchors_to_actual_match(self, engine):
        source = "data = pickle.loads(blob)\n"
        [finding] = [f for f in engine.detect(source) if f.cwe_id == "CWE-502"]
        stale = finding.with_span(
            Span(finding.span.start - 3, finding.span.end - 3)
        )
        patches = engine.render_patches(source, [stale])
        assert len(patches) == 1
        # the patch is anchored where the pattern actually matched, not at
        # the stale span it was handed
        assert patches[0].span == finding.span
        patched = apply_patches(source, patches).source
        assert "json.loads(blob)" in patched
        assert "pickle.loads" not in patched

    def test_stale_span_does_not_corrupt_earlier_text(self, engine):
        source = "safe = 1  # placeholder\nx = pickle.loads(a)\n"
        [finding] = [f for f in engine.detect(source) if f.cwe_id == "CWE-502"]
        # a span pointing at the harmless first line: the pattern's only
        # match is later, so the patch must land there
        stale = finding.with_span(Span(0, 8))
        patches = engine.render_patches(source, [stale])
        assert len(patches) == 1
        patched = apply_patches(source, patches).source
        assert "safe = 1  # placeholder\n" in patched
        assert "json.loads(a)" in patched

    def test_exact_span_unchanged(self, engine):
        source = "data = pickle.loads(blob)\n"
        [finding] = [f for f in engine.detect(source) if f.cwe_id == "CWE-502"]
        patches = engine.render_patches(source, [finding])
        assert patches[0].span == finding.span


class TestAnalyze:
    def test_report_includes_patches(self, engine):
        report = engine.analyze(SQLI)
        assert report.findings and report.patches
        assert report.patched_source is not None

    def test_report_without_patching(self, engine):
        report = engine.analyze(SQLI, patch=False)
        assert report.findings and not report.patches

    def test_legacy_flag_warns_and_still_works(self, engine):
        with pytest.warns(DeprecationWarning, match="apply_patches_flag"):
            report = engine.analyze(SQLI, apply_patches_flag=False)
        assert report.findings and not report.patches
        with pytest.warns(DeprecationWarning):
            patched = engine.analyze(SQLI, apply_patches_flag=True)
        assert patched.patches


class TestApplyPatches:
    def test_ordered_application(self):
        source = "aaa bbb ccc"
        patches = [
            Patch("R1", "CWE-089", Span(0, 3), "XXX"),
            Patch("R2", "CWE-089", Span(8, 11), "YYY"),
        ]
        outcome = apply_patches(source, patches)
        assert outcome.source == "XXX bbb YYY"

    def test_overlap_skipped(self):
        source = "aaa bbb"
        patches = [
            Patch("R1", "CWE-089", Span(0, 5), "XXX"),
            Patch("R2", "CWE-089", Span(3, 7), "YYY"),
        ]
        outcome = apply_patches(source, patches)
        assert outcome.source == "XXXbb"
        assert len(outcome.skipped) == 1

    def test_import_insertion(self):
        source = "import os\n\nx = bad()\n"
        patches = [Patch("R1", "CWE-095", Span(15, 20), "good()", new_imports=("import ast",))]
        outcome = apply_patches(source, patches)
        assert "import ast" in outcome.source
        assert outcome.source.index("import ast") > outcome.source.index("import os")


class TestCorpusLevelInvariants:
    """Property-style invariants over the real generated corpus."""

    def test_patch_never_raises(self, engine, flat_samples):
        for sample in flat_samples[:150]:
            engine.patch(sample.source)

    def test_patched_not_worse(self, engine, flat_samples):
        # patching must never create rule matches that were absent before
        for sample in flat_samples[:150]:
            before = {f.rule_id for f in engine.detect(sample.source)}
            after = {f.rule_id for f in engine.detect(engine.patch(sample.source).patched)}
            assert after <= before

    def test_custom_ruleset_respected(self):
        single = RuleSet([default_ruleset().get("PIT-A08-01")])
        engine = PatchitPy(rules=single)
        assert engine.is_vulnerable("pickle.loads(x)")
        assert not engine.is_vulnerable("eval(x)")
