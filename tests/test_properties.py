"""Property-based tests (hypothesis) on core invariants."""

import ast
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PatchitPy
from repro.core.imports import insert_imports, prune_unused_imports
from repro.metrics.quality import clean_snippet
from repro.standardize import standardize
from repro.textutils.lcs import lcs_length, lcs_tokens, similarity_ratio
from repro.textutils.tokenizer import tokenize
from repro.types import Span, merge_spans

_ENGINE = PatchitPy()

# small python-flavoured text generator
_PYTHONISH = st.text(
    alphabet="abcdefgh_ ().,'\"=:\n0123456789{}fimport password eval",
    max_size=150,
)


class TestEngineTotality:
    @given(_PYTHONISH)
    @settings(max_examples=80, deadline=None)
    def test_detect_never_raises(self, text):
        _ENGINE.detect(text)

    @given(_PYTHONISH)
    @settings(max_examples=50, deadline=None)
    def test_patch_never_raises_and_terminates(self, text):
        result = _ENGINE.patch(text)
        assert isinstance(result.patched, str)

    @given(_PYTHONISH)
    @settings(max_examples=50, deadline=None)
    def test_patch_idempotent(self, text):
        once = _ENGINE.patch(text).patched
        assert _ENGINE.patch(once).patched == once


class TestSpanProperties:
    spans = st.builds(
        lambda a, b: Span(min(a, b), max(a, b)),
        st.integers(0, 500),
        st.integers(0, 500),
    )

    @given(st.lists(spans, max_size=20))
    def test_merge_is_disjoint_and_sorted(self, span_list):
        merged = merge_spans(span_list)
        for left, right in zip(merged, merged[1:]):
            assert left.end < right.start

    @given(st.lists(spans, max_size=20))
    def test_merge_preserves_coverage(self, span_list):
        merged = merge_spans(span_list)
        covered = set()
        for span in merged:
            covered.update(range(span.start, span.end))
        expected = set()
        for span in span_list:
            expected.update(range(span.start, span.end))
        assert covered == expected

    @given(spans, spans)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)


class TestLCSProperties:
    seqs = st.lists(st.sampled_from(["a", "b", "c", "(", ")", "="]), max_size=30)

    @given(seqs, seqs)
    @settings(max_examples=100, deadline=None)
    def test_lcs_le_min_length(self, a, b):
        assert lcs_length(a, b) <= min(len(a), len(b))

    @given(seqs)
    def test_lcs_with_self_is_identity(self, a):
        assert lcs_length(a, a) == len(a)

    @given(seqs, seqs)
    @settings(max_examples=100, deadline=None)
    def test_lcs_symmetric_length(self, a, b):
        assert lcs_length(a, b) == lcs_length(b, a)

    @given(seqs, seqs)
    @settings(max_examples=60, deadline=None)
    def test_similarity_bounds(self, a, b):
        ratio = similarity_ratio(a, b)
        assert 0.0 <= ratio <= 1.0

    @given(seqs, seqs)
    @settings(max_examples=60, deadline=None)
    def test_tokens_length_matches(self, a, b):
        assert len(lcs_tokens(a, b)) == lcs_length(a, b)


class TestStandardizerProperties:
    @given(_PYTHONISH)
    @settings(max_examples=60, deadline=None)
    def test_standardize_deterministic(self, text):
        assert standardize(text).text == standardize(text).text

    @given(_PYTHONISH)
    @settings(max_examples=60, deadline=None)
    def test_mapping_values_are_placeholders(self, text):
        result = standardize(text)
        for index, placeholder in enumerate(sorted(result.mapping.values(), key=lambda v: int(v[3:]))):
            assert placeholder == f"var{index}"


class TestImportProperties:
    modules = st.sampled_from(["os", "json", "ast", "hmac", "shlex", "secrets"])

    @given(st.lists(modules, max_size=5, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_inserted_imports_present_and_parse(self, names):
        statements = [f"import {n}" for n in names]
        out = insert_imports("x = 1\n", statements)
        ast.parse(out)
        for statement in statements:
            assert statement in out

    @given(st.lists(modules, max_size=5, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_prune_removes_everything_unused(self, names):
        source = "".join(f"import {n}\n" for n in names) + "\nvalue = 1\n"
        out = prune_unused_imports(source)
        for name in names:
            assert f"import {name}" not in out


class TestQualityCleanProperties:
    @given(_PYTHONISH)
    @settings(max_examples=60, deadline=None)
    def test_clean_snippet_total(self, text):
        cleaned = clean_snippet(text)
        assert isinstance(cleaned, str)

    def test_clean_preserves_valid_code(self):
        source = "def f(x):\n    return x + 1\n"
        assert ast.dump(ast.parse(clean_snippet(source))) == ast.dump(ast.parse(source))


class TestCorpusRoundtrip:
    def test_patched_corpus_subset_stays_text(self, flat_samples):
        rng = random.Random(0)
        for sample in rng.sample(flat_samples, 60):
            patched = _ENGINE.patch(sample.source).patched
            assert isinstance(patched, str) and patched

    def test_tokenizer_total_on_corpus(self, flat_samples):
        for sample in flat_samples[:100]:
            tokens = tokenize(sample.source)
            assert tokens
