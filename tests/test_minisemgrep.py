"""Unit tests for mini-Semgrep (pattern compiler + scanner)."""

import pytest

from repro.baselines.minisemgrep import RULES, MiniSemgrep, compile_pattern


def _rule_ids(source: str):
    return {f.rule_id for f in MiniSemgrep().analyze_source(source).findings}


class TestPatternCompiler:
    def test_literal_match(self):
        assert compile_pattern("os.system(").search("x = os.system(cmd)")

    def test_metavariable_binds_expression(self):
        compiled = compile_pattern("eval($EXPR)")
        match = compiled.search("result = eval(user_input)")
        assert match and match.group("mv_expr") == "user_input"

    def test_metavariable_binds_call(self):
        compiled = compile_pattern("redirect($T)")
        assert compiled.search('redirect(request.args.get("next"))')

    def test_metavariable_unification(self):
        compiled = compile_pattern("$X == $X")
        assert compiled.search("if token == token:")
        assert not compiled.search("if token == other:")

    def test_ellipsis_matches_args(self):
        compiled = compile_pattern("run(..., shell=True)")
        assert compiled.search('run("ls", cwd=d, shell=True)')
        assert compiled.search("run(shell=True)")

    def test_whitespace_flexible(self):
        compiled = compile_pattern("yaml.load($F)")
        assert compiled.search("yaml.load(  fh  )")

    def test_regex_metachars_escaped(self):
        compiled = compile_pattern("a[0].b(")
        assert compiled.search("a[0].b(x)")
        assert not compiled.search("a0.b(x)")


class TestRules:
    @pytest.mark.parametrize(
        "source,rule_id",
        [
            ("app.run(debug=True)", "python.flask.debug-enabled"),
            ('os.system(f"ping {h}")', "python.lang.security.dangerous-system-call"),
            ("subprocess.run(c, shell=True)", "python.lang.security.subprocess-shell-true"),
            ("eval(expr)", "python.lang.security.eval-detected"),
            ("pickle.loads(b)", "python.lang.security.pickle-load"),
            ("yaml.load(fh)", "python.lang.security.unsafe-yaml"),
            ("hashlib.md5(b'')", "python.lang.security.insecure-hash"),
            ("AES.MODE_ECB", "python.cryptography.insecure-cipher"),
            ("requests.get(u, verify=False)", "python.requests.no-verify"),
            ("tempfile.mktemp()", "python.tempfile.mktemp"),
            ('cur.execute(f"SELECT {x}")', "python.sqlalchemy.sqli-fstring"),
            ("render_template_string(t)", "python.flask.render-template-string"),
            ('redirect(request.args.get("n"))', "python.flask.open-redirect"),
            ('password = "s3cret99"', "python.lang.security.hardcoded-password"),
            ("ftplib.FTP(host)", "python.ftplib.cleartext"),
        ],
    )
    def test_rule_fires(self, source, rule_id):
        assert rule_id in _rule_ids(source)

    def test_requires_clause(self):
        # insecure-random only fires when a token context exists in file
        assert "python.lang.security.insecure-random" not in _rule_ids("random.choice(deck)")
        assert "python.lang.security.insecure-random" in _rule_ids(
            "token = random.choice(alphabet)"
        )

    def test_xss_rule_needs_request(self):
        assert "python.flask.directly-returned-fstring" not in _rule_ids('return f"<p>{x}</p>"')
        assert "python.flask.directly-returned-fstring" in _rule_ids(
            'v = request.args.get("v")\nreturn f"<p>{v}</p>"'
        )

    def test_rule_ids_unique(self):
        ids = [r.rule_id for r in RULES]
        assert len(set(ids)) == len(ids)

    def test_error_tolerant_on_snippets(self):
        # unlike the AST tools, patterns fire inside unparseable text
        report = MiniSemgrep().analyze_source("```python\neval(x)\n```")
        assert report.findings
        assert not report.parse_failed


class TestSuggestions:
    def test_fix_note_becomes_comment(self):
        report = MiniSemgrep().analyze_source("yaml.load(fh)")
        assert any("safe_load" in s.comment for s in report.suggestions)

    def test_suggestion_rate_near_paper(self, flat_samples):
        tool = MiniSemgrep()
        detected = suggested = 0
        for sample in flat_samples:
            report = tool.analyze(sample)
            if report.is_vulnerable:
                detected += 1
                if report.suggestions:
                    suggested += 1
        assert 0.12 <= suggested / detected <= 0.28  # paper: 19 %

    def test_no_code_modification_api(self):
        tool = MiniSemgrep()
        assert not tool.can_patch
        assert tool.patch(None) is None


class TestDedup:
    def test_overlapping_same_rule_once(self):
        report = MiniSemgrep().analyze_source("pickle.loads(pickle.loads(b))")
        ids = [f.rule_id for f in report.findings if f.rule_id.endswith("pickle-load")]
        assert len(ids) >= 1
