"""Tests for the per-category breakdown analysis."""

from repro.cwe import OwaspCategory
from repro.evaluation.breakdown import CategoryRow, category_breakdown, render_breakdown


class TestCategoryRow:
    def test_rates(self):
        row = CategoryRow(OwaspCategory.A03_INJECTION, vulnerable=10, detected=8, repaired=6)
        assert row.recall == 0.8
        assert row.repair_rate == 0.75

    def test_zero_division_safe(self):
        row = CategoryRow(OwaspCategory.A10_SSRF)
        assert row.recall == 0.0 and row.repair_rate == 0.0


class TestBreakdown:
    def test_counts_conserved(self, flat_samples, engine):
        rows = category_breakdown(flat_samples, engine, include_repair=False)
        total = sum(row.vulnerable for row in rows)
        labelled = sum(1 for s in flat_samples if s.is_vulnerable)
        assert total == labelled  # every vulnerable sample maps to a category

    def test_detected_bounded(self, flat_samples, engine):
        for row in category_breakdown(flat_samples, engine, include_repair=False):
            assert 0 <= row.detected <= row.vulnerable

    def test_render(self, flat_samples, engine):
        rows = category_breakdown(flat_samples, engine, include_repair=False)
        text = render_breakdown(rows)
        assert "A03" in text and "recall" in text
