"""Tests for the persistent scan server (``repro.server``).

Every test runs a real :class:`~repro.server.PatchitPyServer` on a
loopback socket via :class:`~repro.server.BackgroundServer` and talks to
it with the stdlib :class:`~repro.server.ServerClient` — round-tripping
the actual HTTP framing, not calling handlers directly.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import (
    BackgroundServer,
    LanguageServer,
    PatchitPy,
    PatchitPyServer,
    ScanMetrics,
    ServerClient,
    ServerConfig,
    ServerError,
    ServerTransport,
)
from repro.server.daemon import build_serve_parser, config_from_args

VULN = "import pickle\n\ndata = pickle.loads(blob)\napp.run(debug=True)\n"
SAFE = "x = 1\n"


@pytest.fixture(scope="module")
def running_server():
    """One shared warm server for the read-only round-trip tests."""
    server = PatchitPyServer(config=ServerConfig(port=0))
    with BackgroundServer(server) as handle:
        with ServerClient(port=handle.port) as client:
            yield server, client


class SlowEngine(PatchitPy):
    """An engine whose detect stalls — for deadline-expiry tests."""

    def detect(self, source, metrics=None, trace=None):
        time.sleep(0.5)
        return super().detect(source, metrics=metrics, trace=trace)


class TestEndpointRoundTrips:
    def test_healthz_reports_warm_engine(self, running_server):
        server, client = running_server
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["rules"] == len(server.engine.rules)
        assert health["pool"] == "thread"
        assert health["queue_depth"] == server.config.queue_depth

    def test_analyze_matches_inprocess_detect(self, running_server):
        server, client = running_server
        payload = client.analyze(VULN)
        expected = server.engine.detect(VULN)
        assert payload["vulnerable"] is True
        assert len(payload["findings"]) == len(expected)
        got_rules = sorted(f["rule_id"] for f in payload["findings"])
        assert got_rules == sorted(f.rule_id for f in expected)

    def test_analyze_safe_snippet(self, running_server):
        _, client = running_server
        payload = client.analyze(SAFE)
        assert payload["vulnerable"] is False
        assert payload["findings"] == []

    def test_analyze_with_patch_matches_engine_patch(self, running_server):
        server, client = running_server
        payload = client.analyze(VULN, patch=True)
        result = server.engine.patch(VULN)
        assert payload["patched_source"] == result.patched
        assert payload["patches_applied"] == len(result.applied)
        assert payload["patches"], "rendered patches travel on the wire"
        for patch in payload["patches"]:
            assert set(patch) >= {"rule_id", "span", "replacement"}

    def test_analyze_trace_returns_events(self, running_server):
        _, client = running_server
        payload = client.analyze(VULN, trace=True)
        kinds = {event["kind"] for event in payload["trace_events"]}
        assert "rule" in kinds

    def test_batch_preserves_ids_and_order(self, running_server):
        _, client = running_server
        payload = client.batch([VULN, SAFE, VULN])
        assert payload["count"] == 3
        assert payload["failed"] == 0
        assert [item["id"] for item in payload["results"]] == [0, 1, 2]
        assert [item["vulnerable"] for item in payload["results"]] == [
            True,
            False,
            True,
        ]

    def test_scan_endpoint_is_incremental_across_requests(self, tmp_path):
        (tmp_path / "bad.py").write_text(VULN)
        (tmp_path / "ok.py").write_text(SAFE)
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                cold = client.scan(str(tmp_path))
                warm = client.scan(str(tmp_path))
        assert cold["files_scanned"] == 2
        assert cold["cache_misses"] == 2 and cold["cache_hits"] == 0
        # second request hits the cache the daemon kept open
        assert warm["cache_hits"] == 2 and warm["cache_misses"] == 0
        assert warm["total_findings"] == cold["total_findings"] >= 1
        # vulnerable files travel with their findings; clean ones do not
        assert [f["path"] for f in warm["files"]] == [str(tmp_path / "bad.py")]

    def test_every_response_carries_a_trace_id(self, running_server):
        _, client = running_server
        conn = client._connection()
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        response.read()
        trace_id = response.getheader("X-Patchitpy-Trace-Id")
        assert trace_id and len(trace_id) == 16


class TestObservabilityEndpoints:
    def _raw(self, client, method, path, headers=None, body=None):
        conn = client._connection()
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response, response.read()

    def test_caller_trace_id_is_echoed(self, running_server):
        _, client = running_server
        response, _ = self._raw(
            client, "GET", "/healthz", headers={"X-Trace-Id": "ide-session.42"}
        )
        assert response.getheader("X-Patchitpy-Trace-Id") == "ide-session.42"

    def test_malformed_trace_id_is_replaced(self, running_server):
        _, client = running_server
        response, _ = self._raw(
            client, "GET", "/healthz", headers={"X-Trace-Id": "bad id with spaces!"}
        )
        echoed = response.getheader("X-Patchitpy-Trace-Id")
        assert echoed != "bad id with spaces!"
        assert len(echoed) == 16

    def test_trace_id_echoed_on_error_responses(self, running_server):
        _, client = running_server
        response, _ = self._raw(
            client, "GET", "/no/such/path", headers={"X-Trace-Id": "err-trace-1"}
        )
        assert response.status == 404
        assert response.getheader("X-Patchitpy-Trace-Id") == "err-trace-1"

    def test_statusz_serves_html_dashboard(self, running_server):
        _, client = running_server
        client.analyze(VULN)  # guarantee at least one datapoint in the window
        response, body = self._raw(client, "GET", "/statusz")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/html")
        html = body.decode("utf-8")
        assert html.startswith("<!doctype html>")
        assert "/v1/analyze" in html
        assert "p95" in html

    def test_client_statusz_helper(self, running_server):
        _, client = running_server
        assert "statusz" in client.statusz()

    def test_metrics_exposes_latency_histogram_families(self, running_server):
        _, client = running_server
        client.analyze(VULN)
        text = client.metrics_text()
        assert "# TYPE patchitpy_server_request_seconds histogram" in text
        assert 'patchitpy_server_request_seconds_bucket{endpoint="/v1/analyze",le="+Inf"}' in text
        assert "patchitpy_server_request_seconds_count" in text
        assert "# TYPE patchitpy_phase_seconds histogram" in text

    def test_access_log_emits_one_json_line_per_request(self, capfd):
        server = PatchitPyServer(config=ServerConfig(port=0, access_log=True))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                client.analyze(VULN, trace_id="log-line-test")
        lines = [
            line
            for line in capfd.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        records = [json.loads(line) for line in lines]
        mine = [r for r in records if r.get("trace_id") == "log-line-test"]
        assert len(mine) == 1
        record = mine[0]
        assert record["method"] == "POST"
        assert record["path"] == "/v1/analyze"
        assert record["status"] == 200
        assert record["bytes"] > 0
        assert record["duration_ms"] >= 0
        assert "handler_ms" in record and "queue_wait_ms" in record

    def test_rolling_window_counts_requests(self, running_server):
        server, client = running_server
        before = server.window.window(300.0).total("requests//v1/analyze")
        client.analyze(SAFE)
        snap = server.window.window(300.0)
        assert snap.total("requests//v1/analyze") == before + 1
        assert snap.quantile("latency//v1/analyze", 0.5) is not None

    def test_window_geometry_is_configurable(self):
        config = ServerConfig(port=0, window_interval_s=1.0, window_slots=7)
        server = PatchitPyServer(config=config)
        assert server.window.slots == 7
        assert server.window.capacity_s == pytest.approx(7.0)


class TestErrorHandling:
    def test_unknown_path_is_404(self, running_server):
        _, client = running_server
        with pytest.raises(ServerError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404

    def test_wrong_method_is_405(self, running_server):
        _, client = running_server
        with pytest.raises(ServerError) as info:
            client._request("GET", "/v1/analyze")
        assert info.value.status == 405

    def test_missing_source_is_400(self, running_server):
        _, client = running_server
        with pytest.raises(ServerError) as info:
            client._request("POST", "/v1/analyze", {"patch": True})
        assert info.value.status == 400
        assert "source" in info.value.payload["error"]

    def test_invalid_json_body_is_400(self, running_server):
        _, client = running_server
        conn = client._connection()
        conn.request(
            "POST",
            "/v1/analyze",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_oversized_body_is_413(self):
        server = PatchitPyServer(config=ServerConfig(port=0, max_body_bytes=64))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                with pytest.raises(ServerError) as info:
                    client.analyze("x = 1\n" * 100)
        assert info.value.status == 413

    def test_scan_of_missing_root_is_400(self, running_server):
        _, client = running_server
        with pytest.raises(ServerError) as info:
            client.scan("/no/such/directory/anywhere")
        assert info.value.status == 400


class TestBackpressure:
    def test_batch_beyond_queue_depth_is_429(self):
        server = PatchitPyServer(config=ServerConfig(port=0, queue_depth=2))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                with pytest.raises(ServerError) as info:
                    client.batch([VULN] * 5)
                # capacity-sized work still goes through afterwards
                ok = client.batch([VULN, SAFE])
                health = client.healthz()
        assert info.value.status == 429
        assert "queue depth" in info.value.payload["error"]
        assert ok["count"] == 2
        assert health["queued"] == 0

    def test_429_when_slots_are_occupied(self):
        server = PatchitPyServer(
            engine=SlowEngine(), config=ServerConfig(port=0, queue_depth=1)
        )
        statuses = []
        with BackgroundServer(server) as handle:

            def occupy():
                with ServerClient(port=handle.port) as inner:
                    inner.analyze(VULN)

            worker = threading.Thread(target=occupy)
            worker.start()
            time.sleep(0.15)  # let the slow request claim the only slot
            with ServerClient(port=handle.port) as client:
                try:
                    client.analyze(SAFE)
                    statuses.append(200)
                except ServerError as error:
                    statuses.append(error.status)
            worker.join()
        assert statuses == [429]

    def test_rejections_are_counted(self):
        server = PatchitPyServer(config=ServerConfig(port=0, queue_depth=1))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                with pytest.raises(ServerError):
                    client.batch([VULN] * 3)
                text = client.metrics_text()
        assert "patchitpy_server_responses_4xx 1" in text


class TestDeadlines:
    def test_deadline_expiry_is_504(self):
        server = PatchitPyServer(engine=SlowEngine(), config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                with pytest.raises(ServerError) as info:
                    client.analyze(VULN, deadline_ms=50)
                # the server survives the expiry and keeps answering
                assert client.healthz()["status"] == "ok"
        assert info.value.status == 504

    def test_generous_deadline_succeeds(self):
        server = PatchitPyServer(engine=SlowEngine(), config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                payload = client.analyze(VULN, deadline_ms=30_000)
        assert payload["vulnerable"] is True

    def test_non_numeric_deadline_is_400(self, running_server):
        _, client = running_server
        with pytest.raises(ServerError) as info:
            client._request("POST", "/v1/analyze", {"source": SAFE, "deadline_ms": "soon"})
        assert info.value.status == 400


class TestGracefulDrain:
    def test_inflight_request_completes_during_drain(self):
        server = PatchitPyServer(engine=SlowEngine(), config=ServerConfig(port=0))
        handle = BackgroundServer(server).start()
        outcome = {}

        def slow_request():
            with ServerClient(port=handle.port) as client:
                outcome["payload"] = client.analyze(VULN)

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.15)  # the slow detect is now in flight
        handle.stop()  # SIGTERM path: drain, then stop
        worker.join(timeout=30)
        assert outcome["payload"]["vulnerable"] is True
        assert server.draining is True

    def test_draining_server_refuses_new_analysis(self):
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                client.analyze(SAFE)
            server.draining = True  # simulate mid-drain arrival
            with ServerClient(port=handle.port) as client:
                with pytest.raises(ServerError) as info:
                    client.analyze(SAFE)
                health = client.healthz()
            server.draining = False
        assert info.value.status == 503
        assert health["status"] == "draining"

    def test_drain_closes_open_caches(self, tmp_path):
        (tmp_path / "bad.py").write_text(VULN)
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                client.scan(str(tmp_path))
            caches = list(server._caches.values())
        assert caches and all(cache.closed for cache in caches)
        # the persisted store makes the next cold scan warm
        reopened = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(reopened) as handle:
            with ServerClient(port=handle.port) as client:
                warm = client.scan(str(tmp_path))
        assert warm["cache_hits"] == 1


class TestMetricsParity:
    def test_server_metrics_match_inprocess_collector(self):
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                client.analyze(VULN)
                text = client.metrics_text()
        collector = ScanMetrics()
        engine = PatchitPy(metrics=collector)
        engine.detect(VULN)
        # the same detect counters the CLI --metrics export would carry
        assert f"patchitpy_detect_calls {collector.counters['detect_calls']}" in text
        assert f"patchitpy_findings {collector.counters['findings']}" in text
        for rule_id in {f.rule_id for f in engine.detect(VULN)}:
            assert f'patchitpy_rule_matches{{rule="{rule_id}"}}' in text

    def test_metrics_carry_server_gauges(self, running_server):
        _, client = running_server
        text = client.metrics_text()
        assert "patchitpy_server_uptime_seconds" in text
        assert "patchitpy_server_queue_capacity" in text
        assert "# TYPE patchitpy_server_uptime_seconds gauge" in text

    def test_batch_metrics_accumulate_per_item(self):
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                client.batch([VULN, VULN, SAFE])
        assert server.metrics.counters["detect_calls"] == 3


class TestProcessPool:
    def test_jobs_gt_one_uses_process_pool(self):
        server = PatchitPyServer(config=ServerConfig(port=0, jobs=2))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                health = client.healthz()
                payload = client.batch([VULN, SAFE, VULN, SAFE])
        assert health["pool"] == "process"
        assert [item["vulnerable"] for item in payload["results"]] == [
            True,
            False,
            True,
            False,
        ]

    def test_unpicklable_engine_falls_back_to_threads(self):
        engine = PatchitPy()
        engine.blocker = threading.Lock()  # unpicklable attribute
        server = PatchitPyServer(engine=engine, config=ServerConfig(port=0, jobs=2))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                assert client.healthz()["pool"] == "thread"
                assert client.analyze(VULN)["vulnerable"] is True


class TestUnixSocket:
    @pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"), reason="platform lacks AF_UNIX"
    )
    def test_round_trip_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "patchitpy.sock")
        server = PatchitPyServer(config=ServerConfig(unix_socket=path))
        with BackgroundServer(server) as handle:
            assert handle.unix_socket == path
            with ServerClient(unix_socket=path) as client:
                assert client.healthz()["status"] == "ok"
                assert client.analyze(VULN)["vulnerable"] is True

    def test_client_requires_exactly_one_transport(self):
        with pytest.raises(ValueError):
            ServerClient(port=1, unix_socket="/tmp/x")
        with pytest.raises(ValueError):
            ServerClient()


class TestServeParser:
    def test_defaults_map_onto_config(self):
        args = build_serve_parser().parse_args([])
        config = config_from_args(args)
        assert config.host == "127.0.0.1"
        assert config.port == 8753
        assert config.jobs == 1
        assert config.queue_depth == 64
        assert config.default_deadline_ms == 30_000.0

    def test_flags_override_defaults(self):
        args = build_serve_parser().parse_args(
            ["--port", "0", "--jobs", "4", "--queue-depth", "8", "--deadline-ms", "0"]
        )
        config = config_from_args(args)
        assert config.port == 0
        assert config.jobs == 4
        assert config.queue_depth == 8
        assert config.default_deadline_ms == 0.0

    def test_cli_dispatches_serve_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as info:
            main(["serve", "--help"])
        assert info.value.code == 0
        assert "queue-depth" in capsys.readouterr().out


class TestServerTransport:
    def test_language_server_over_http(self):
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                ls = LanguageServer(engine=ServerTransport(client))
                published = ls.did_open("file:///gen.py", VULN)
                actions = ls.code_actions("file:///gen.py")
                local = LanguageServer()
                expected = local.did_open("file:///gen.py", VULN)
        assert published["diagnostics"] == expected["diagnostics"]
        assert actions, "quick fixes come back over the wire"
        for action in actions:
            assert action["kind"] == "quickfix"
            assert action["edit"]["changes"]["file:///gen.py"]

    def test_transport_detect_rebuilds_findings(self):
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                transport = ServerTransport(client)
                remote = transport.detect(VULN)
        local = PatchitPy().detect(VULN)
        assert remote == local  # Finding equality ignores provenance
