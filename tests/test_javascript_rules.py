"""Tests for the JavaScript rule pack (the paper's future-work extension)."""

import pytest

from repro.core import PatchitPy
from repro.core.matching import match_rule
from repro.core.rules.javascript import javascript_ruleset

_RULES = {r.rule_id: r for r in javascript_ruleset()}

CASES = {
    "PIT-JS-01": (
        "db.query(`SELECT * FROM users WHERE id = ${id}`)",
        "db.query('SELECT * FROM users WHERE id = $1', [id])",
    ),
    "PIT-JS-02": ("exec(`ping ${host}`)", 'execFile("ping", [host])'),
    "PIT-JS-03": ("eval(userInput)", "eval('2 + 2')"),
    "PIT-JS-04": ("const fn = new Function(body)", "const fn = actions[name]"),
    "PIT-JS-05": ("el.innerHTML = comment", "el.textContent = comment"),
    "PIT-JS-06": ("document.write(params.get('n'))", "document.write('<hr>')"),
    "PIT-JS-07": (
        "const token = Math.random().toString(36)",
        "const token = crypto.randomBytes(24).toString('hex')",
    ),
    "PIT-JS-08": (
        'const apiKey = "sk-live-12345"',
        "const apiKey = process.env.API_KEY",
    ),
    "PIT-JS-09": ("{ rejectUnauthorized: false }", "{ rejectUnauthorized: true }"),
    "PIT-JS-10": ('process.env["NODE_TLS_REJECT_UNAUTHORIZED"] = "0"', 'log("tls strict")'),
    "PIT-JS-11": ("crypto.createHash('md5')", "crypto.createHash('sha256')"),
    "PIT-JS-12": ("res.sendFile(req.query.path)", "res.sendFile(path.basename(name))"),
    "PIT-JS-13": ("res.redirect(req.query.next)", "res.redirect('/home')"),
    "PIT-JS-14": ("unserialize(req.body.data)", "JSON.parse(req.body.data)"),
    "PIT-JS-15": (
        "res.cookie('sid', sessionId)",
        "res.cookie('sid', sessionId, { httpOnly: true, secure: true })",
    ),
    "PIT-JS-16": ("res.setHeader('Access-Control-Allow-Origin', '*')",
                  "res.setHeader('Access-Control-Allow-Origin', origin)"),
    "PIT-JS-17": ("jwt.verify(token, key, { algorithms: ['none'] })",
                  "jwt.verify(token, key, { algorithms: ['HS256'] })"),
    "PIT-JS-18": ("fetch(req.query.url)", "fetch(API_BASE + '/status')"),
}


def test_case_per_rule():
    assert set(CASES) == set(_RULES)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_positive(rule_id):
    positive, _ = CASES[rule_id]
    source = positive if rule_id != "PIT-JS-07" else positive + "\n// session token"
    assert match_rule(_RULES[rule_id], source), rule_id


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_negative(rule_id):
    _, negative = CASES[rule_id]
    assert not match_rule(_RULES[rule_id], negative), rule_id


class TestJavaScriptPatching:
    def test_sql_template_parameterized(self):
        engine = PatchitPy(rules=javascript_ruleset(), prune_imports=False)
        result = engine.patch("db.query(`SELECT * FROM t WHERE id = ${id}`)\n")
        assert "$1" in result.patched and "[id]" in result.patched

    def test_innerhtml_to_textcontent(self):
        engine = PatchitPy(rules=javascript_ruleset(), prune_imports=False)
        result = engine.patch("panel.innerHTML = userComment;\n")
        assert "panel.textContent = userComment" in result.patched

    def test_cookie_options_added(self):
        engine = PatchitPy(rules=javascript_ruleset(), prune_imports=False)
        result = engine.patch("res.cookie('sid', sessionId)\n")
        assert "httpOnly: true" in result.patched

    def test_hardcoded_secret_to_env(self):
        engine = PatchitPy(rules=javascript_ruleset(), prune_imports=False)
        result = engine.patch('const apiKey = "sk-live-12345"\n')
        assert "process.env.API_KEY" in result.patched

    def test_express_app_end_to_end(self):
        engine = PatchitPy(rules=javascript_ruleset(), prune_imports=False)
        app = (
            "const express = require('express');\n"
            "const app = express();\n"
            "app.get('/user', (req, res) => {\n"
            "  db.query(`SELECT * FROM users WHERE id = ${req.query.id}`)\n"
            "    .then(rows => { el.innerHTML = rows[0].name; });\n"
            "  res.cookie('sid', makeSession(), {});\n"
            "});\n"
        )
        findings = engine.detect(app)
        assert {f.cwe_id for f in findings} >= {"CWE-089", "CWE-079"}
        patched = engine.patch(app).patched
        assert "$1" in patched
        assert "textContent" in patched

    def test_python_rules_unaffected(self, engine):
        # the default engine must not fire JS rules
        assert not engine.detect("el.innerHTML = comment\n")
