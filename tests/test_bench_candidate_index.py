"""Smoke-mode run of the candidate-index benchmark under the tier-1 suite.

The full benchmark lives in ``benchmarks/bench_candidate_index.py`` and
is sized for meaningful timings; this test imports it directly and runs
a tiny corpus so every CI run still exercises the indexed-vs-naive
comparison end to end (including the byte-identical-findings assertions
inside the benchmark) and publishes the measured numbers as a build
artifact (``benchmarks/output/candidate_index_smoke.txt``).
"""

import importlib.util
from pathlib import Path

import pytest

_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_candidate_index.py"
)


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_candidate_index", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.benchmark_smoke
def test_candidate_index_benchmark_smoke(tmp_path):
    bench = _load_bench_module()
    results = bench.run_candidate_index_benchmark(
        tmp_path, files=16, sections=4, repeats=1
    )

    # correctness invariants hold even at smoke scale: the benchmark
    # itself asserts indexed and naive findings are byte-identical
    assert results["findings"] > 0
    assert results["index_rules"] == 85
    assert results["index_candidates"] + results["index_skips"] == 16 * 85
    # the index prunes hard on the clean-heavy corpus
    assert results["candidate_fraction"] < 0.7

    text = bench.format_report(results)
    bench.OUTPUT_DIR.mkdir(exist_ok=True)
    artifact = bench.OUTPUT_DIR / "candidate_index_smoke.txt"
    artifact.write_text(text + "\n")
    assert artifact.exists()
    assert "project scan indexed" in text
