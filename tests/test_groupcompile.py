"""Tests for grouped-alternation dispatch (repro.core.groupcompile).

The load-bearing property sits at the bottom: over the full bundled
corpus and the complete default catalog, detection through the grouped
tier is byte-identical to the indexed tier and to the naive per-rule
path, in every execution regime (fast, instrumented, traced, CLI).
Everything above pins the pieces that property rests on — mergeability
classification, alpha-renaming of member group names, clear-on-miss /
fallback-on-hit planning, the compilation LRU, the per-source plan
memo, and pickling of primed caches into worker processes.
"""

import importlib.util
import pickle
import re
from pathlib import Path

import pytest

from repro.core.candidates import RuleIndex
from repro.core.engine import PatchitPy
from repro.core.groupcompile import (
    GroupedCache,
    _rename_groups,
    build_grouped,
    catalog_fingerprint,
    mergeable,
)
from repro.core.rules import default_ruleset, extended_ruleset, full_catalog
from repro.core.rules.base import rule
from repro.observability import ScanMetrics, TraceRecorder


def _rules(*specs):
    """Terse rule list: one detection rule per (id, pattern[, flags])."""
    built = []
    for spec in specs:
        rule_id, pattern = spec[0], spec[1]
        flags = spec[2] if len(spec) > 2 else 0
        built.append(
            rule(rule_id, "CWE-95", f"test rule {rule_id}", pattern, flags=flags)
        )
    return built


class TestMergeable:
    def test_plain_pattern_merges(self):
        assert mergeable(re.compile(r"eval\("))

    def test_named_groups_and_named_backrefs_merge(self):
        assert mergeable(re.compile(r"(?P<q>['\"]).*(?P=q)"))

    def test_numeric_backref_rejected(self):
        assert not mergeable(re.compile(r"(['\"]).*\1"))

    def test_numeric_conditional_rejected(self):
        assert not mergeable(re.compile(r"(a)?(?(1)b|c)"))

    def test_escaped_backslash_before_digit_is_not_a_backref(self):
        # \\1 is a literal backslash then "1", not a group reference
        assert mergeable(re.compile(r"(x)\\1y"))

    def test_global_inline_flag_rejected(self):
        assert not mergeable(re.compile(r"(?i)select"))

    def test_scoped_inline_flag_merges(self):
        assert mergeable(re.compile(r"(?i:select)\s"))

    def test_synthetic_name_collisions_rejected(self):
        assert not mergeable(re.compile(r"(?P<pg0>x)"))
        assert not mergeable(re.compile(r"(?P<left_pg1>x)"))


class TestRenameGroups:
    def test_defs_refs_and_conditionals_renamed(self):
        renamed = _rename_groups(
            r"(?P<q>['\"])x(?P=q)(?(q)y|z)", ("q",), "_pg3"
        )
        assert renamed == r"(?P<q_pg3>['\"])x(?P=q_pg3)(?(q_pg3)y|z)"
        assert re.compile(renamed).search("'x'y")

    def test_unknown_reference_returns_none(self):
        assert _rename_groups(r"x(?P=ghost)", ("q",), "_pg0") is None


class TestBuildGrouped:
    def test_full_catalog_merges_completely(self):
        grouped = build_grouped(list(full_catalog()))
        shape = grouped.describe()
        assert shape["fallback"] == 0
        assert shape["grouped"] == len(list(full_catalog()))
        assert shape["buckets"] >= 1

    def test_clean_source_clears_every_bucket(self):
        grouped = build_grouped(_rules(("R1", r"eval\("), ("R2", r"pickle\.loads")))
        dispatch, cleared, hit = grouped.plan("def add(a, b):\n    return a + b\n")
        assert dispatch == []
        assert cleared == 2
        assert hit is None

    def test_bucket_hit_dispatches_members_and_attributes(self):
        grouped = build_grouped(_rules(("R1", r"eval\("), ("R2", r"pickle\.loads")))
        dispatch, cleared, hit = grouped.plan("x = eval(user_input)\n")
        assert [r.rule_id for r in dispatch] == ["R1", "R2"]
        assert cleared == 0
        assert hit == "R1"

    def test_flags_split_buckets_and_clear_independently(self):
        grouped = build_grouped(
            _rules(("CS", r"SELECT "), ("CI", r"select ", re.IGNORECASE))
        )
        assert grouped.describe()["buckets"] == 2
        dispatch, cleared, _ = grouped.plan("q = 'select * from t'\n")
        assert [r.rule_id for r in dispatch] == ["CI"]
        assert cleared == 1

    def test_unmergeable_rules_always_dispatch(self):
        rules = _rules(("BACKREF", r"(['\"]).*\1"), ("PLAIN", r"eval\("))
        grouped = build_grouped(rules)
        assert [r.rule_id for r in grouped.fallback_rules] == ["BACKREF"]
        dispatch, cleared, hit = grouped.plan("nothing to see\n")
        assert [r.rule_id for r in dispatch] == ["BACKREF"]
        assert cleared == 1 and hit is None

    def test_same_member_group_names_no_longer_collide(self):
        rules = _rules(
            ("Q1", r"a(?P<q>['\"])x(?P=q)"), ("Q2", r"b(?P<q>['\"])y(?P=q)")
        )
        grouped = build_grouped(rules)
        assert grouped.describe()["fallback"] == 0
        dispatch, _, hit = grouped.plan("b'y'\n")
        assert {r.rule_id for r in dispatch} == {"Q1", "Q2"}
        assert hit == "Q2"

    def test_probe_and_named_variant_agree(self):
        grouped = build_grouped(list(full_catalog()))
        texts = (
            "",
            "x = eval(payload)\n",
            "def f():\n    return 1\n",
            "s = pickle.loads(raw)  # nosec\n",
            "q = f\"select {x}\"\n",
        )
        for bucket in grouped.buckets:
            for text in texts:
                assert (bucket.probe.search(text) is None) == (
                    bucket.combined.search(text) is None
                )

    def test_grouped_rules_preserve_catalog_order(self):
        rules = list(full_catalog())
        grouped = build_grouped(rules)
        assert [r.rule_id for r in grouped.grouped_rules] == [
            r.rule_id for r in rules
        ]

    def test_pickle_round_trip(self):
        grouped = build_grouped(list(default_ruleset()))
        clone = pickle.loads(pickle.dumps(grouped))
        source = "data = pickle.loads(blob)\n"
        assert [r.rule_id for r in clone.dispatch(source)] == [
            r.rule_id for r in grouped.dispatch(source)
        ]
        assert clone.describe() == grouped.describe()


class TestGroupedCache:
    def test_memoizes_per_fingerprint_and_mask(self):
        rules = _rules(("R1", r"eval\("))
        cache = GroupedCache()
        fingerprint = catalog_fingerprint(rules)
        first = cache.get_or_build(fingerprint, 0b1, rules)
        second = cache.get_or_build(fingerprint, 0b1, rules)
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_distinct_masks_get_distinct_entries(self):
        rules = _rules(("R1", r"eval\("), ("R2", r"exec\("))
        cache = GroupedCache()
        fingerprint = catalog_fingerprint(rules)
        assert cache.get_or_build(fingerprint, 0b11, rules) is not cache.get_or_build(
            fingerprint, 0b01, rules[:1]
        )
        assert len(cache) == 2

    def test_bounded_lru_evicts_oldest(self):
        rules = _rules(("R1", r"eval\("))
        cache = GroupedCache(maxsize=2)
        fingerprint = catalog_fingerprint(rules)
        for mask in (1, 2, 3):
            cache.get_or_build(fingerprint, mask, rules)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # mask 1 was evicted; rebuilding it is a miss, mask 3 still hits
        cache.get_or_build(fingerprint, 3, rules)
        assert cache.stats()["hits"] == 1
        cache.get_or_build(fingerprint, 1, rules)
        assert cache.stats()["misses"] == 4

    def test_rejects_silly_sizes(self):
        with pytest.raises(ValueError):
            GroupedCache(maxsize=0)

    def test_primed_cache_pickles_with_entries(self):
        rules = _rules(("R1", r"eval\("))
        cache = GroupedCache()
        fingerprint = catalog_fingerprint(rules)
        cache.get_or_build(fingerprint, 0b1, rules)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 1
        clone.get_or_build(fingerprint, 0b1, rules)
        assert clone.stats()["hits"] == 1  # served from the pickled entry


class TestRuleIndexGroupedTier:
    def test_grouped_for_shares_compiled_plans_across_sources(self):
        index = RuleIndex(list(default_ruleset()))
        first = index.grouped_for(index.lookup("def a():\n    return 1\n"))
        second = index.grouped_for(index.lookup("def b():\n    return 2\n"))
        assert first is second  # same candidate mask -> same compiled plan
        assert index.grouped_stats()["hits"] >= 1

    def test_grouped_plan_memoizes_per_source(self):
        index = RuleIndex(list(default_ruleset()))
        source = "x = eval(user)\n"
        first = index.grouped_plan(source)
        second = index.grouped_plan(source)
        assert first is second
        stats = index.grouped_stats()
        assert stats["plan_hits"] == 1 and stats["plan_misses"] == 1
        assert "eval(" in first[0][0].pattern.pattern or first[0]

    def test_plan_memo_is_bounded_fifo(self):
        index = RuleIndex(list(default_ruleset()))
        index._plan_maxsize = 4
        for i in range(10):
            index.grouped_plan(f"def f{i}():\n    return {i}\n")
        assert len(index._plan_memo) == 4
        assert index.grouped_stats()["plan_size"] == 4

    def test_memoized_plan_matches_live_plan(self, flat_samples):
        index = RuleIndex(list(default_ruleset()))
        for sample in flat_samples[:60]:
            memoized = index.grouped_plan(sample.source)
            lookup = index.lookup(sample.source)
            live = index.grouped_for(lookup).plan(sample.source)
            assert list(memoized[0]) == live[0]
            assert memoized[1] == live[1]

    def test_index_pickles_with_primed_grouped_tier(self):
        index = RuleIndex(list(default_ruleset()))
        source = "data = pickle.loads(blob)\n"
        index.grouped_plan(source)
        clone = pickle.loads(pickle.dumps(index))
        assert [r.rule_id for r in clone.grouped_plan(source)[0]] == [
            r.rule_id for r in index.grouped_plan(source)[0]
        ]
        assert clone.grouped_stats()["size"] >= 1  # compiled entries traveled

    def test_fold_cache_counters(self):
        rules = _rules(("CI", r"select\s+\*", re.IGNORECASE))
        index = RuleIndex(rules)
        assert index.folded_literals  # the fold path is actually in play
        source = "q = 'SELECT * FROM t'\n"
        index.lookup(source)
        assert (index.fold_computes, index.fold_reuses) == (1, 0)
        index.lookup(source)  # same object: single-slot cache reuses
        assert (index.fold_computes, index.fold_reuses) == (1, 1)
        index.lookup("other = 1\n")
        assert index.fold_computes == 2


class TestEngineAblation:
    def test_use_grouped_flag_reaches_the_index(self):
        engine = PatchitPy(use_grouped=False)
        engine.warmup()
        index = engine.rules.candidate_index()
        assert index.grouped_stats()["plan_misses"] == 0  # tier never entered
        grouped = PatchitPy()
        grouped.warmup()
        assert grouped.rules.candidate_index().grouped_stats()["plan_misses"] > 0

    def test_warmup_primes_grouped_cache(self):
        engine = PatchitPy()
        engine.warmup()
        stats = engine.rules.candidate_index().grouped_stats()
        assert stats["size"] >= 1 and stats["misses"] >= 1

    def test_cli_no_grouped_flag(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "target.py"
        target.write_text("import pickle\n\nstate = pickle.loads(blob)\n")
        assert main([str(target)]) == 1
        grouped_out = capsys.readouterr().out
        assert main([str(target), "--no-grouped"]) == 1
        ungrouped_out = capsys.readouterr().out
        assert grouped_out == ungrouped_out
        assert "CWE-502" in grouped_out


class TestEquivalenceProperty:
    """The acceptance property: grouped == indexed == naive, byte for byte."""

    @pytest.fixture(scope="class")
    def engines(self):
        return (
            PatchitPy(),
            PatchitPy(use_grouped=False),
            PatchitPy(use_index=False),
        )

    def test_findings_identical_across_full_corpus(self, flat_samples, engines):
        grouped, indexed, naive = engines
        assert len(flat_samples) > 500  # the whole corpus, not a slice
        for sample in flat_samples:
            reference = [f.to_dict() for f in grouped.detect(sample.source)]
            assert reference == [
                f.to_dict() for f in indexed.detect(sample.source)
            ], sample.sample_id
            assert reference == [
                f.to_dict() for f in naive.detect(sample.source)
            ], sample.sample_id

    def test_extended_ruleset_equivalence(self, flat_samples):
        grouped = PatchitPy(rules=extended_ruleset())
        indexed = PatchitPy(rules=extended_ruleset(), use_grouped=False)
        for sample in flat_samples[:150]:
            assert [f.to_dict() for f in grouped.detect(sample.source)] == [
                f.to_dict() for f in indexed.detect(sample.source)
            ]

    def test_instrumented_paths_equivalent(self, flat_samples):
        grouped = PatchitPy(metrics=ScanMetrics())
        indexed = PatchitPy(metrics=ScanMetrics(), use_grouped=False)
        for sample in flat_samples[:100]:
            assert [f.to_dict() for f in grouped.detect(sample.source)] == [
                f.to_dict() for f in indexed.detect(sample.source)
            ]

    def test_instrumented_scan_accounts_cleared_rules(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        engine.detect("def add(a, b):\n    return a + b\n")
        assert metrics.counters.get("grouped_cleared", 0) > 0
        snapshot = metrics.counters
        calls = sum(s.calls for s in metrics.rules.values())
        assert calls == len(list(engine.rules))  # every rule accounted
        assert snapshot.get("grouped_hits", 0) == 0

    def test_instrumented_hit_counts_dispatch(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        findings = engine.detect("import pickle\nx = pickle.loads(b)\n")
        assert findings
        assert metrics.counters.get("grouped_hits", 0) >= 1
        assert metrics.counters.get("grouped_dispatch", 0) >= 1

    def test_traced_path_equivalent_to_grouped(self, flat_samples):
        # tracing bypasses grouped dispatch on purpose (full audit
        # trail), so the toggle must be a no-op there; and the traced
        # finding set — provenance aside — must agree with the grouped
        # fast path.
        for sample in flat_samples[:40]:
            traced = PatchitPy(trace=TraceRecorder())
            traced_ungrouped = PatchitPy(trace=TraceRecorder(), use_grouped=False)
            grouped = PatchitPy()
            from_traced = traced.detect(sample.source)
            assert [f.to_dict() for f in from_traced] == [
                f.to_dict() for f in traced_ungrouped.detect(sample.source)
            ]
            assert [
                (f.rule_id, f.span.start, f.span.end) for f in from_traced
            ] == [
                (f.rule_id, f.span.start, f.span.end)
                for f in grouped.detect(sample.source)
            ]


_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_engine_perf.py"
)


@pytest.mark.benchmark_smoke
def test_engine_perf_benchmark_smoke():
    """Smoke-mode run of the engine-perf benchmark (tiny corpus, no
    speedup floor — timing at this scale is noise; the full benchmark
    asserts the x1.5 acceptance claim)."""
    spec = importlib.util.spec_from_file_location("bench_engine_perf", _BENCH_PATH)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)
    results = bench.run_engine_perf_benchmark(files=12, sections=4, repeats=1)
    assert results["findings"] > 0
    assert results["grouped_total_s"] > 0
    assert results["grouped_p95_s"] >= results["grouped_p50_s"]
    assert results["plan_hits"] > 0  # the warm passes hit the plan memo
    report = bench.format_engine_perf_report(results)
    assert "grouped vs indexed" in report
