"""Shared fixtures: engines, corpora, and one cached case-study run."""

from __future__ import annotations

import pytest

from repro.core import PatchitPy
from repro.corpus import load_prompts
from repro.generators import generate_all_models


@pytest.fixture(scope="session")
def engine() -> PatchitPy:
    return PatchitPy()


@pytest.fixture(scope="session")
def prompts():
    return load_prompts()


@pytest.fixture(scope="session")
def corpus_samples():
    """The full 609-sample corpus, rendered once per test session."""
    return generate_all_models()


@pytest.fixture(scope="session")
def flat_samples(corpus_samples):
    return [s for items in corpus_samples.values() for s in items]


@pytest.fixture(scope="session")
def case_study():
    """One full case-study run shared by the integration tests."""
    from repro.evaluation import run_case_study

    return run_case_study()
