"""Tests for literal prefiltering: correctness is pinned by equivalence."""

import random
import re

import pytest

from repro.core.prefilter import required_literal
from repro.core.rules import extended_ruleset
from repro.core.rules.javascript import javascript_ruleset


class TestDerivation:
    def test_plain_literal(self):
        assert required_literal(re.compile(r"pickle\.loads\(")) == "pickle.loads("

    def test_longest_run_chosen(self):
        literal = required_literal(re.compile(r"os\.system\(\s*f['\"]"))
        assert literal == "os.system("

    def test_branch_requires_all(self):
        # each alternative has a literal → the weakest guarantee is usable
        literal = required_literal(re.compile(r"(?:telnetlib\.Telnet|ftplib\.FTP)\("))
        assert literal is not None

    def test_branch_with_free_alternative(self):
        # one alternative is pure wildcard → nothing is required
        assert required_literal(re.compile(r"(?:pickle\.loads|\w+)x")) is None

    def test_optional_group_skipped(self):
        literal = required_literal(re.compile(r"(?:import\s+)?yaml\.load\("))
        assert literal == "yaml.load("

    def test_short_literals_rejected(self):
        assert required_literal(re.compile(r"\bok\b")) is None

    def test_ignorecase_disables(self):
        assert required_literal(re.compile(r"SELECT", re.IGNORECASE)) is None

    def test_repeat_min_one_contributes(self):
        literal = required_literal(re.compile(r"(?:abcdef)+\d"))
        assert literal == "abcdef"


class TestSafety:
    """The safety invariant: if the regex matches, the literal is present."""

    @pytest.mark.parametrize(
        "ruleset_name,rules",
        [("python", list(extended_ruleset())), ("javascript", list(javascript_ruleset()))],
    )
    def test_literal_present_in_rule_matches(self, ruleset_name, rules, flat_samples):
        derived = {
            r.rule_id: required_literal(r.pattern)
            for r in rules
            if required_literal(r.pattern) is not None
        }
        assert derived, "at least some rules must gain a prefilter"
        for sample in flat_samples[:150]:
            for rule in rules:
                literal = derived.get(rule.rule_id)
                if literal is None:
                    continue
                if rule.pattern.search(sample.source):
                    assert literal in sample.source, (rule.rule_id, literal)

    def test_corpus_results_identical_with_and_without(self, flat_samples, engine):
        # equivalence: verdicts through the prefiltered engine path equal
        # raw regex verdicts
        for sample in flat_samples[:120]:
            raw = any(
                rule.applies_to(sample.source) and rule.pattern.search(sample.source)
                and not any(g.vetoes(sample.source, m) for m in [rule.pattern.search(sample.source)] for g in rule.all_guards())
                for rule in engine.rules
            )
            assert engine.is_vulnerable(sample.source) == raw

    def test_prefilter_coverage_is_high(self):
        rules = list(extended_ruleset())
        covered = sum(required_literal(r.pattern) is not None for r in rules)
        assert covered / len(rules) > 0.5
