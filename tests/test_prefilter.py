"""Tests for literal prefiltering: correctness is pinned by equivalence."""

import random
import re

import pytest

from repro.core.prefilter import (
    LiteralRequirement,
    _longest_common_substring,
    required_literal,
    required_literal_groups,
    required_literals,
)
from repro.core.rules import extended_ruleset
from repro.core.rules.javascript import javascript_ruleset


class TestDerivation:
    def test_plain_literal(self):
        assert required_literal(re.compile(r"pickle\.loads\(")) == "pickle.loads("

    def test_longest_run_chosen(self):
        literal = required_literal(re.compile(r"os\.system\(\s*f['\"]"))
        assert literal == "os.system("

    def test_branch_requires_all(self):
        # each alternative has a literal → the weakest guarantee is usable
        literal = required_literal(re.compile(r"(?:telnetlib\.Telnet|ftplib\.FTP)\("))
        assert literal is not None

    def test_branch_with_free_alternative(self):
        # one alternative is pure wildcard → nothing is required
        assert required_literal(re.compile(r"(?:pickle\.loads|\w+)x")) is None

    def test_optional_group_skipped(self):
        literal = required_literal(re.compile(r"(?:import\s+)?yaml\.load\("))
        assert literal == "yaml.load("

    def test_short_literals_rejected(self):
        assert required_literal(re.compile(r"\bok\b")) is None

    def test_ignorecase_disables(self):
        assert required_literal(re.compile(r"SELECT", re.IGNORECASE)) is None

    def test_repeat_min_one_contributes(self):
        literal = required_literal(re.compile(r"(?:abcdef)+\d"))
        assert literal == "abcdef"


class TestSafety:
    """The safety invariant: if the regex matches, the literal is present."""

    @pytest.mark.parametrize(
        "ruleset_name,rules",
        [("python", list(extended_ruleset())), ("javascript", list(javascript_ruleset()))],
    )
    def test_literal_present_in_rule_matches(self, ruleset_name, rules, flat_samples):
        derived = {
            r.rule_id: required_literal(r.pattern)
            for r in rules
            if required_literal(r.pattern) is not None
        }
        assert derived, "at least some rules must gain a prefilter"
        for sample in flat_samples[:150]:
            for rule in rules:
                literal = derived.get(rule.rule_id)
                if literal is None:
                    continue
                if rule.pattern.search(sample.source):
                    assert literal in sample.source, (rule.rule_id, literal)

    def test_corpus_results_identical_with_and_without(self, flat_samples, engine):
        # equivalence: verdicts through the prefiltered engine path equal
        # raw regex verdicts
        for sample in flat_samples[:120]:
            raw = any(
                rule.applies_to(sample.source) and rule.pattern.search(sample.source)
                and not any(g.vetoes(sample.source, m) for m in [rule.pattern.search(sample.source)] for g in rule.all_guards())
                for rule in engine.rules
            )
            assert engine.is_vulnerable(sample.source) == raw

    def test_prefilter_coverage_is_high(self):
        rules = list(extended_ruleset())
        covered = sum(required_literal(r.pattern) is not None for r in rules)
        assert covered / len(rules) > 0.5


def _reference_lcs(a: str, b: str) -> str:
    """The pre-DP implementation, kept verbatim as the behavioral oracle."""
    best = ""
    for i in range(len(a)):
        for j in range(i + len(best) + 1, len(a) + 1):
            if a[i:j] in b:
                best = a[i:j]
            else:
                break
    return best


class TestLongestCommonSubstring:
    def test_known_cases(self):
        assert _longest_common_substring("hashlib.md5(", "hashlib.sha1(") == "hashlib."
        assert _longest_common_substring("abc", "xyz") == ""
        assert _longest_common_substring("", "anything") == ""
        assert _longest_common_substring("same", "same") == "same"

    def test_tie_resolves_to_earliest_occurrence(self):
        # "ab" and "cd" are both common, length 2 — the old scan kept the
        # first one found in `a`, and the DP must agree.
        assert _longest_common_substring("ab_cd", "ab~cd") == _reference_lcs(
            "ab_cd", "ab~cd"
        )

    def test_matches_old_implementation_on_random_strings(self):
        rng = random.Random(20260805)
        for trial in range(300):
            alphabet = "abcd" if trial % 2 else "ab"
            a = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 30)))
            b = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 30)))
            assert _longest_common_substring(a, b) == _reference_lcs(a, b), (a, b)


class TestMultiLiteralExtraction:
    def test_concatenation_yields_full_conjunction(self):
        reqs = required_literals(re.compile(r"subprocess\.call\(.*shell\s*=\s*True"))
        texts = {r.text for r in reqs}
        assert "subprocess.call(" in texts
        assert "True" in texts
        assert all(not r.folded for r in reqs)

    def test_single_literal_agrees_with_required_literal(self):
        pattern = re.compile(r"pickle\.loads\(")
        assert {r.text for r in required_literals(pattern)} == {"pickle.loads("}

    def test_substring_redundant_literals_dropped(self):
        # "load(" is a substring of "yaml.load(" — only the longer literal
        # survives (the shorter one's presence is implied).
        reqs = required_literals(re.compile(r"yaml\.load\(.*load\("))
        assert {r.text for r in reqs} == {"yaml.load("}

    def test_short_runs_dropped(self):
        reqs = required_literals(re.compile(r"ab\d+cdef"))
        assert {r.text for r in reqs} == {"cdef"}

    def test_ignorecase_emits_folded_lowercase(self):
        reqs = required_literals(re.compile(r"SELECT\s+.*\s+FROM", re.IGNORECASE))
        assert reqs
        assert all(r.folded for r in reqs)
        assert all(r.text == r.text.lower() for r in reqs)
        assert {r.text for r in reqs} == {"select", "from"}

    def test_ignorecase_non_ascii_literal_dropped(self):
        # 'İ'.lower() has len 2: a case-insensitive substring check over
        # lowered text would be unsound, so non-ASCII literals vanish.
        reqs = required_literals(re.compile(r"İİİİ\d", re.IGNORECASE))
        assert reqs == ()

    def test_case_sensitive_literals_never_folded(self):
        reqs = required_literals(re.compile(r"eval\("))
        assert reqs == (LiteralRequirement(text="eval(", folded=False),)

    def test_every_literal_is_required(self):
        # safety: any string the pattern matches contains every literal
        pattern = re.compile(r"hashlib\.md5\(.*\)|hashlib\.sha1\(.*\)")
        reqs = required_literals(pattern)
        assert reqs
        probe = "x = hashlib.md5(data)"
        assert pattern.search(probe)
        for req in reqs:
            assert req.text in probe


class TestDisjunctionGroups:
    def test_branch_yields_one_of_group(self):
        groups = required_literal_groups(re.compile(r"(?:Markup|mark_safe)\("))
        assert len(groups) == 1
        assert {r.text for r in groups[0]} == {"Markup", "mark_safe"}

    def test_factored_prefix_glued_back_on(self):
        # sre_parse turns "password|passwd|pwd" into "p" + "assword|asswd|wd";
        # the walker must reconstruct the full discriminating literals.
        groups = required_literal_groups(re.compile(r"(?:password|passwd|pwd)\s*="))
        assert len(groups) == 1
        assert {r.text for r in groups[0]} == {"password", "passwd", "pwd"}

    def test_group_dropped_when_member_below_floor(self):
        groups = required_literal_groups(re.compile(r"(?:ElementTree|ET)\."))
        assert groups == ()

    def test_free_alternative_kills_group(self):
        assert required_literal_groups(re.compile(r"(?:evil_call|\w+)x")) == ()

    def test_optional_branch_not_guaranteed(self):
        # a branch behind a min-0 quantifier may never be traversed
        groups = required_literal_groups(re.compile(r"(?:alpha|beta)?\d"))
        assert groups == ()

    def test_ignorecase_groups_fold(self):
        groups = required_literal_groups(
            re.compile(r"(?:SELECT|INSERT)\s", re.IGNORECASE)
        )
        assert len(groups) == 1
        assert all(r.folded for r in groups[0])
        assert {r.text for r in groups[0]} == {"select", "insert"}

    def test_group_members_are_individually_required(self):
        # safety: every match contains at least one member of every group
        pattern = re.compile(r"os\.(?:execl|execve|spawnl)\([^)]*\)")
        groups = required_literal_groups(pattern)
        assert groups
        for probe in ("os.execl(a)", "os.execve(b, c)", "os.spawnl(d)"):
            assert pattern.search(probe)
            for group in groups:
                assert any(r.text in probe for r in group), (probe, group)
