"""Tests for the Cohen's kappa agreement analysis."""

import pytest

from repro.evaluation.agreement import agreement_matrix, cohens_kappa, render_agreement


class TestKappa:
    def test_perfect_agreement(self):
        result = cohens_kappa([True, False, True], [True, False, True])
        assert result.kappa == 1.0 and result.raw_agreement == 1.0

    def test_perfect_disagreement(self):
        result = cohens_kappa([True, False], [False, True])
        assert result.kappa < 0

    def test_chance_agreement_is_zero(self):
        # one rater says yes half the time independent of the other
        a = [True, True, False, False]
        b = [True, False, True, False]
        assert cohens_kappa(a, b).kappa == pytest.approx(0.0)

    def test_constant_raters(self):
        result = cohens_kappa([True, True], [True, True])
        assert result.kappa == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cohens_kappa([True], [True, False])

    def test_hand_computed_example(self):
        # observed = 0.6; p_yes = (0.5, 0.6) -> expected = 0.5 -> kappa = 0.2
        a = [True] * 5 + [False] * 5
        b = [True, True, True, False, False, False, False, False, True, True]
        result = cohens_kappa(a, b)
        assert result.raw_agreement == pytest.approx(0.6)
        assert result.kappa == pytest.approx(0.2)


class TestMatrix:
    def test_pairs_and_render(self):
        verdicts = {
            "t1": {"s1": True, "s2": False},
            "t2": {"s1": True, "s2": True},
            "t3": {"s1": False, "s2": False},
        }
        matrix = agreement_matrix(verdicts, ["s1", "s2"])
        assert len(matrix) == 3
        text = render_agreement(matrix)
        assert "kappa" in text and "t1" in text
