"""Tests for the metrics suite: confusion, complexity, quality, stats."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.metrics import (
    ConfusionMatrix,
    block_complexities,
    check_quality,
    cyclomatic_complexity,
    describe,
    from_verdicts,
    quality_score,
    total_complexity,
    wilcoxon_rank_sum,
)


class TestConfusion:
    def test_perfect(self):
        matrix = ConfusionMatrix(tp=10, tn=10)
        assert matrix.precision == matrix.recall == matrix.f1 == matrix.accuracy == 1.0

    def test_paper_headline_values(self):
        # PatchitPy all-models row of Table II (within rounding)
        matrix = ConfusionMatrix(tp=407, fp=12, fn=54, tn=136)
        assert matrix.precision == pytest.approx(0.97, abs=0.005)
        assert matrix.recall == pytest.approx(0.88, abs=0.005)
        assert matrix.f1 == pytest.approx(0.93, abs=0.006)
        assert matrix.accuracy == pytest.approx(0.89, abs=0.005)

    def test_zero_denominators(self):
        empty = ConfusionMatrix()
        assert empty.precision == empty.recall == empty.f1 == empty.accuracy == 0.0

    def test_addition(self):
        total = ConfusionMatrix(tp=1, fp=2) + ConfusionMatrix(tn=3, fn=4)
        assert (total.tp, total.fp, total.tn, total.fn) == (1, 2, 3, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(tp=-1)

    def test_from_verdicts(self):
        matrix = from_verdicts([(True, True), (True, False), (False, True), (False, False)])
        assert (matrix.tp, matrix.fn, matrix.fp, matrix.tn) == (1, 1, 1, 1)

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=200))
    def test_counts_sum(self, pairs):
        matrix = from_verdicts(pairs)
        assert matrix.total == len(pairs)


class TestComplexity:
    def test_straight_line_function(self):
        assert block_complexities("def f():\n    return 1\n") == [1, 1]

    def test_if_adds_one(self):
        source = "def f(x):\n    if x:\n        return 1\n    return 0\n"
        assert block_complexities(source)[0] == 2

    def test_bool_op_counts_terms(self):
        source = "def f(a, b, c):\n    if a and b and c:\n        return 1\n    return 0\n"
        assert block_complexities(source)[0] == 4  # if +1, two ands +2, base 1

    def test_loop_and_except(self):
        source = (
            "def f(xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            g(x)\n"
            "        except OSError:\n"
            "            pass\n"
        )
        assert block_complexities(source)[0] == 3

    def test_comprehension(self):
        source = "def f(xs):\n    return [x for x in xs if x]\n"
        assert block_complexities(source)[0] == 3  # comprehension +1, its if +1, base 1

    def test_module_level_if(self):
        source = "x = 1\nif x:\n    y = 2\n"
        blocks = block_complexities(source)
        assert blocks[-1] == 2

    def test_mean_over_blocks(self):
        source = "def a():\n    return 1\n\ndef b(x):\n    if x:\n        return 1\n    return 0\n"
        assert cyclomatic_complexity(source) == pytest.approx((1 + 2 + 1) / 3)

    def test_fallback_on_unparseable(self):
        estimate = cyclomatic_complexity("```python\ndef f(x):\n    if x:\n        pass\n```")
        assert estimate >= 1.0

    def test_total_complexity(self):
        assert total_complexity("def f():\n    return 1\n") == 2


class TestQuality:
    def test_clean_module_scores_10(self):
        assert quality_score("def f(a, b):\n    return a + b\n") == 10.0

    def test_unused_import_penalized(self):
        with_unused = "import os\n\ndef f():\n    return 1\n"
        assert quality_score(with_unused) < 10.0

    def test_bare_except_penalized(self):
        source = "try:\n    f()\nexcept:\n    g()\n"
        report = check_quality(source)
        assert any(m.message_id == "W0702" for m in report.messages)

    def test_eval_warned(self):
        report = check_quality("x = eval(y)\n")
        assert any(m.message_id == "W0123" for m in report.messages)

    def test_unparseable_scores_zero(self):
        report = check_quality("def broken(:\n")
        assert report.score == 0.0 and report.parse_failed

    def test_fence_cleaned_before_scoring(self):
        report = check_quality("```python\ndef f():\n    return 1\n```")
        assert not report.parse_failed

    def test_chat_preamble_cleaned(self):
        report = check_quality("Here is the code for this task:\n\ndef f():\n    return 1\n")
        assert not report.parse_failed

    def test_indented_snippet_cleaned(self):
        report = check_quality("    def f():\n        return 1\n")
        assert not report.parse_failed

    def test_score_formula(self):
        # one warning over five statements → 10 - 10*(1/5) = 8
        source = "import os\n\na = 1\nb = 2\nc = 3\nd = 4\n"
        report = check_quality(source)
        assert report.statements == 5
        assert report.score == pytest.approx(8.0)

    def test_score_never_negative(self):
        source = "import a\nimport b\nimport c\n"
        assert check_quality(source).score >= 0.0


class TestWilcoxon:
    def test_matches_scipy(self):
        rng = random.Random(7)
        a = [rng.gauss(0, 1) for _ in range(60)]
        b = [rng.gauss(0.5, 1.2) for _ in range(75)]
        mine = wilcoxon_rank_sum(a, b)
        reference = scipy_stats.ranksums(a, b)
        assert mine.statistic == pytest.approx(reference.statistic, abs=1e-9)
        assert mine.p_value == pytest.approx(reference.pvalue, abs=1e-9)

    def test_matches_scipy_with_ties(self):
        # scipy.ranksums applies no tie correction; with ties the corrected
        # statistic matches mannwhitneyu's asymptotic method instead
        a = [1, 1, 2, 2, 3, 3, 4]
        b = [2, 2, 3, 3, 4, 4, 5]
        mine = wilcoxon_rank_sum(a, b)
        reference = scipy_stats.mannwhitneyu(
            a, b, alternative="two-sided", method="asymptotic", use_continuity=False
        )
        assert mine.p_value == pytest.approx(reference.pvalue, rel=1e-9)

    def test_identical_samples_not_significant(self):
        values = [1.0, 2.0, 3.0, 4.0] * 10
        assert not wilcoxon_rank_sum(values, list(values)).significant()

    def test_shifted_samples_significant(self):
        a = [float(i) for i in range(50)]
        b = [float(i) + 30 for i in range(50)]
        assert wilcoxon_rank_sum(a, b).significant()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_rank_sum([], [1.0])

    @given(
        st.lists(st.floats(min_value=-50, max_value=50), min_size=5, max_size=40),
        st.lists(st.floats(min_value=-50, max_value=50), min_size=5, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_p_value_in_range(self, a, b):
        result = wilcoxon_rank_sum(a, b)
        assert 0.0 <= result.p_value <= 1.0
        assert math.isfinite(result.statistic)


class TestDescribe:
    def test_basic(self):
        stats = describe([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median == 3.0
        assert stats.q1 == 2.0
        assert stats.q3 == 4.0
        assert stats.iqr == 2.0

    def test_single_value(self):
        stats = describe([7.0])
        assert stats.mean == stats.median == stats.minimum == stats.maximum == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            describe([])

    def test_interpolated_quartiles(self):
        stats = describe([1.0, 2.0, 3.0, 4.0])
        assert stats.q1 == pytest.approx(1.75)
        assert stats.q3 == pytest.approx(3.25)
