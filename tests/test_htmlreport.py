"""Tests for the HTML report renderer."""

import pytest

from repro.core.htmlreport import render_html_report, write_html_report
from repro.core.project import ProjectScanner


@pytest.fixture()
def report(tmp_path):
    (tmp_path / "a.py").write_text("import pickle\nx = pickle.loads(b)\n")
    (tmp_path / "b.py").write_text("h = __import__('hashlib').md5\n")
    (tmp_path / "clean.py").write_text("print('ok')\n")
    return ProjectScanner().scan(tmp_path)


class TestHtmlReport:
    def test_valid_document_shell(self, report):
        doc = render_html_report(report)
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.rstrip().endswith("</html>")

    def test_summary_tiles(self, report):
        doc = render_html_report(report)
        assert "files scanned" in doc and "vulnerable files" in doc

    def test_findings_table(self, report):
        doc = render_html_report(report)
        assert "PIT-A08-01" in doc
        assert "cwe.mitre.org/data/definitions/502" in doc

    def test_severity_badges(self, report):
        doc = render_html_report(report)
        assert 'class="badge critical"' in doc

    def test_html_escaping(self, tmp_path):
        (tmp_path / "x.py").write_text('cur.execute(f"SELECT <b> {q}")\n')
        scan = ProjectScanner().scan(tmp_path)
        doc = render_html_report(scan)
        assert "<b> {q}" not in doc  # escaped
        assert "&lt;b&gt;" in doc

    def test_clean_project_message(self, tmp_path):
        (tmp_path / "ok.py").write_text("print('hello')\n")
        doc = render_html_report(ProjectScanner().scan(tmp_path))
        assert "No vulnerable patterns detected" in doc

    def test_skipped_files_listed(self, tmp_path):
        big = tmp_path / "big.py"
        big.write_text("x = 1\n" * 400000)
        scanner = ProjectScanner(max_file_bytes=1024)
        doc = render_html_report(scanner.scan(tmp_path))
        assert "Skipped files" in doc and "file too large" in doc

    def test_write_roundtrip(self, report, tmp_path):
        out = tmp_path / "report.html"
        doc = write_html_report(report, str(out), title="Custom title")
        assert out.read_text() == doc
        assert "Custom title" in doc
