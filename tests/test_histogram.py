"""PR 8 — latency histograms, rolling windows, and their exposition.

Four contracts pinned here:

1. **Merge algebra.**  ``LatencyHistogram.merge`` is associative and
   commutative on quantiles (property-tested): however worker snapshots
   regroup on their way back from a process pool, the aggregate
   distribution is identical.  The jobs=1 vs jobs=4 parity test drives
   the same invariant through a real ``ScanMetrics`` split.
2. **Prometheus exposition conformance.**  Bucket series are cumulative,
   ``le`` bounds strictly increase, the mandatory ``+Inf`` bucket equals
   ``_count``, and label values survive newline/backslash/quote escaping.
3. **Rolling windows.**  Slots rotate in O(1) under an injectable clock,
   stale slots fall out of the snapshot, and rates honour the horizon.
4. **The /statusz renderer** produces a self-contained HTML document
   from a live server object.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.collector import ScanMetrics
from repro.observability.exporters import histogram_families, to_prometheus
from repro.observability.histogram import (
    BUCKET_BOUNDS,
    INF_BUCKET,
    LatencyHistogram,
    RollingWindow,
    bucket_index,
)

durations = st.floats(
    min_value=0.0, max_value=500.0, allow_nan=False, allow_infinity=False
)


def _hist(values):
    h = LatencyHistogram()
    for v in values:
        h.observe(v)
    return h


class TestBucketLayout:
    def test_bounds_strictly_increase(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert len(set(BUCKET_BOUNDS)) == len(BUCKET_BOUNDS)

    def test_bucket_index_le_semantics(self):
        # a value exactly on a bound lands in that bound's bucket
        for i, bound in enumerate(BUCKET_BOUNDS):
            assert bucket_index(bound) == i
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(BUCKET_BOUNDS[-1] * 2) == INF_BUCKET

    def test_spans_microseconds_to_minutes(self):
        assert BUCKET_BOUNDS[0] <= 1e-4
        assert BUCKET_BOUNDS[-1] >= 60.0


class TestHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.quantile(0.5) is None
        assert h.mean() is None
        assert h.cumulative_buckets() == [("+Inf", 0)]

    def test_observe_accumulates(self):
        h = _hist([0.001, 0.002, 0.004])
        assert h.count == 3
        assert h.sum_s == pytest.approx(0.007)
        assert h.max_s == pytest.approx(0.004)

    def test_quantile_monotone(self):
        h = _hist([0.0005 * i for i in range(1, 200)])
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_quantile_within_relative_error(self):
        # fixed √2 buckets promise ~±50% worst-case relative error;
        # check a known distribution lands in the right neighbourhood
        h = _hist([0.010] * 90 + [0.100] * 10)
        p50 = h.quantile(0.5)
        p99 = h.quantile(0.99)
        assert 0.005 < p50 < 0.020
        assert 0.050 < p99 <= 0.150

    def test_inf_bucket_interpolates_to_max(self):
        huge = BUCKET_BOUNDS[-1] * 3
        h = _hist([huge])
        assert h.quantile(1.0) <= huge
        assert h.quantile(0.5) <= huge

    def test_serialization_roundtrip(self):
        h = _hist([0.0001, 0.5, 300.0])
        clone = LatencyHistogram.from_dict(h.to_dict())
        assert clone == h

    def test_json_roundtrip_via_scanmetrics(self):
        import json

        m = ScanMetrics()
        m.observe("phase_seconds/detect", 0.010)
        m.observe("file_seconds", 0.020)
        wire = json.loads(json.dumps(m.to_dict()))
        back = ScanMetrics.from_dict(wire)
        assert back.durations.keys() == m.durations.keys()
        assert back.durations["file_seconds"] == m.durations["file_seconds"]

    @given(st.lists(durations, max_size=60), st.lists(durations, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes(self, a, b):
        ab = _hist(a).merge(_hist(b))
        ba = _hist(b).merge(_hist(a))
        assert ab.buckets == ba.buckets
        assert ab.count == ba.count
        assert ab.max_s == ba.max_s
        for q in (0.5, 0.95, 0.99):
            assert ab.quantile(q) == ba.quantile(q)

    @given(
        st.lists(durations, max_size=40),
        st.lists(durations, max_size=40),
        st.lists(durations, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        left = _hist(a).merge(_hist(b)).merge(_hist(c))
        right = _hist(a).merge(_hist(b).merge(_hist(c)))
        assert left.buckets == right.buckets
        assert left.count == right.count
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == right.quantile(q)

    @given(st.lists(durations, min_size=1, max_size=80), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_jobs_split_quantile_parity(self, values, jobs):
        # the jobs=1 vs jobs=4 claim: shard observations across N worker
        # collectors, fold the snapshots back, get identical quantiles
        whole = ScanMetrics()
        for v in values:
            whole.observe("file_seconds", v)
        shards = [ScanMetrics() for _ in range(jobs)]
        for i, v in enumerate(values):
            shards[i % jobs].observe("file_seconds", v)
        merged = ScanMetrics()
        for shard in shards:
            merged.merge(ScanMetrics.from_dict(shard.to_dict()))
        h_whole = whole.durations["file_seconds"]
        h_merged = merged.durations["file_seconds"]
        assert h_merged.buckets == h_whole.buckets
        assert h_merged.quantiles() == h_whole.quantiles()

    def test_time_file_records_both_tables(self):
        m = ScanMetrics()
        m.time_file("a.py", 0.030)
        assert m.files["a.py"] == pytest.approx(0.030)
        assert m.durations["file_seconds"].count == 1

    def test_merge_does_not_double_count_durations(self):
        a = ScanMetrics()
        a.time_file("a.py", 0.010)
        b = ScanMetrics()
        b.time_file("b.py", 0.020)
        a.merge(b)
        assert a.durations["file_seconds"].count == 2
        assert len(a.files) == 2


class TestExposition:
    def test_cumulative_and_inf_equals_count(self):
        h = _hist([0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 200.0])
        pairs = h.cumulative_buckets()
        counts = [n for _, n in pairs]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert pairs[-1] == ("+Inf", h.count)
        les = [le for le, _ in pairs[:-1]]
        assert [float(le) for le in les] == sorted(float(le) for le in les)

    def test_family_lines_shape(self):
        m = ScanMetrics()
        m.observe("server_request_seconds//v1/analyze", 0.005)
        m.observe("server_request_seconds//v1/analyze", 0.009)
        lines = histogram_families(m.durations)
        text = "\n".join(lines)
        assert "# TYPE patchitpy_server_request_seconds histogram" in text
        assert 'endpoint="/v1/analyze"' in text
        bucket_lines = [l for l in lines if "_bucket{" in l]
        assert bucket_lines[-1].endswith("2")
        assert 'le="+Inf"' in bucket_lines[-1]
        assert 'patchitpy_server_request_seconds_count{endpoint="/v1/analyze"} 2' in lines

    def test_inf_bucket_equals_count_in_exposition(self):
        m = ScanMetrics()
        for v in (0.001, 0.5, 400.0):
            m.observe("file_seconds", v)
        text = "\n".join(histogram_families(m.durations))
        inf_line = [
            l for l in text.splitlines() if l.startswith("patchitpy_file_seconds_bucket") and "+Inf" in l
        ]
        count_line = [
            l for l in text.splitlines() if l.startswith("patchitpy_file_seconds_count")
        ]
        assert inf_line[0].rsplit(" ", 1)[1] == count_line[0].rsplit(" ", 1)[1] == "3"

    @pytest.mark.parametrize(
        "label,escaped",
        [
            ('quo"te', 'quo\\"te'),
            ("back\\slash", "back\\\\slash"),
            ("new\nline", "new\\nline"),
            ('all\\"\n', 'all\\\\\\"\\n'),
        ],
    )
    def test_label_escaping(self, label, escaped):
        m = ScanMetrics()
        m.observe("phase_seconds/" + label, 0.001)
        text = "\n".join(histogram_families(m.durations))
        assert f'phase="{escaped}"' in text
        # escaping keeps every sample on exactly one exposition line
        for line in text.splitlines():
            assert line.startswith("#") or len(line.split()) == 2

    def test_rule_verdict_labels_escaped_in_to_prometheus(self):
        m = ScanMetrics()
        m.health_for('R"1\n\\').note_verdict("regressed", "detail", ok=False)
        text = to_prometheus(m)
        assert 'rule="R\\"1\\n\\\\"' in text
        assert "patchitpy_rule_patch_verdicts" in text

    def test_to_prometheus_includes_histograms_only_when_present(self):
        assert "patchitpy_file_seconds_bucket" not in to_prometheus(ScanMetrics())
        m = ScanMetrics()
        m.observe("file_seconds", 0.001)
        assert "patchitpy_file_seconds_bucket" in to_prometheus(m)


class TestRollingWindow:
    def _window(self, start=1000.0, interval=5.0, slots=12):
        state = {"now": start}
        window = RollingWindow(
            interval_s=interval, slots=slots, clock=lambda: state["now"]
        )
        return window, state

    def test_observe_and_rate(self):
        window, state = self._window()
        for _ in range(10):
            window.count("requests//v1/analyze")
            window.observe("latency//v1/analyze", 0.002)
        snap = window.window(60.0)
        assert snap.total("requests//v1/analyze") == 10
        assert snap.rate("requests//v1/analyze") == pytest.approx(10 / 60.0)
        assert 0.001 < snap.quantile("latency//v1/analyze", 0.5) < 0.004

    def test_slots_rotate_and_expire(self):
        window, state = self._window(interval=5.0, slots=12)  # 60s capacity
        window.count("requests/x")
        state["now"] += 30.0
        window.count("requests/x")
        assert window.window(60.0).total("requests/x") == 2
        # the first event is now outside a 15s horizon
        assert window.window(15.0).total("requests/x") == 1
        # lap the whole ring: the stale slot must not resurface
        state["now"] += 61.0
        assert window.window(60.0).total("requests/x") == 0

    def test_lapped_slot_resets_on_write(self):
        window, state = self._window(interval=1.0, slots=2)
        window.count("requests/x")
        state["now"] += 2.0  # same ring position, new epoch
        window.count("requests/x")
        assert window.window(1.0).total("requests/x") == 1

    def test_horizon_capped_at_capacity(self):
        window, state = self._window(interval=5.0, slots=12)
        window.count("requests/x")
        snap = window.window(10_000.0)
        assert snap.horizon_s == pytest.approx(60.0)

    def test_names_lists_live_histograms(self):
        window, state = self._window()
        window.observe("latency/a", 0.001)
        window.observe("latency/b", 0.002)
        assert list(window.names()) == ["latency/a", "latency/b"]

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            RollingWindow(interval_s=0.0)
        with pytest.raises(ValueError):
            RollingWindow(slots=0)


class TestStatusz:
    def test_renders_from_live_server(self):
        from repro.server.app import BackgroundServer, PatchitPyServer, ServerConfig
        from repro.server.client import ServerClient

        config = ServerConfig(port=0)
        with BackgroundServer(PatchitPyServer(config=config)) as handle:
            with ServerClient(port=handle.port) as client:
                client.analyze("import pickle\npickle.loads(b)\n", patch=True)
                html = client.statusz()
        assert html.startswith("<!doctype html>")
        assert "/v1/analyze" in html
        assert "p95" in html
        assert "Rule health" in html

    def test_escapes_rule_ids(self):
        from repro.server.statusz import render_statusz

        class _Stub:
            class config:
                jobs = 1
                queue_depth = 8

            metrics = ScanMetrics()
            window = RollingWindow(interval_s=5.0, slots=12)
            _started_at = 0.0
            _pool_kind = "thread"
            _pending = 0
            _inflight = 0
            _caches = {}

        _Stub.metrics.health_for("<script>alert(1)</script>").note("f.py", 100.0)
        html = render_statusz(_Stub())
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html
