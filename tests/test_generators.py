"""Tests for the simulated AI code generators."""

import ast
import random

import pytest

from repro.corpus import SCENARIOS, load_prompts
from repro.generators import (
    DEFAULT_SEED,
    generate_all_models,
    make_claude,
    make_copilot,
    make_deepseek,
)
from repro.generators.base import REPAIR_RESISTANT_SCENARIOS
from repro.generators.style import (
    CLAUDE_STYLE,
    COPILOT_STYLE,
    DEEPSEEK_STYLE,
    render_variant,
)
from repro.types import GeneratorName


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = make_copilot().generate_corpus()
        b = make_copilot().generate_corpus()
        assert [s.source for s in a] == [s.source for s in b]

    def test_different_seed_differs(self):
        a = make_copilot(seed=1).generate_corpus()
        b = make_copilot(seed=2).generate_corpus()
        assert [s.source for s in a] != [s.source for s in b]

    def test_single_prompt_consistent_with_corpus(self, prompts):
        generator = make_claude()
        corpus = {s.sample_id: s for s in generator.generate_corpus()}
        one = generator.generate(prompts[10])
        assert corpus[one.sample_id].source == one.source


class TestQuotas:
    """§III-B: Copilot 169/203, Claude 126/203, DeepSeek 166/203."""

    @pytest.mark.parametrize(
        "factory,expected",
        [(make_copilot, 169), (make_claude, 126), (make_deepseek, 166)],
    )
    def test_vulnerable_counts_exact(self, factory, expected):
        samples = factory().generate_corpus()
        assert sum(1 for s in samples if s.is_vulnerable) == expected

    def test_overall_rate_76_percent(self, flat_samples):
        vulnerable = sum(1 for s in flat_samples if s.is_vulnerable)
        assert round(vulnerable / len(flat_samples), 2) == 0.76

    def test_609_total(self, flat_samples):
        assert len(flat_samples) == 609


class TestLabels:
    def test_labels_match_variant(self, flat_samples):
        for sample in flat_samples:
            scenario = SCENARIOS.get(sample.prompt.scenario_key)
            variant = scenario.variant(sample.variant_key)
            assert sample.true_cwe_ids == variant.cwe_ids

    def test_63_distinct_cwes_generated(self, flat_samples):
        cwes = {c for s in flat_samples for c in s.true_cwe_ids}
        assert len(cwes) == 63

    def test_sample_ids_unique(self, flat_samples):
        ids = [s.sample_id for s in flat_samples]
        assert len(set(ids)) == len(ids)


class TestIncompleteness:
    def test_incomplete_flag_matches_parse(self, flat_samples):
        for sample in flat_samples:
            parses = True
            try:
                ast.parse(sample.source)
            except SyntaxError:
                parses = False
            assert parses == (not sample.incomplete), sample.sample_id

    def test_copilot_most_incomplete(self, corpus_samples):
        rates = {
            model.value: sum(s.incomplete for s in items) / len(items)
            for model, items in corpus_samples.items()
        }
        assert rates["copilot"] > rates["deepseek"] > rates["claude"]


class TestStyleEngine:
    def test_render_substitutes_placeholders(self):
        scenario = SCENARIOS.get("sql_user_lookup")
        variant = scenario.variant("fstring_query")
        rng = random.Random("style-test")
        code, _ = render_variant(variant, COPILOT_STYLE, rng)
        assert "$" not in code

    def test_styles_use_distinct_name_pools(self):
        scenario = SCENARIOS.get("sql_user_lookup")
        variant = scenario.variant("fstring_query")
        names = set()
        for style in (COPILOT_STYLE, CLAUDE_STYLE, DEEPSEEK_STYLE):
            code, _ = render_variant(variant, style, random.Random("x"))
            names.add(code)
        assert len(names) == 3

    def test_comment_insertion_stays_parseable(self):
        scenario = SCENARIOS.get("http_request_timeout")
        variant = scenario.variant("no_timeout")
        for trial in range(25):
            rng = random.Random(f"comment:{trial}")
            code, incomplete = render_variant(variant, COPILOT_STYLE, rng)
            if not incomplete:
                ast.parse(code)

    def test_incomplete_transforms_break_parsing(self):
        scenario = SCENARIOS.get("pickle_cache")
        variant = scenario.variant("pickle_loads_request")
        saw_incomplete = False
        for trial in range(40):
            rng = random.Random(f"inc:{trial}")
            code, incomplete = render_variant(variant, COPILOT_STYLE, rng)
            if incomplete:
                saw_incomplete = True
                with pytest.raises(SyntaxError):
                    ast.parse(code)
        assert saw_incomplete


class TestGenerateAllModels:
    def test_three_models(self, corpus_samples):
        assert set(corpus_samples) == {
            GeneratorName.COPILOT,
            GeneratorName.CLAUDE,
            GeneratorName.DEEPSEEK,
        }

    def test_each_model_covers_all_prompts(self, corpus_samples, prompts):
        for items in corpus_samples.values():
            assert len(items) == len(prompts)

    def test_repair_resistant_set_is_known_scenarios(self):
        for key in REPAIR_RESISTANT_SCENARIOS:
            assert key in SCENARIOS

    def test_default_seed_value(self):
        assert DEFAULT_SEED == 2025
