"""Tests for the LSP-style language-server layer."""

import pytest

from repro.ide.protocol import LanguageServer

VULN = 'import pickle\n\ndef restore(blob):\n    return pickle.loads(blob)\n'
URI = "file:///w/restore.py"


@pytest.fixture()
def server():
    return LanguageServer()


class TestLifecycle:
    def test_initialize_capabilities(self, server):
        response = server.initialize()
        assert response["capabilities"]["codeActionProvider"]
        assert response["serverInfo"]["name"] == "patchitpy-ls"

    def test_did_open_publishes_diagnostics(self, server):
        published = server.did_open(URI, VULN)
        assert published["uri"] == URI
        assert len(published["diagnostics"]) == 1
        diagnostic = published["diagnostics"][0]
        assert diagnostic["code"] == "CWE-502"
        assert diagnostic["source"] == "patchitpy"
        assert diagnostic["severity"] == 1  # critical → Error

    def test_did_change_refreshes(self, server):
        server.did_open(URI, VULN)
        published = server.did_change(URI, "x = 1\n")
        assert published["diagnostics"] == []

    def test_did_close_forgets(self, server):
        server.did_open(URI, VULN)
        server.did_close(URI)
        with pytest.raises(KeyError):
            server.document_text(URI)

    def test_diagnostic_range_points_at_call(self, server):
        published = server.did_open(URI, VULN)
        r = published["diagnostics"][0]["range"]
        assert r["start"]["line"] == 3


class TestCodeActions:
    def test_quickfix_offered(self, server):
        server.did_open(URI, VULN)
        actions = server.code_actions(URI)
        assert len(actions) == 1
        action = actions[0]
        assert action["kind"] == "quickfix"
        assert "json" in str(action["edit"]).lower()

    def test_range_filtering(self, server):
        server.did_open(URI, VULN)
        assert server.code_actions(URI, 0, 5) == []  # import line only

    def test_edit_includes_import_insertion(self, server):
        server.did_open(URI, VULN)
        edits = server.code_actions(URI)[0]["edit"]["changes"][URI]
        assert len(edits) == 2  # replacement + import insertion
        assert any("import json" in e["newText"] for e in edits)

    def test_detection_only_findings_have_no_action(self, server):
        server.did_open(URI, "exec(payload)\n")
        assert server.code_actions(URI) == []


class TestApplyEdit:
    def test_roundtrip_fixes_document(self, server):
        server.did_open(URI, VULN)
        action = server.code_actions(URI)[0]
        outcome = server.apply_workspace_edit(action["edit"])
        assert outcome["applied"]
        text = server.document_text(URI)
        assert "json.loads(blob)" in text
        assert "import json" in text
        # refreshed diagnostics show the pickle finding gone
        assert outcome["diagnostics"][URI]["diagnostics"] == [] or all(
            d["code"] != "CWE-502" for d in outcome["diagnostics"][URI]["diagnostics"]
        )

    def test_full_loop_until_clean(self, server):
        source = (
            "import pickle\nfrom flask import Flask, request\n\napp = Flask(__name__)\n\n"
            '@app.route("/x", methods=["POST"])\ndef x():\n'
            "    state = pickle.loads(request.data)\n"
            '    return f"<p>{state}</p>"\n\napp.run(debug=True)\n'
        )
        server.did_open(URI, source)
        for _ in range(8):
            actions = server.code_actions(URI)
            if not actions:
                break
            server.apply_workspace_edit(actions[0]["edit"])
        final = server.did_change(URI, server.document_text(URI))
        assert final["diagnostics"] == []
