"""Tests for the documentation tooling (generator + example linter).

These run the actual scripts the CI workflow runs, so a local
``pytest`` failure here predicts the CI docs-lint failure exactly.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GEN = REPO_ROOT / "scripts" / "gen_cli_docs.py"
LINT = REPO_ROOT / "scripts" / "check_docs_examples.py"


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *argv], capture_output=True, text=True, cwd=REPO_ROOT
    )


class TestGeneratedCliDocs:
    def test_docs_cli_md_is_fresh(self):
        """docs/cli.md matches the parsers (regenerate if this fails)."""
        result = _run(str(GEN), "--check")
        assert result.returncode == 0, result.stderr

    def test_generated_doc_covers_both_parsers(self):
        text = (REPO_ROOT / "docs" / "cli.md").read_text()
        assert "## `patchitpy`" in text
        assert "## `patchitpy serve`" in text
        assert "GENERATED FILE" in text

    def test_every_cli_flag_is_documented(self):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.cli import build_parser
        from repro.server.daemon import build_serve_parser

        text = (REPO_ROOT / "docs" / "cli.md").read_text()
        for parser in (build_parser(), build_serve_parser()):
            for action in parser._actions:
                for option in action.option_strings:
                    if option in ("-h", "--help"):
                        continue
                    assert f"`{option}`" in text, f"{option} missing from docs/cli.md"

    def test_check_detects_drift(self):
        """--check exits non-zero when the file diverges from the parsers."""
        target = REPO_ROOT / "docs" / "cli.md"
        original = target.read_text()
        try:
            target.write_text(original + "\nstale trailing line\n")
            result = _run(str(GEN), "--check")
            assert result.returncode == 1
            assert "stale" in result.stderr
        finally:
            target.write_text(original)


class TestDocsExamples:
    def test_all_documentation_examples_are_valid(self):
        result = _run(str(LINT))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 broken" in result.stdout

    def test_linter_catches_broken_python(self, tmp_path):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        import check_docs_examples as linter

        doc = tmp_path / "doc.md"
        doc.write_text("```python\ndef broken(:\n```\n")
        blocks = list(linter.iter_blocks(doc))
        assert len(blocks) == 1
        _, line, language, body = blocks[0]
        assert line == 1 and language == "python"
        assert "does not compile" in linter.check_python(body)

    def test_linter_checks_console_commands_only(self):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        import check_docs_examples as linter

        transcript = "$ echo hello\nhello output ( not a command\n"
        assert linter.check_console(transcript) == ""
        assert "does not parse" in linter.check_console("$ echo 'unterminated\n")

    def test_linter_validates_json_blocks(self):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        import check_docs_examples as linter

        assert linter.check_json('{"ok": true}\n') == ""
        assert "does not parse" in linter.check_json("{nope}\n")
