"""Unit tests for the core datatypes."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.types import (
    AnalysisReport,
    CodeSample,
    Confidence,
    Finding,
    GeneratorName,
    LineIndex,
    Patch,
    Prompt,
    PromptSource,
    Severity,
    Span,
    iter_lines_with_offsets,
    line_of_offset,
    merge_spans,
)


class TestSpan:
    def test_length(self):
        assert Span(2, 10).length == 8

    def test_empty_span_allowed(self):
        assert Span(5, 5).length == 0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Span(-1, 4)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Span(4, 2)

    def test_overlap_true(self):
        assert Span(0, 5).overlaps(Span(4, 9))

    def test_overlap_symmetric(self):
        assert Span(4, 9).overlaps(Span(0, 5))

    def test_adjacent_spans_do_not_overlap(self):
        assert not Span(0, 5).overlaps(Span(5, 9))

    def test_contains(self):
        assert Span(0, 10).contains(Span(2, 8))
        assert not Span(0, 10).contains(Span(2, 12))

    def test_shift(self):
        assert Span(2, 4).shift(3) == Span(5, 7)


class TestLineOfOffset:
    def test_first_line(self):
        assert line_of_offset("abc\ndef\n", 0) == 1

    def test_second_line(self):
        assert line_of_offset("abc\ndef\n", 4) == 2

    def test_offset_at_end(self):
        assert line_of_offset("abc\ndef", 7) == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            line_of_offset("abc", 10)


# Newline-dense text, so the generated offsets actually cross line
# boundaries; "\r" is deliberately included because the index treats it
# as ordinary text (only "\n" separates lines).
_LINEY = st.text(alphabet="ab\n\r", max_size=60)


class TestLineIndex:
    def test_matches_line_of_offset_on_simple_source(self):
        source = "abc\ndef\n"
        index = LineIndex(source)
        for offset in range(len(source) + 1):
            assert index.line_of(offset) == line_of_offset(source, offset)

    def test_empty_source_has_one_line(self):
        index = LineIndex("")
        assert len(index) == 1
        assert index.line_of(0) == 1
        assert index.line_text(0) == ""

    def test_out_of_range_rejected(self):
        index = LineIndex("abc")
        with pytest.raises(ValueError):
            index.line_of(10)
        with pytest.raises(ValueError):
            index.line_bounds(-1)

    def test_line_text_keeps_carriage_return(self):
        # "\r\n" terminators: "\r" is ordinary text on its line
        index = LineIndex("one\r\ntwo\r\n")
        assert index.line_text(0) == "one\r"
        assert index.line_text(5) == "two\r"

    def test_bounds_do_not_force_the_start_table(self):
        index = LineIndex("a\nb\nc")
        assert index.line_bounds(2) == (2, 3)
        assert index._starts is None  # rfind/find path, no table built
        assert index.line_of(2) == 2
        assert index._starts is not None

    @given(_LINEY, st.integers(min_value=0, max_value=60))
    @settings(max_examples=200, deadline=None)
    @example("", 0)
    @example("no trailing newline", 5)
    @example("a\r\nb\r\n", 3)
    @example("\r", 1)
    @example("\n\n\n", 2)
    def test_line_of_agrees_with_count(self, source, offset):
        offset = min(offset, len(source))
        index = LineIndex(source)
        # the naive oracles the index replaces
        assert index.line_of(offset) == source.count("\n", 0, offset) + 1
        assert index.line_of(offset) == line_of_offset(source, offset)

    @given(_LINEY, st.integers(min_value=0, max_value=60))
    @settings(max_examples=200, deadline=None)
    @example("", 0)
    @example("tail", 4)
    @example("a\r\nb", 2)
    def test_line_text_agrees_with_split(self, source, offset):
        offset = min(offset, len(source))
        index = LineIndex(source)
        expected = source.split("\n")[index.line_of(offset) - 1]
        assert index.line_text(offset) == expected
        start, end = index.line_bounds(offset)
        assert source[start:end] == expected
        assert start <= offset <= end + 1  # offset may sit on the newline

    @given(_LINEY)
    @settings(max_examples=100, deadline=None)
    @example("")
    @example("a\nb\nc")
    def test_length_counts_split_lines(self, source):
        assert len(LineIndex(source)) == len(source.split("\n"))

    @given(_LINEY, st.integers(min_value=0, max_value=60))
    @settings(max_examples=100, deadline=None)
    def test_built_and_unbuilt_paths_agree(self, source, offset):
        offset = min(offset, len(source))
        unbuilt = LineIndex(source)
        bounds_first = unbuilt.line_bounds(offset)  # rfind/find, no table
        built = LineIndex(source)
        built.line_of(offset)  # forces the start table
        assert built.line_bounds(offset) == bounds_first


class TestMergeSpans:
    def test_empty(self):
        assert merge_spans([]) == ()

    def test_disjoint_kept(self):
        assert merge_spans([Span(0, 2), Span(5, 7)]) == (Span(0, 2), Span(5, 7))

    def test_overlapping_merged(self):
        assert merge_spans([Span(0, 5), Span(3, 9)]) == (Span(0, 9),)

    def test_adjacent_merged(self):
        assert merge_spans([Span(0, 5), Span(5, 9)]) == (Span(0, 9),)

    def test_unsorted_input(self):
        assert merge_spans([Span(5, 9), Span(0, 5)]) == (Span(0, 9),)


class TestIterLines:
    def test_offsets(self):
        rows = list(iter_lines_with_offsets("ab\ncd\n"))
        assert rows == [(1, 0, "ab"), (2, 3, "cd")]

    def test_no_trailing_newline(self):
        rows = list(iter_lines_with_offsets("ab\ncd"))
        assert rows[-1] == (2, 3, "cd")


class TestReport:
    def _finding(self, cwe="CWE-089"):
        return Finding(rule_id="R1", cwe_id=cwe, message="m", span=Span(0, 1))

    def test_vulnerable_when_findings(self):
        report = AnalysisReport(tool="t", source="x", findings=[self._finding()])
        assert report.is_vulnerable

    def test_not_vulnerable_when_empty(self):
        assert not AnalysisReport(tool="t", source="x").is_vulnerable

    def test_cwes_sorted_unique(self):
        report = AnalysisReport(
            tool="t",
            source="x",
            findings=[self._finding("CWE-502"), self._finding("CWE-089"), self._finding("CWE-502")],
        )
        assert report.cwes() == ("CWE-089", "CWE-502")

    def test_findings_for(self):
        report = AnalysisReport(
            tool="t", source="x", findings=[self._finding("CWE-089"), self._finding("CWE-502")]
        )
        assert len(report.findings_for("CWE-089")) == 1


class TestPatch:
    def test_noop(self):
        patch = Patch(rule_id="R", cwe_id="CWE-089", span=Span(3, 3), replacement="")
        assert patch.is_noop()

    def test_not_noop_with_imports(self):
        patch = Patch(
            rule_id="R", cwe_id="CWE-089", span=Span(3, 3), replacement="", new_imports=("import os",)
        )
        assert not patch.is_noop()


class TestPromptAndSample:
    def test_prompt_token_count(self):
        prompt = Prompt(
            prompt_id="X-1",
            source=PromptSource.SECURITYEVAL,
            text="three little words",
            cwe_ids=("CWE-089",),
            scenario_key="sql_user_lookup",
        )
        assert prompt.token_count == 3

    def test_sample_vulnerability_flag(self):
        prompt = Prompt(
            prompt_id="X-1",
            source=PromptSource.LLMSECEVAL,
            text="t",
            cwe_ids=(),
            scenario_key="s",
        )
        sample = CodeSample(
            sample_id="m:X-1",
            generator=GeneratorName.COPILOT,
            prompt=prompt,
            source="print(1)",
            true_cwe_ids=("CWE-089",),
            variant_key="v",
        )
        assert sample.is_vulnerable
        safe = CodeSample(
            sample_id="m:X-2",
            generator=GeneratorName.CLAUDE,
            prompt=prompt,
            source="print(1)",
            true_cwe_ids=(),
            variant_key="v",
        )
        assert not safe.is_vulnerable


class TestEnums:
    def test_severity_str(self):
        assert str(Severity.HIGH) == "high"

    def test_confidence_str(self):
        assert str(Confidence.LOW) == "low"

    def test_generator_values(self):
        assert {g.value for g in GeneratorName} == {"copilot", "claude", "deepseek"}
