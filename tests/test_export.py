"""Tests for the case-study results exporter."""

import json

import pytest

from repro.evaluation.export import (
    SCHEMA_VERSION,
    diff_headline,
    export_results,
    load_results,
    result_to_dict,
)


class TestExport:
    def test_payload_shape(self, case_study):
        payload = result_to_dict(case_study)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["sample_count"] == 609
        assert payload["detection"]["patchitpy"]["all"]["f1"] > 0.9
        assert payload["patching"]["patchitpy"]["all"]["patched_detected"] > 0.7

    def test_json_serializable(self, case_study):
        json.dumps(result_to_dict(case_study))

    def test_roundtrip(self, case_study, tmp_path):
        path = tmp_path / "results.json"
        written = export_results(case_study, path)
        loaded = load_results(path)
        assert loaded == json.loads(json.dumps(written))

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 99}')
        with pytest.raises(ValueError):
            load_results(path)

    def test_diff_headline_self_is_ok(self, case_study):
        payload = result_to_dict(case_study)
        diff = diff_headline(payload, payload)
        assert all(entry["ok"] for entry in diff.values())

    def test_diff_headline_flags_regression(self, case_study):
        payload = result_to_dict(case_study)
        other = json.loads(json.dumps(payload))
        other["detection"]["patchitpy"]["all"]["f1"] -= 0.1
        diff = diff_headline(payload, other)
        assert not diff["f1"]["ok"]

    def test_manual_section_present(self, case_study):
        payload = result_to_dict(case_study)
        assert 0.0 < payload["manual_evaluation"]["discrepancy_rate"] < 0.1
