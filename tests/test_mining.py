"""Tests for the rule-mining pipeline (Fig. 2, Table I)."""

import pytest

from repro.core import PatchitPy
from repro.core.rules import RuleSet
from repro.cwe import OwaspCategory
from repro.exceptions import MiningError
from repro.mining import (
    build_seed_corpus,
    candidate_pairs,
    extract_pattern,
    mine_category,
    pairs_by_category,
    synthesize_rules,
    tokens_to_regex,
    tokens_to_replacement,
)

V1 = '''from flask import Flask, request
app = Flask(__name__)

@app.route("/comments")
def comments():
    name = request.args.get("name", "")
    return f"<p>{name}</p>"

if __name__ == "__main__":
    app.run(debug=True)
'''

V2 = '''from flask import Flask, request, make_response
appl = Flask(__name__)

@appl.route("/showName")
def name():
    username = request.args.get("username")
    return make_response(f"Hello {username}")

if __name__ == "__main__":
    appl.run(debug=True)
'''

S1 = V1.replace("{name}", "{escape(name)}").replace(
    "import Flask, request", "import Flask, request, escape"
).replace("debug=True", "debug=False, use_reloader=False")

S2 = V2.replace("{username}", "{escape(username)}").replace(
    "request, make_response", "request, make_response, escape"
).replace("debug=True", "debug=False, use_debugger=False, use_reloader=False")


class TestSeedCorpus:
    def test_size_about_240(self):
        pairs = build_seed_corpus()
        assert 200 <= len(pairs) <= 240

    def test_pairs_have_both_sides(self):
        for pair in build_seed_corpus()[:30]:
            assert pair.vulnerable_code.strip()
            assert pair.safe_code.strip()
            assert pair.cwe_ids

    def test_deterministic(self):
        a = build_seed_corpus()
        b = build_seed_corpus()
        assert [p.vulnerable_code for p in a] == [p.vulnerable_code for p in b]

    def test_grouping_by_owasp(self):
        grouped = pairs_by_category()
        assert OwaspCategory.A03_INJECTION in grouped
        assert all(
            pair.owasp is category
            for category, pairs in grouped.items()
            for pair in pairs
        )


class TestPatternExtraction:
    def test_table1_pipeline(self):
        pattern = extract_pattern(V1, V2, S1, S2)
        # the bold common pattern contains the standardized request access
        assert "request" in pattern.lcs_vulnerable
        assert "var0" in pattern.lcs_vulnerable
        # the blue additions include escape import and debug hardening
        additions = [t for f in pattern.fragments for t in f.safe_tokens]
        assert "escape" in additions
        assert "use_reloader" in additions

    def test_lcs_texts_render(self):
        pattern = extract_pattern(V1, V2, S1, S2)
        assert "debug" in pattern.lcs_vulnerable_text
        assert "debug" in pattern.lcs_safe_text

    def test_similarity_scores(self):
        pattern = extract_pattern(V1, V2, S1, S2)
        assert 0.4 <= pattern.vulnerable_similarity <= 1.0
        assert 0.4 <= pattern.safe_similarity <= 1.0

    def test_too_dissimilar_raises(self):
        with pytest.raises(MiningError):
            extract_pattern("a = 1\n", "zzz()\n", "b = 2\n", "qqq()\n")


class TestPairMiner:
    def test_candidates_ranked(self):
        candidates = candidate_pairs(OwaspCategory.A03_INJECTION)
        similarities = [c.similarity for c in candidates]
        assert similarities == sorted(similarities, reverse=True)
        assert candidates, "injection category must have similar pairs"

    def test_same_variant_pairs_excluded(self):
        for candidate in candidate_pairs(OwaspCategory.A03_INJECTION)[:50]:
            first = candidate.first.pair_id.rsplit("/", 1)[0]
            second = candidate.second.pair_id.rsplit("/", 1)[0]
            assert first != second

    def test_mine_category_yields_patterns(self):
        mined = list(mine_category(OwaspCategory.A08_INTEGRITY_FAILURES, limit=3))
        assert mined
        for candidate, pattern in mined:
            assert pattern.lcs_vulnerable


class TestSynthesis:
    def test_tokens_to_regex_var_groups(self):
        regex = tokens_to_regex(("run", "(", "debug", "=", "True", ")"))
        import re

        assert re.search(regex, "app.run(debug=True)")

    def test_var_capture_and_backref(self):
        import re

        regex = tokens_to_regex(("check", "(", "var0", ",", "var0", ")"))
        assert re.search(regex, "check(token, token)")
        assert not re.search(regex, "check(token, other)")

    def test_replacement_backrefs(self):
        replacement = tokens_to_replacement(("safe", "(", "var0", ")"))
        assert replacement == "safe(\\g<var0>)"

    def test_synthesized_rule_detects_and_patches_unseen(self):
        pattern = extract_pattern(V1, V2, S1, S2)
        rules = synthesize_rules(pattern, "CWE-209")
        engine = PatchitPy(rules=RuleSet(rules), prune_imports=False)
        unseen = V1.replace("/comments", "/hello").replace("name", "visitor")
        result = engine.patch(unseen)
        assert "debug=False" in result.patched
        assert "use_reloader=False" in result.patched

    def test_rules_have_patch_templates(self):
        pattern = extract_pattern(V1, V2, S1, S2)
        for rule in synthesize_rules(pattern, "CWE-209"):
            assert rule.patch is not None

    def test_unsynthesizable_pattern_raises(self):
        from repro.mining.pattern_extractor import MinedPattern

        empty = MinedPattern((), (), (), 1.0, 1.0)
        with pytest.raises(MiningError):
            synthesize_rules(empty, "CWE-079")


class TestEndToEndPipeline:
    def test_mine_ruleset_produces_executable_rules(self):
        from repro.core import PatchitPy
        from repro.mining import MiningReport, mine_ruleset

        report = MiningReport()
        rules = mine_ruleset(report=report)
        assert len(rules) >= 15
        assert report.rules_kept == len(rules)
        engine = PatchitPy(rules=rules, prune_imports=False)
        engine.detect("x = 1\n")  # executable without errors

    def test_mined_rules_have_unique_ids(self):
        from repro.mining import mine_ruleset

        rules = list(mine_ruleset())
        ids = [r.rule_id for r in rules]
        assert len(set(ids)) == len(ids)

    def test_mined_vs_curated_shape(self):
        from repro.mining import evaluate_mined_ruleset

        result, report = evaluate_mined_ruleset()
        assert result.curated_recall > result.mined_recall
        assert result.curated_precision > result.mined_precision
        assert 0.3 <= result.recall_recovered <= 0.9
        assert report.pairs_considered > 30
