"""Smoke-mode run of the project-scan benchmark under the tier-1 suite.

The full benchmark lives in ``benchmarks/bench_project_scan.py`` and is
sized for meaningful timings; this test imports it directly and runs a
tiny corpus so every CI run still exercises the cold/parallel/warm scan
paths end to end and publishes the measured numbers as a build artifact
(``benchmarks/output/project_scan_smoke.txt``).
"""

import importlib.util
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_project_scan.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_project_scan", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.benchmark_smoke
def test_project_scan_benchmark_smoke(tmp_path):
    bench = _load_bench_module()
    results = bench.run_project_scan_benchmark(tmp_path, files=12, jobs=2, sections=4)

    # correctness invariants hold even at smoke scale
    assert results["warm_detect_calls"] == 0
    assert results["cold_detect_calls"] == 12
    assert results["warm_cache_hits"] == 12
    assert results["warm_s"] < results["cold_cached_s"]

    text = bench.format_report(results)
    bench.OUTPUT_DIR.mkdir(exist_ok=True)
    artifact = bench.OUTPUT_DIR / "project_scan_smoke.txt"
    artifact.write_text(text + "\n")
    assert artifact.exists()
    assert "warm cached" in text
