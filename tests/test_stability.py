"""Tests for the seed-stability analysis."""

from repro.evaluation.stability import MetricSpread, _spread, seed_stability


class TestSpread:
    def test_constant_values(self):
        spread = _spread([0.9, 0.9, 0.9])
        assert spread.mean == 0.9 and spread.std == 0.0

    def test_min_max(self):
        spread = _spread([0.8, 1.0])
        assert spread.minimum == 0.8 and spread.maximum == 1.0
        assert abs(spread.mean - 0.9) < 1e-12

    def test_str_format(self):
        text = str(MetricSpread(0.93, 0.01, 0.92, 0.94))
        assert "0.930" in text and "±" in text


class TestSeedStability:
    def test_two_seed_run(self):
        result = seed_stability(seeds=(2025, 7))
        assert set(result.per_seed) == {2025, 7}
        assert result.f1.minimum > 0.85
        assert result.precision.minimum > 0.9
        assert "Seed stability" in result.summary()
