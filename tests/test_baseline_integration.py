"""Cross-tool integration tests over the generated corpus."""

import pytest

from repro.baselines import (
    MiniBandit,
    MiniCodeQL,
    MiniSemgrep,
    PatchitPyTool,
    make_chatgpt,
    make_claude_llm,
    make_gemini,
)
from repro.metrics import from_verdicts


@pytest.fixture(scope="module")
def verdict_table(flat_samples):
    tools = {
        "patchitpy": PatchitPyTool(),
        "codeql": MiniCodeQL(),
        "semgrep": MiniSemgrep(),
        "bandit": MiniBandit(),
        "chatgpt-4o": make_chatgpt(),
        "claude-3.7": make_claude_llm(),
        "gemini-2.0": make_gemini(),
    }
    return {
        name: {s.sample_id: tool.is_vulnerable(s) for s in flat_samples}
        for name, tool in tools.items()
    }


class TestToolInterface:
    def test_names_stable(self):
        assert PatchitPyTool().name == "patchitpy"
        assert MiniCodeQL().name == "codeql"
        assert MiniSemgrep().name == "semgrep"
        assert MiniBandit().name == "bandit"

    def test_patch_capability_flags(self):
        assert PatchitPyTool().can_patch
        assert make_chatgpt().can_patch
        assert not MiniCodeQL().can_patch
        assert not MiniSemgrep().can_patch
        assert not MiniBandit().can_patch

    def test_detection_only_tools_return_none_patch(self, flat_samples):
        sample = flat_samples[0]
        assert MiniCodeQL().patch(sample) is None
        assert MiniBandit().patch(sample) is None


class TestCorpusBehaviour:
    def test_ast_tools_silent_on_incomplete(self, flat_samples):
        bandit = MiniBandit()
        codeql = MiniCodeQL()
        incomplete = [s for s in flat_samples if s.incomplete]
        assert incomplete
        for sample in incomplete[:50]:
            assert not bandit.is_vulnerable(sample)
            assert not codeql.is_vulnerable(sample)

    def test_pattern_tools_survive_incomplete(self, flat_samples):
        patchitpy = PatchitPyTool()
        incomplete_vulnerable = [
            s for s in flat_samples if s.incomplete and s.is_vulnerable
        ]
        detected = sum(patchitpy.is_vulnerable(s) for s in incomplete_vulnerable)
        assert detected / len(incomplete_vulnerable) > 0.7

    def test_relative_f1_ordering(self, flat_samples, verdict_table):
        f1 = {}
        for tool, verdicts in verdict_table.items():
            matrix = from_verdicts(
                (s.is_vulnerable, verdicts[s.sample_id]) for s in flat_samples
            )
            f1[tool] = matrix.f1
        assert f1["patchitpy"] == max(f1.values())
        for static_tool in ("codeql", "semgrep", "bandit"):
            for llm in ("chatgpt-4o", "claude-3.7", "gemini-2.0"):
                assert f1[llm] > f1[static_tool]

    def test_static_tools_mostly_agree_on_safe(self, flat_samples, verdict_table):
        safe = [s for s in flat_samples if not s.is_vulnerable]
        for tool in ("codeql", "semgrep", "bandit"):
            false_alarms = sum(verdict_table[tool][s.sample_id] for s in safe)
            assert false_alarms / len(safe) < 0.15, tool

    def test_patchitpy_patches_verify_against_oracle(self, flat_samples):
        from repro.evaluation.oracle import still_vulnerable

        tool = PatchitPyTool()
        checked = repaired = 0
        for sample in flat_samples[:120]:
            if not sample.is_vulnerable or not tool.is_vulnerable(sample):
                continue
            checked += 1
            patched = tool.patch(sample)
            if patched and not still_vulnerable(patched, sample.true_cwe_ids):
                repaired += 1
        assert checked > 40
        assert repaired / checked > 0.6
