"""Tests for the rule-catalog documentation generator."""

from repro.core.rules import RuleSet, default_ruleset
from repro.core.rulesdoc import render_rules_markdown, write_rules_markdown


class TestRulesDoc:
    def test_contains_every_rule_id(self):
        text = render_rules_markdown()
        from repro.core.rules import extended_ruleset

        for rule in extended_ruleset():
            assert f"`{rule.rule_id}`" in text

    def test_groups_by_owasp(self):
        text = render_rules_markdown()
        assert "## A03:2021 Injection" in text
        assert "## A08:2021 Software and Data Integrity Failures" in text

    def test_marks_extended_rules(self):
        text = render_rules_markdown()
        assert "*ext*" in text

    def test_patchability_markers(self):
        text = render_rules_markdown()
        assert "✔" in text and "✘" in text

    def test_custom_ruleset(self):
        subset = RuleSet([default_ruleset().get("PIT-A08-01")])
        text = render_rules_markdown(subset)
        assert "PIT-A08-01" in text
        assert "PIT-A03-01" not in text

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "RULES.md"
        text = write_rules_markdown(str(path))
        assert path.read_text() == text

    def test_header_counts(self):
        text = render_rules_markdown()
        assert "109 detection rules" in text
        assert "85 in the paper's default set" in text
