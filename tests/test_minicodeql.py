"""Unit tests for mini-CodeQL (extractor, taint, queries)."""

import pytest

from repro.baselines.minicodeql import MiniCodeQL, Query, QuerySuite, default_suite, extract
from repro.exceptions import QueryError
from repro.types import Severity, Span


def _query_ids(source: str):
    return {f.rule_id for f in MiniCodeQL().analyze_source(source).findings}


class TestExtractor:
    def test_calls_extracted(self):
        db = extract("import os\nos.system(cmd)\n")
        assert db.ok
        assert [c.name for c in db.calls] == ["os.system"]
        assert db.calls[0].arg_sources == ("cmd",)

    def test_kwargs_extracted(self):
        db = extract("requests.get(url, verify=False)\n")
        assert ("verify", "False") in db.calls[0].kwargs

    def test_assignments(self):
        db = extract("query = f\"SELECT {x}\"\n")
        assert db.assigns[0].target == "query"
        assert db.assigns[0].value_source.startswith('f"SELECT')

    def test_imports(self):
        db = extract("import os\nfrom flask import Flask\n")
        assert db.has_import("os")
        assert db.has_import("flask")
        assert db.has_import("flask.Flask")

    def test_parse_failure(self):
        db = extract("def broken(:\n")
        assert not db.ok

    def test_spans_map_to_source(self):
        source = "x = 1\neval(y)\n"
        db = extract(source)
        call = db.calls[0]
        assert source[call.span.start : call.span.end] == "eval(y)"


class TestTaint:
    def test_request_seed(self):
        db = extract('target = request.args.get("next")\n')
        assert "target" in db.tainted_names

    def test_propagation_through_assignment(self):
        db = extract('a = request.args.get("x")\nb = a\nc = b.strip()\n')
        assert {"a", "b", "c"} <= db.tainted_names

    def test_clean_names_untainted(self):
        db = extract("a = 1\nb = a + 2\n")
        assert db.tainted_names == set()

    def test_is_tainted_expr(self):
        db = extract('u = request.args.get("u")\n')
        assert db.is_tainted_expr("u + '/suffix'")
        assert not db.is_tainted_expr("'constant'")


class TestQueries:
    @pytest.mark.parametrize(
        "source,query_id",
        [
            ('cur.execute(f"SELECT * FROM t WHERE id={x}")', "py/sql-injection"),
            ("os.system(f\"ping {h}\")", "py/command-line-injection"),
            ("subprocess.run(c, shell=True)", "py/command-line-injection"),
            ("eval(expr)", "py/code-injection"),
            ("pickle.loads(b)", "py/unsafe-deserialization"),
            ("yaml.load(fh)", "py/unsafe-deserialization"),
            ("app.run(debug=True)", "py/flask-debug"),
            ("from Crypto.Cipher import DES\nDES.new(k)", "py/weak-cryptographic-algorithm"),
            ("import ssl\nx = ssl.PROTOCOL_TLSv1", "py/insecure-protocol"),
            ("requests.get(u, verify=False)", "py/request-without-cert-validation"),
            ('password = "letmein1"', "py/hardcoded-credentials"),
            ("tempfile.mktemp()", "py/insecure-temporary-file"),
            ("from lxml import etree\netree.parse(p)", "py/xxe"),
            ('app.run(host="0.0.0.0")', "py/bind-socket-all-network-interfaces"),
        ],
    )
    def test_query_fires(self, source, query_id):
        assert query_id in _query_ids(source)

    def test_flow_based_sql_injection(self):
        # the two-step variant the pattern engine misses
        source = (
            'query = f"DELETE FROM t WHERE id = {x}"\n'
            "cur.execute(query)\n"
        )
        assert "py/sql-injection" in _query_ids(source)

    def test_tainted_redirect(self):
        source = (
            'from flask import request, redirect\n'
            'target = request.args.get("next")\n'
            "redirect(target)\n"
        )
        assert "py/url-redirection" in _query_ids(source)

    def test_urlparse_suppresses_redirect(self):
        source = (
            "from urllib.parse import urlparse\n"
            'target = request.args.get("next")\n'
            "if urlparse(target).netloc:\n    target = '/'\n"
            "redirect(target)\n"
        )
        assert "py/url-redirection" not in _query_ids(source)

    def test_parameterized_sql_clean(self):
        assert "py/sql-injection" not in _query_ids(
            'cur.execute("SELECT * FROM t WHERE id=?", (x,))'
        )

    def test_eval_of_literal_clean(self):
        assert "py/code-injection" not in _query_ids('eval("2 + 2")')

    def test_no_findings_on_parse_failure(self):
        report = MiniCodeQL().analyze_source("```python\neval(x)\n```")
        assert report.parse_failed
        assert report.findings == []


class TestQuerySuite:
    def test_duplicate_ids_rejected(self):
        q = Query("py/x", "CWE-089", "d", lambda db: [], Severity.LOW)
        with pytest.raises(QueryError):
            QuerySuite([q, q])

    def test_default_suite_size(self):
        assert len(default_suite()) == 20

    def test_custom_suite(self):
        def body(db):
            for call in db.calls_named("dangerous"):
                yield "found", call.span

        suite = QuerySuite([Query("py/custom", "CWE-094", "d", body)])
        tool = MiniCodeQL(suite=suite)
        report = tool.analyze_source("dangerous(1)\n")
        assert [f.rule_id for f in report.findings] == ["py/custom"]

    def test_detection_only(self):
        tool = MiniCodeQL()
        assert not tool.can_patch
        assert tool.patch(None) is None
