"""Tests for the project-scale scanner."""

from pathlib import Path

import pytest

from repro import ProjectScanner, scan_paths

VULN_A = "import pickle\n\ndata = pickle.loads(blob)\n"
VULN_B = 'import hashlib\n\nh = hashlib.md5(secret_value)\n'
CLEAN = "def add(a, b):\n    return a + b\n"


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text(VULN_A)
    (tmp_path / "pkg" / "clean.py").write_text(CLEAN)
    (tmp_path / "b.py").write_text(VULN_B)
    (tmp_path / "notes.txt").write_text("not python")
    (tmp_path / ".venv").mkdir()
    (tmp_path / ".venv" / "skip.py").write_text(VULN_A)
    return tmp_path


class TestWalking:
    def test_only_python_files(self, tree):
        names = {p.name for p in ProjectScanner().python_files(tree)}
        assert names == {"a.py", "clean.py", "b.py"}

    def test_excluded_dirs_skipped(self, tree):
        paths = list(ProjectScanner().python_files(tree))
        assert not any(".venv" in str(p) for p in paths)

    def test_single_file_root(self, tree):
        paths = list(ProjectScanner().python_files(tree / "b.py"))
        assert paths == [tree / "b.py"]

    def test_deterministic_order(self, tree):
        scanner = ProjectScanner()
        assert list(scanner.python_files(tree)) == list(scanner.python_files(tree))


class TestScan:
    def test_aggregation(self, tree):
        report = ProjectScanner().scan(tree)
        assert report.scanned_count == 3
        assert len(report.vulnerable_files) == 2
        assert report.total_findings >= 2

    def test_findings_by_cwe(self, tree):
        counts = ProjectScanner().scan(tree).findings_by_cwe()
        assert counts.get("CWE-502") == 1
        assert counts.get("CWE-328") == 1

    def test_summary_text(self, tree):
        text = ProjectScanner().scan(tree).summary()
        assert "vulnerable files: 2" in text

    def test_oversized_file_skipped(self, tmp_path):
        big = tmp_path / "big.py"
        big.write_text("x = 1\n" * 300000)
        scanner = ProjectScanner(max_file_bytes=1024)
        report = scanner.scan(tmp_path)
        assert report.files[0].error == "file too large"

    def test_scan_paths_merges(self, tree):
        report = scan_paths([tree / "pkg", tree / "b.py"])
        assert report.scanned_count == 3


class TestPatchTree:
    def test_patches_applied_in_place(self, tree):
        report = ProjectScanner().patch_tree(tree)
        assert (tree / "pkg" / "a.py").read_text().find("json.loads") != -1
        assert "sha256" in (tree / "b.py").read_text()
        patched = [f for f in report.files if f.patched]
        assert len(patched) == 2

    def test_backups_written(self, tree):
        ProjectScanner().patch_tree(tree, backup=True)
        assert (tree / "pkg" / "a.py.orig").read_text() == VULN_A

    def test_no_backup_mode(self, tree):
        ProjectScanner().patch_tree(tree, backup=False)
        assert not (tree / "pkg" / "a.py.orig").exists()

    def test_clean_files_untouched(self, tree):
        ProjectScanner().patch_tree(tree)
        assert (tree / "pkg" / "clean.py").read_text() == CLEAN

    def test_patched_tree_scans_clean(self, tree):
        scanner = ProjectScanner()
        scanner.patch_tree(tree)
        # remove backups so the rescan only sees patched files
        for backup in tree.rglob("*.orig"):
            backup.unlink()
        rescan = scanner.scan(tree)
        assert rescan.total_findings == 0


class TestParallelScan:
    def test_parallel_equals_serial(self, tree):
        scanner = ProjectScanner()
        serial = scanner.scan(tree, jobs=1)
        parallel = scanner.scan(tree, jobs=4)
        assert [f.path for f in serial.files] == [f.path for f in parallel.files]
        assert [len(f.findings) for f in serial.files] == [
            len(f.findings) for f in parallel.files
        ]

    def test_parallel_single_file(self, tree):
        report = ProjectScanner().scan(tree / "b.py", jobs=8)
        assert report.scanned_count == 1

    def test_process_mode_equals_serial(self, tree):
        scanner = ProjectScanner()
        serial = scanner.scan(tree, jobs=1)
        procs = scanner.scan(tree, jobs=4, processes=True)
        assert [f.path for f in serial.files] == [f.path for f in procs.files]
        assert [
            [fi.to_dict() for fi in f.findings] for f in serial.files
        ] == [[fi.to_dict() for fi in f.findings] for f in procs.files]

    def test_process_mode_with_unpicklable_engine_falls_back(self, tree):
        from repro import PatchitPy

        engine = PatchitPy()
        engine.unpicklable = lambda: None  # closures do not pickle
        scanner = ProjectScanner(engine=engine)
        report = scanner.scan(tree, jobs=4, processes=True)
        assert report.scanned_count == 3

    def test_process_mode_reports_errors(self, tree):
        (tree / "bad.py").write_bytes(b"\xff\xfe\x00 junk")
        report = ProjectScanner().scan(tree, jobs=4, processes=True)
        errors = [f for f in report.files if f.error]
        assert len(errors) == 1 and errors[0].path.name == "bad.py"


class TestPatchTreeRobustness:
    def test_undecodable_file_does_not_abort_tree(self, tree):
        (tree / "bad.py").write_bytes(b"\xff\xfe\x00 junk")
        report = ProjectScanner().patch_tree(tree)
        bad = [f for f in report.files if f.path.name == "bad.py"][0]
        assert bad.error and not bad.patched
        # the rest of the tree was still patched
        assert "json.loads" in (tree / "pkg" / "a.py").read_text()
        assert "sha256" in (tree / "b.py").read_text()

    def test_single_read_no_toctou_reread(self, tree, monkeypatch):
        """patch_tree must not re-read a file between detect and patch."""
        from pathlib import Path as PathType

        reads = []
        original = PathType.read_bytes

        def counting_read_bytes(self):
            reads.append(self.name)
            return original(self)

        monkeypatch.setattr(PathType, "read_bytes", counting_read_bytes)
        monkeypatch.setattr(
            PathType,
            "read_text",
            lambda self, *a, **k: (_ for _ in ()).throw(
                AssertionError(f"re-read of {self}")
            ),
        )
        ProjectScanner().patch_tree(tree, backup=False)
        assert reads.count("a.py") == 1
        assert reads.count("b.py") == 1


class TestScanPaths:
    def test_overlapping_roots_deduplicated(self, tree):
        report = scan_paths([tree, tree / "pkg"])
        names = [f.path.name for f in report.files]
        assert sorted(names) == ["a.py", "b.py", "clean.py"]
        assert report.scanned_count == 3

    def test_jobs_forwarded(self, tree):
        serial = scan_paths([tree])
        parallel = scan_paths([tree], jobs=4, processes=True)
        assert [f.path for f in serial.files] == [f.path for f in parallel.files]
        assert serial.total_findings == parallel.total_findings

    def test_no_paths_raises(self):
        with pytest.raises(ValueError):
            scan_paths([])
