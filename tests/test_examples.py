"""Integrity tests: every shipped example must run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

_EXAMPLES = [
    "quickstart.py",
    "flask_webapp_hardening.py",
    "ai_pipeline_audit.py",
    "rule_mining_demo.py",
    "ide_session.py",
    "language_server_demo.py",
    "javascript_audit.py",
    "project_scan_report.py",
]


@pytest.mark.parametrize("name", _EXAMPLES)
def test_example_runs_cleanly(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_example_list_is_complete():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(_EXAMPLES) <= shipped
    # full_case_study is exercised via the harness tests (it is the slowest)
    assert "full_case_study.py" in shipped
