"""Tests for diff-aware review mode (``repro.core.review``).

The load-bearing property is baseline suppression identity: a finding
whose line number merely shifts (code inserted above it) keeps its
content-hash ``finding_key`` and stays *pre-existing*, while a genuinely
new finding — even one firing the same rule with different matched text
— is *introduced*.  That property is tested directly against
``finding_key`` over a generated corpus, and end to end through
``review()``, the CLI subcommand, and the server endpoint.
"""

from __future__ import annotations

import difflib
import json
import subprocess

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BackgroundServer,
    PatchitPy,
    PatchitPyServer,
    ReviewFinding,
    ReviewReport,
    ScanMetrics,
    ServerClient,
    ServerConfig,
    ServerError,
    review,
)
from repro.core.review import (
    STATUS_FIXED,
    STATUS_INTRODUCED,
    STATUS_PRE_EXISTING,
    ReviewError,
    parse_unified_diff,
    patch_introduced,
    reverse_apply,
)
from repro.core.sarif import review_to_sarif
from repro.core.verify import finding_key
from repro.observability.trace import TraceRecorder

ENGINE = PatchitPy()

# Statements the default 85-rule catalog reliably flags, used to build
# synthetic baselines and changes.
VULN_YAML = "cfg = yaml.load(data)\n"
VULN_YAML_OTHER = "cfg2 = yaml.load(other)\n"
VULN_SHELL = 'subprocess.call("ls " + name, shell=True)\n'
PREAMBLE = "import yaml\nimport subprocess\n"


def unified(old: str, new: str, path: str = "app.py") -> str:
    return "".join(
        difflib.unified_diff(
            old.splitlines(keepends=True),
            new.splitlines(keepends=True),
            fromfile=f"a/{path}",
            tofile=f"b/{path}",
        )
    )


def review_of(tmp_path, old: str, new: str, **kwargs):
    """Write ``new`` as the worktree head and review the diff from ``old``."""
    (tmp_path / "app.py").write_text(new)
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("engine", ENGINE)
    return review(tmp_path, diff_text=unified(old, new), **kwargs)


# --------------------------------------------------------------- diff layer


class TestDiffParsing:
    def test_git_style_headers(self):
        diff = (
            "diff --git a/pkg/mod.py b/pkg/mod.py\n"
            "index 1111111..2222222 100644\n"
            "--- a/pkg/mod.py\n"
            "+++ b/pkg/mod.py\n"
            "@@ -1,2 +1,3 @@\n"
            " import os\n"
            "+import sys\n"
            " x = 1\n"
        )
        (fd,) = parse_unified_diff(diff)
        assert fd.old_path == "pkg/mod.py"
        assert fd.new_path == "pkg/mod.py"
        assert fd.change == "modified"
        (hunk,) = fd.hunks
        assert (hunk.old_start, hunk.old_count) == (1, 2)
        assert (hunk.new_start, hunk.new_count) == (1, 3)
        assert hunk.new_range == (1, 3)

    def test_added_and_deleted_files(self):
        diff = (
            "--- /dev/null\n"
            "+++ b/new.py\n"
            "@@ -0,0 +1,1 @@\n"
            "+x = 1\n"
            "--- a/old.py\n"
            "+++ /dev/null\n"
            "@@ -1,1 +0,0 @@\n"
            "-y = 2\n"
        )
        added, deleted = parse_unified_diff(diff)
        assert added.old_path is None and added.change == "added"
        assert deleted.new_path is None and deleted.change == "deleted"
        assert deleted.hunks[0].old_lines == ["y = 2\n"]

    def test_no_newline_marker(self):
        old = "a = 1\n"
        new = "a = 1\nb = 2"  # no trailing newline
        (fd,) = parse_unified_diff(unified(old, new))
        assert fd.hunks[0].new_lines[-1] == "b = 2"
        assert reverse_apply(new, fd.hunks) == old

    def test_multi_file_diff(self):
        diff = unified("a = 1\n", "a = 2\n", path="one.py") + unified(
            "b = 1\n", "b = 2\n", path="two.py"
        )
        parsed = parse_unified_diff(diff)
        assert [fd.path for fd in parsed] == ["one.py", "two.py"]

    def test_reverse_apply_rejects_mismatched_diff(self):
        (fd,) = parse_unified_diff(unified("a = 1\n", "a = 2\n"))
        with pytest.raises(ReviewError):
            reverse_apply("something else entirely\n", fd.hunks)

    @settings(max_examples=60, deadline=None)
    @given(
        old_lines=st.lists(
            st.sampled_from(["a = 1\n", "b = 2\n", "# c\n", "\n", "d = 'x'\n"]),
            max_size=12,
        ),
        new_lines=st.lists(
            st.sampled_from(["a = 1\n", "e = 5\n", "# f\n", "\n", "g = 'y'\n"]),
            max_size=12,
        ),
    )
    def test_reverse_apply_inverts_any_difflib_diff(self, old_lines, new_lines):
        """reverse_apply(new, parse(diff(old, new))) == old, always."""
        old, new = "".join(old_lines), "".join(new_lines)
        parsed = parse_unified_diff(unified(old, new))
        if not parsed:  # identical sides produce no diff
            assert old == new
            return
        assert reverse_apply(new, parsed[0].hunks) == old


# ----------------------------------------------------------- classification


class TestClassification:
    def test_introduced_vs_preexisting_under_line_shift(self, tmp_path):
        old = PREAMBLE + "\n" + VULN_YAML
        new = PREAMBLE + "\n" + VULN_SHELL + "\n# pad\n# pad\n" + VULN_YAML
        report = review_of(tmp_path, old, new)
        assert [f.finding.rule_id for f in report.introduced] == ["PIT-A03-08"]
        assert len(report.pre_existing) == 1
        assert report.pre_existing[0].finding.rule_id == "PIT-A08-06"
        assert not report.fixed
        assert not report.clean

    def test_same_rule_different_text_is_introduced(self, tmp_path):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_YAML_OTHER
        report = review_of(tmp_path, old, new)
        introduced = report.introduced
        assert len(introduced) == 1
        assert introduced[0].finding.rule_id == "PIT-A08-06"
        assert "other" in introduced[0].finding.snippet

    def test_fixed_findings_detected(self, tmp_path):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + "cfg = yaml.safe_load(data)\n"
        report = review_of(tmp_path, old, new)
        assert not report.introduced
        assert len(report.fixed) == 1
        assert report.fixed[0].status == STATUS_FIXED
        assert report.clean

    def test_duplicate_occurrence_counts(self, tmp_path):
        """N+1 copies of the same text against N baseline copies leave
        exactly one introduced finding."""
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_YAML
        report = review_of(tmp_path, old, new)
        assert len(report.introduced) == 1
        assert len(report.pre_existing) == 1

    def test_hunk_attribution(self, tmp_path):
        old = PREAMBLE + "\n" + VULN_YAML
        new = PREAMBLE + "\n" + VULN_SHELL + VULN_YAML
        report = review_of(tmp_path, old, new)
        (item,) = report.introduced
        assert item.hunk is not None
        start, end = item.hunk
        assert start <= item.line <= end

    def test_untouched_python_files_are_not_scanned(self, tmp_path):
        (tmp_path / "untouched.py").write_text(PREAMBLE + VULN_YAML)
        report = review_of(tmp_path, "a = 1\n", "a = 2\n")
        assert [f.path for f in report.files] == ["app.py"]
        assert not report.findings

    def test_non_python_files_skipped(self, tmp_path):
        (tmp_path / "notes.txt").write_text("yaml.load(x)\n")
        diff = unified("a\n", "yaml.load(x)\n", path="notes.txt")
        report = review(tmp_path, diff_text=diff, use_cache=False, engine=ENGINE)
        assert not report.files and not report.findings

    @settings(max_examples=40, deadline=None)
    @given(
        pad=st.lists(
            st.sampled_from(["# comment\n", "\n", "x = 1\n", "name = 'n'\n"]),
            max_size=10,
        )
    )
    def test_property_line_shift_never_introduces(self, tmp_path_factory, pad):
        """Inserting arbitrary benign lines above a baseline finding must
        classify it pre-existing — the finding_key identity is
        position-independent."""
        tmp_path = tmp_path_factory.mktemp("shift")
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + "".join(pad) + VULN_YAML
        report = review_of(tmp_path, old, new)
        assert not report.introduced
        if old == new:  # empty pad produces an empty diff: nothing to review
            assert not report.findings
            return
        assert len(report.pre_existing) == 1
        # the identity driving the classification is finding_key itself
        (base_finding,) = ENGINE.detect(old)
        (head_finding,) = ENGINE.detect(new)
        assert finding_key(old, base_finding) == finding_key(new, head_finding)

    @settings(max_examples=40, deadline=None)
    @given(
        arg=st.text(
            alphabet="abcdefghij_", min_size=1, max_size=8
        ).filter(lambda s: s != "data")
    )
    def test_property_different_text_same_rule_is_introduced(
        self, tmp_path_factory, arg
    ):
        """A same-rule finding with different matched text has a different
        finding_key and must be introduced."""
        tmp_path = tmp_path_factory.mktemp("newtext")
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + f"v = yaml.load({arg})\n"
        report = review_of(tmp_path, old, new)
        assert len(report.introduced) == 1
        assert report.introduced[0].finding.rule_id == "PIT-A08-06"
        assert len(report.pre_existing) == 1


# ------------------------------------------------------------- cache + git


class TestCacheAndGit:
    def test_warm_review_is_all_cache_hits(self, tmp_path):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_SHELL
        (tmp_path / "app.py").write_text(new)
        diff = unified(old, new)
        cold = review(tmp_path, diff_text=diff, engine=ENGINE)
        warm = review(tmp_path, diff_text=diff, engine=ENGINE)
        assert cold.cache_misses == 2  # baseline + head side
        assert warm.cache_misses == 0
        assert warm.cache_hits == 2
        assert warm.files[0].from_cache
        assert [f.status for f in warm.findings] == [
            f.status for f in cold.findings
        ]

    def test_metrics_and_trace_flow_through(self, tmp_path):
        metrics = ScanMetrics()
        trace = TraceRecorder()
        report = review_of(
            tmp_path,
            PREAMBLE + VULN_YAML,
            PREAMBLE + VULN_YAML + VULN_SHELL,
            metrics=metrics,
            trace=trace,
        )
        assert metrics.counters["review_calls"] == 1
        assert metrics.counters["review_introduced"] == 1
        assert metrics.counters["review_pre_existing"] == 1
        kinds = {event["kind"] for event in trace.events}
        assert "review" in kinds and "review-file" in kinds
        assert report.metrics is metrics

    def test_input_mode_validation(self, tmp_path):
        with pytest.raises(ReviewError):
            review(tmp_path)
        with pytest.raises(ReviewError):
            review(tmp_path, base="HEAD", diff_text="--- a\n+++ b\n")

    @pytest.fixture()
    def git_repo(self, tmp_path):
        def git(*args):
            subprocess.run(
                ["git", "-C", str(tmp_path), *args],
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "t")
        (tmp_path / "app.py").write_text(PREAMBLE + VULN_YAML)
        git("add", "-A")
        git("commit", "-qm", "base")
        (tmp_path / "app.py").write_text(PREAMBLE + VULN_SHELL + VULN_YAML)
        git("add", "-A")
        git("commit", "-qm", "vuln")
        return tmp_path

    def test_git_revision_range(self, git_repo):
        report = review(
            git_repo, base="HEAD~1", head="HEAD", use_cache=False, engine=ENGINE
        )
        assert [f.finding.rule_id for f in report.introduced] == ["PIT-A03-08"]
        assert len(report.pre_existing) == 1
        assert report.base == "HEAD~1" and report.head == "HEAD"

    def test_git_worktree_mode_sees_uncommitted_fix(self, git_repo):
        (git_repo / "app.py").write_text(PREAMBLE + VULN_YAML)
        report = review(git_repo, base="HEAD", use_cache=False, engine=ENGINE)
        assert not report.introduced
        assert len(report.fixed) == 1
        assert report.head == "worktree"

    def test_unknown_revision_raises(self, git_repo):
        with pytest.raises(ReviewError):
            review(git_repo, base="no-such-rev", use_cache=False, engine=ENGINE)


# ------------------------------------------------------- serialization/SARIF


class TestSerialization:
    def test_report_round_trip(self, tmp_path):
        report = review_of(
            tmp_path,
            PREAMBLE + VULN_YAML,
            PREAMBLE + VULN_SHELL + VULN_YAML + VULN_YAML_OTHER,
        )
        data = report.to_dict()
        json.dumps(data)  # must be JSON-clean
        restored = ReviewReport.from_dict(data)
        assert restored.to_dict() == data
        assert [f.status for f in restored.findings] == [
            f.status for f in report.findings
        ]
        assert restored.counts() == report.counts()

    def test_finding_round_trip_preserves_hunk(self, tmp_path):
        report = review_of(
            tmp_path, PREAMBLE + VULN_YAML, PREAMBLE + VULN_YAML + VULN_SHELL
        )
        (item,) = report.introduced
        restored = ReviewFinding.from_dict(item.to_dict())
        assert restored.hunk == item.hunk
        assert restored.key == item.key
        assert restored.finding == item.finding

    def test_sarif_baseline_states(self, tmp_path):
        report = review_of(
            tmp_path,
            PREAMBLE + VULN_YAML + VULN_YAML_OTHER,
            PREAMBLE + VULN_YAML + VULN_SHELL,
        )
        sarif = review_to_sarif(report, include_preexisting=True)
        states = {
            (r["ruleId"], r["baselineState"])
            for r in sarif["runs"][0]["results"]
        }
        assert ("PIT-A03-08", "new") in states
        assert ("PIT-A08-06", "unchanged") in states
        assert ("PIT-A08-06", "absent") in states

    def test_sarif_default_emits_only_introduced(self, tmp_path):
        report = review_of(
            tmp_path, PREAMBLE + VULN_YAML, PREAMBLE + VULN_YAML + VULN_SHELL
        )
        sarif = review_to_sarif(report)
        results = sarif["runs"][0]["results"]
        assert [r["baselineState"] for r in results] == ["new"]
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == report.introduced[0].line
        invocation = sarif["runs"][0]["invocations"][0]
        assert invocation["properties"]["review"]["counts"][STATUS_PRE_EXISTING] == 1


# ---------------------------------------------------------------- patching


class TestPatchIntroduced:
    def test_patches_only_introduced(self, tmp_path):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_YAML_OTHER
        report = review_of(tmp_path, old, new)
        results = patch_introduced(report, ENGINE)
        patched = results["app.py"].patched
        # the introduced finding is patched ...
        assert "yaml.safe_load(other)" in patched
        # ... the pre-existing one is left exactly as it was
        assert "yaml.load(data)" in patched

    def test_deserialized_report_cannot_patch(self, tmp_path):
        report = review_of(
            tmp_path, PREAMBLE + VULN_YAML, PREAMBLE + VULN_YAML + VULN_YAML_OTHER
        )
        restored = ReviewReport.from_dict(report.to_dict())
        with pytest.raises(ReviewError):
            patch_introduced(restored, ENGINE)


# ---------------------------------------------------------------- CLI layer


class TestReviewCLI:
    def run_cli(self, args, capsys):
        from repro.cli import main

        code = main(args)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_review_via_diff_file(self, tmp_path, capsys):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_SHELL
        (tmp_path / "app.py").write_text(new)
        diff_file = tmp_path / "change.diff"
        diff_file.write_text(unified(old, new))
        code, out, _ = self.run_cli(
            [
                "review",
                "--diff",
                str(diff_file),
                "--root",
                str(tmp_path),
                "--no-cache",
            ],
            capsys,
        )
        assert code == 1
        assert "introduced: 1" in out
        assert "PIT-A03-08" in out
        assert "PIT-A08-06" not in out  # pre-existing suppressed

    def test_review_clean_change_exits_zero(self, tmp_path, capsys):
        old = "a = 1\n"
        new = "a = 2\n"
        (tmp_path / "app.py").write_text(new)
        diff_file = tmp_path / "change.diff"
        diff_file.write_text(unified(old, new))
        code, out, _ = self.run_cli(
            ["review", "--diff", str(diff_file), "--root", str(tmp_path)],
            capsys,
        )
        assert code == 0
        assert "introduced: 0" in out

    def test_review_json_format(self, tmp_path, capsys):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_SHELL
        (tmp_path / "app.py").write_text(new)
        diff_file = tmp_path / "c.diff"
        diff_file.write_text(unified(old, new))
        code, out, _ = self.run_cli(
            [
                "review",
                "--diff",
                str(diff_file),
                "--root",
                str(tmp_path),
                "--format",
                "json",
                "--no-cache",
            ],
            capsys,
        )
        payload = json.loads(out)
        assert payload["counts"][STATUS_INTRODUCED] == 1
        statuses = {item["status"] for item in payload["findings"]}
        assert STATUS_PRE_EXISTING not in statuses

    def test_review_sarif_format(self, tmp_path, capsys):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_SHELL
        (tmp_path / "app.py").write_text(new)
        diff_file = tmp_path / "c.diff"
        diff_file.write_text(unified(old, new))
        code, out, _ = self.run_cli(
            [
                "review",
                "--diff",
                str(diff_file),
                "--root",
                str(tmp_path),
                "--format",
                "sarif",
                "--no-cache",
            ],
            capsys,
        )
        sarif = json.loads(out)
        assert sarif["version"] == "2.1.0"
        assert [r["baselineState"] for r in sarif["runs"][0]["results"]] == ["new"]

    def test_review_patch_in_place(self, tmp_path, capsys):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_YAML_OTHER
        (tmp_path / "app.py").write_text(new)
        diff_file = tmp_path / "c.diff"
        diff_file.write_text(unified(old, new))
        code, out, err = self.run_cli(
            [
                "review",
                "--diff",
                str(diff_file),
                "--root",
                str(tmp_path),
                "--patch",
                "--in-place",
                "--no-cache",
            ],
            capsys,
        )
        text = (tmp_path / "app.py").read_text()
        assert "yaml.safe_load(other)" in text
        assert "yaml.load(data)" in text  # pre-existing untouched
        assert code == 1

    def test_review_requires_an_input_mode(self, capsys):
        with pytest.raises(SystemExit):
            self.run_cli(["review"], capsys)

    def test_review_rejects_both_modes(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            self.run_cli(
                ["review", "HEAD", "--diff", "-", "--root", str(tmp_path)],
                capsys,
            )


class TestLegacyShim:
    def test_legacy_scan_prints_deprecation(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.py"
        path.write_text(PREAMBLE + VULN_YAML)
        code = main([str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "deprecated" in captured.err
        assert "patchitpy scan" in captured.err

    def test_legacy_patch_maps_to_patch_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.py"
        path.write_text(PREAMBLE + VULN_YAML)
        code = main([str(path), "--patch"])
        captured = capsys.readouterr()
        assert "patchitpy patch" in captured.err
        assert "yaml.safe_load" in captured.out

    def test_subcommand_invocations_print_no_notice(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.py"
        path.write_text("x = 1\n")
        assert main(["scan", str(path)]) == 0
        assert "deprecated" not in capsys.readouterr().err


# --------------------------------------------------------------- the server


class TestServerReview:
    @pytest.fixture(scope="class")
    def running_server(self):
        server = PatchitPyServer(config=ServerConfig(port=0))
        with BackgroundServer(server) as handle:
            with ServerClient(port=handle.port) as client:
                yield server, client

    def make_change(self, tmp_path):
        old = PREAMBLE + VULN_YAML
        new = PREAMBLE + VULN_YAML + VULN_SHELL
        (tmp_path / "app.py").write_text(new)
        return unified(old, new)

    def test_review_round_trip(self, running_server, tmp_path):
        _, client = running_server
        diff = self.make_change(tmp_path)
        payload = client.review(str(tmp_path), diff=diff)
        assert payload["counts"][STATUS_INTRODUCED] == 1
        assert payload["clean"] is False
        statuses = {item["status"] for item in payload["findings"]}
        assert statuses == {STATUS_INTRODUCED}
        restored = ReviewReport.from_dict(
            {**payload, "findings": payload["findings"]}
        )
        assert len(restored.findings) == 1

    def test_review_include_preexisting_and_sarif(self, running_server, tmp_path):
        _, client = running_server
        diff = self.make_change(tmp_path)
        payload = client.review(
            str(tmp_path), diff=diff, include_preexisting=True, sarif=True
        )
        statuses = {item["status"] for item in payload["findings"]}
        assert STATUS_PRE_EXISTING in statuses
        states = {
            r["baselineState"] for r in payload["sarif"]["runs"][0]["results"]
        }
        assert states == {"new", "unchanged"}

    def test_review_warm_cache_round_trip(self, running_server, tmp_path):
        _, client = running_server
        diff = self.make_change(tmp_path)
        cold = client.review(str(tmp_path), diff=diff)
        warm = client.review(str(tmp_path), diff=diff)
        assert cold["cache_misses"] == 2
        assert warm["cache_misses"] == 0 and warm["cache_hits"] == 2

    def test_review_trace_and_metrics_flow(self, running_server, tmp_path):
        server, client = running_server
        before = server.metrics.counters.get("review_calls", 0)
        diff = self.make_change(tmp_path)
        payload = client.review(str(tmp_path), diff=diff, trace=True)
        assert any(e["kind"] == "review" for e in payload["trace_events"])
        assert server.metrics.counters.get("review_calls", 0) == before + 1

    def test_review_validation_errors(self, running_server, tmp_path):
        _, client = running_server
        with pytest.raises(ServerError) as excinfo:
            client.review(str(tmp_path))
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.review(str(tmp_path / "missing"), diff="x")
        assert excinfo.value.status == 400

    def test_review_bad_revision_is_400(self, running_server, tmp_path):
        _, client = running_server
        (tmp_path / "app.py").write_text("x = 1\n")
        with pytest.raises(ServerError) as excinfo:
            client.review(str(tmp_path), base="no-such-rev")
        assert excinfo.value.status == 400
