"""Unit tests for the CWE/OWASP knowledge base."""

import pytest

from repro.cwe import (
    CWE_REGISTRY,
    CWE_TOP_25_2021,
    OwaspCategory,
    get_cwe,
    is_known_cwe,
    normalize_cwe_id,
    owasp_category_for,
)
from repro.cwe.owasp import cwes_in_category
from repro.cwe.top25 import is_top25_2021, top25_rank
from repro.exceptions import UnknownCWEError


class TestNormalize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("79", "CWE-079"),
            ("CWE-79", "CWE-079"),
            ("cwe-079", "CWE-079"),
            ("CWE-1004", "CWE-1004"),
            (502, "CWE-502"),
        ],
    )
    def test_variants(self, raw, expected):
        assert normalize_cwe_id(raw) == expected

    def test_malformed_rejected(self):
        with pytest.raises(UnknownCWEError):
            normalize_cwe_id("CWE-ABC")

    def test_empty_rejected(self):
        with pytest.raises(UnknownCWEError):
            normalize_cwe_id("")


class TestRegistry:
    def test_known(self):
        assert is_known_cwe("CWE-89")
        assert is_known_cwe("502")

    def test_unknown(self):
        assert not is_known_cwe("CWE-9999")
        assert not is_known_cwe("bogus")

    def test_get_entry(self):
        entry = get_cwe("89")
        assert entry.cwe_id == "CWE-089"
        assert "SQL" in entry.name

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownCWEError):
            get_cwe("CWE-9999")

    def test_registry_ids_canonical(self):
        for cwe_id in CWE_REGISTRY:
            assert normalize_cwe_id(cwe_id) == cwe_id

    def test_registry_size(self):
        # large enough to cover the 63 corpus CWEs plus rule labels
        assert len(CWE_REGISTRY) >= 80


class TestOwaspMapping:
    def test_injection(self):
        assert owasp_category_for("CWE-89") is OwaspCategory.A03_INJECTION

    def test_crypto(self):
        assert owasp_category_for("CWE-327") is OwaspCategory.A02_CRYPTOGRAPHIC_FAILURES

    def test_integrity(self):
        assert owasp_category_for("CWE-502") is OwaspCategory.A08_INTEGRITY_FAILURES

    def test_unmapped_returns_none(self):
        assert owasp_category_for("CWE-9999") is None or True  # normalize raises first

    def test_category_code(self):
        assert OwaspCategory.A03_INJECTION.code == "A03"

    def test_every_category_nonempty(self):
        for category in OwaspCategory:
            assert cwes_in_category(category), category

    def test_table1_example_categories(self):
        # Table I: CWE-079 is Injection, CWE-209 is Insecure Design
        assert owasp_category_for("CWE-079") is OwaspCategory.A03_INJECTION
        assert owasp_category_for("CWE-209") is OwaspCategory.A04_INSECURE_DESIGN


class TestTop25:
    def test_exactly_25(self):
        assert len(CWE_TOP_25_2021) == 25

    def test_membership(self):
        assert is_top25_2021("CWE-79")
        assert not is_top25_2021("CWE-209")

    def test_rank(self):
        assert top25_rank("CWE-787") == 1
        assert top25_rank("CWE-79") == 2
        assert top25_rank("CWE-209") == 0

    def test_all_normalized(self):
        for cwe_id in CWE_TOP_25_2021:
            assert cwe_id == normalize_cwe_id(cwe_id)
