"""Unit + property tests for the text substrate (tokenizer, LCS, diff)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textutils import (
    DiffFragment,
    TokenKind,
    collapse_blank_lines,
    detokenize,
    extract_additions,
    lcs_length,
    lcs_tokens,
    longest_common_substring,
    normalize_snippet,
    opcode_summary,
    strip_comments,
    tokenize,
)
from repro.textutils.lcs import lcs_table, similarity_ratio
from repro.textutils.normalize import indent_of, split_logical_lines, strip_markdown_fences
from repro.textutils.tokenizer import significant_tokens, token_texts


class TestTokenizer:
    def test_simple_statement(self):
        kinds = [t.kind for t in tokenize("x = 1")]
        assert kinds == [TokenKind.NAME, TokenKind.OP, TokenKind.NUMBER]

    def test_keyword_classified(self):
        tokens = tokenize("def f(): return None")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "def"

    def test_fstring_token(self):
        tokens = tokenize('x = f"hello {name}"')
        assert tokens[-1].kind is TokenKind.FSTRING

    def test_string_with_embedded_quote(self):
        tokens = tokenize('q = "it\'s fine"')
        assert tokens[-1].kind is TokenKind.STRING
        assert tokens[-1].text == '"it\'s fine"'

    def test_comment_token(self):
        tokens = tokenize("x = 1  # note")
        assert tokens[-1].kind is TokenKind.COMMENT

    def test_never_raises_on_malformed(self):
        for bad in ("def f(:", "```python", "x = (((", "…", "'unterminated"):
            assert isinstance(tokenize(bad), list)

    def test_offsets_cover_text(self):
        source = "value = compute(1, 2)"
        for token in tokenize(source):
            assert source[token.start : token.end] == token.text

    def test_walrus_and_arrow_ops(self):
        texts = [t.text for t in tokenize("def f(x) -> int: return (y := x)")]
        assert "->" in texts and ":=" in texts

    def test_triple_quoted_string(self):
        tokens = tokenize('"""docstring\nwith lines"""')
        assert tokens[0].kind is TokenKind.STRING

    def test_significant_drops_comments(self):
        tokens = significant_tokens("x = 1  # comment")
        assert all(t.kind is not TokenKind.COMMENT for t in tokens)

    def test_token_texts(self):
        assert token_texts(tokenize("a + b")) == ("a", "+", "b")

    def test_keep_whitespace_mode(self):
        tokens = tokenize("if x:\n    y = 1\n", keep_whitespace=True)
        kinds = {t.kind for t in tokens}
        assert TokenKind.NEWLINE in kinds and TokenKind.INDENT in kinds


class TestDetokenize:
    def test_roundtrip_compact(self):
        source = "result = fn(a, b)"
        assert detokenize(tokenize(source, keep_whitespace=True)) == "result = fn(a, b)"

    def test_kwarg_spacing(self):
        source = "app.run(debug=True)"
        assert detokenize(tokenize(source, keep_whitespace=True)) == "app.run(debug=True)"

    def test_statement_assignment_spaced(self):
        out = detokenize(tokenize("x=1", keep_whitespace=True))
        assert out == "x = 1"

    def test_decorator_not_spaced(self):
        out = detokenize(tokenize("@app.route('/x')\ndef f():\n    pass\n", keep_whitespace=True))
        assert out.startswith("@app.route('/x')")

    @given(st.text(alphabet="abcdef (),=+:\n'\"0123456789_", max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_detokenize_total(self, text):
        # detokenize must never crash on any tokenization
        detokenize(tokenize(text, keep_whitespace=True))


class TestLCS:
    def test_classic(self):
        assert "".join(lcs_tokens("ABCBDAB", "BDCABA")) in ("BCBA", "BCAB", "BDAB")

    def test_length_matches_tokens(self):
        a, b = list("stonewall"), list("wallstone")
        assert len(lcs_tokens(a, b)) == lcs_length(a, b)

    def test_empty(self):
        assert lcs_tokens([], ["a"]) == ()
        assert lcs_length([], []) == 0

    def test_identical(self):
        seq = ["x", "y", "z"]
        assert lcs_tokens(seq, seq) == ("x", "y", "z")

    def test_table_final_cell(self):
        table = lcs_table("abc", "abc")
        assert table[-1][-1] == 3

    def test_lcs_is_subsequence(self):
        a = "the quick brown fox".split()
        b = "the slow brown dog fox".split()
        result = lcs_tokens(a, b)
        assert _is_subsequence(result, a) and _is_subsequence(result, b)

    @given(
        st.lists(st.sampled_from("abcde"), max_size=40),
        st.lists(st.sampled_from("abcde"), max_size=40),
    )
    @settings(max_examples=120, deadline=None)
    def test_hunt_szymanski_agrees_with_dp(self, a, b):
        from repro.textutils.lcs import _lcs_backtrack, _lcs_hunt_szymanski

        dp = _lcs_backtrack(a, b) if a and b else ()
        hs = _lcs_hunt_szymanski(a, b) if a and b else ()
        assert len(dp) == len(hs) == lcs_length(a, b)
        assert _is_subsequence(hs, a) and _is_subsequence(hs, b)

    def test_large_inputs_use_hs_path(self):
        a = (["x"] * 30 + ["y"] * 40) * 2
        b = (["y"] * 30 + ["x"] * 40) * 2
        result = lcs_tokens(a, b)
        assert len(result) == lcs_length(a, b)

    def test_longest_common_substring(self):
        assert "".join(longest_common_substring("xabcdz", "yabcdw")) == "abcd"

    def test_similarity_bounds(self):
        assert similarity_ratio("aaa", "aaa") == 1.0
        assert similarity_ratio("abc", "xyz") == 0.0


def _is_subsequence(sub, seq):
    it = iter(seq)
    return all(item in it for item in sub)


class TestDiffing:
    def test_insert_fragment(self):
        fragments = extract_additions(["a", "b", "c"], ["a", "x", "b", "c"])
        assert len(fragments) == 1
        assert fragments[0].kind == "insert"
        assert fragments[0].safe_tokens == ("x",)

    def test_replace_fragment(self):
        fragments = extract_additions(["a", "b", "c"], ["a", "z", "c"])
        assert fragments[0].kind == "replace"
        assert fragments[0].vulnerable_tokens == ("b",)
        assert fragments[0].safe_tokens == ("z",)

    def test_delete_ignored(self):
        assert extract_additions(["a", "b", "c"], ["a", "c"]) == []

    def test_anchors(self):
        fragments = extract_additions(["p", "q", "r", "s"], ["p", "q", "NEW", "r", "s"])
        assert fragments[0].anchor_before[-1] == "q"
        assert fragments[0].anchor_after[0] == "r"

    def test_added_text(self):
        fragment = DiffFragment("insert", (), ("x", "y"), (), ())
        assert fragment.added_text == "x y"

    def test_opcode_summary(self):
        summary = opcode_summary(["a", "b"], ["a", "c"])
        assert ("equal", 1, 1) in summary


class TestNormalize:
    def test_strip_comments(self):
        assert strip_comments("x = 1  # note\n") == "x = 1\n"

    def test_comment_hash_inside_string_kept(self):
        assert strip_comments("x = 'a#b'\n") == "x = 'a#b'\n"

    def test_strip_fences(self):
        out = strip_markdown_fences("```python\nx = 1\n```\n")
        assert "```" not in out

    def test_collapse_blank_lines(self):
        assert collapse_blank_lines("a\n\n\n\nb") == "a\n\nb"

    def test_normalize_pipeline(self):
        out = normalize_snippet("```python\nx = 1  # c\n\n\n\ny = 2\n```")
        assert out == "x = 1\n\ny = 2\n"

    def test_split_logical_lines(self):
        rows = split_logical_lines("a\n\n  b\n")
        assert rows == [(0, "a"), (3, "  b")]

    def test_indent_of(self):
        assert indent_of("    x") == "    "
        assert indent_of("x") == ""
