"""Tests for report rendering (core.report, evaluation.reporting)."""

from repro.core import PatchitPy
from repro.core.report import format_finding, render_report
from repro.evaluation.reporting import ascii_boxplot, render_table
from repro.types import AnalysisReport, Finding, Patch, Span, SuggestionComment


class TestFormatFinding:
    def test_line_and_cwe_name(self):
        source = "x = 1\npickle.loads(b)\n"
        finding = Finding("PIT-A08-01", "CWE-502", "msg", Span(6, 21))
        text = format_finding(finding, source)
        assert "line   2" in text
        assert "CWE-502" in text and "Deserialization" in text
        assert "A08" in text

    def test_unknown_cwe_tolerated(self):
        finding = Finding("X", "CWE-999", "msg", Span(0, 1))
        assert "Unknown" in format_finding(finding, "x")


class TestRenderReport:
    def test_clean_report(self):
        text = render_report(AnalysisReport(tool="patchitpy", source="x = 1\n"))
        assert "no vulnerable patterns" in text

    def test_findings_and_patches_listed(self):
        engine = PatchitPy()
        report = engine.analyze("pickle.loads(b)\n")
        text = render_report(report)
        assert "1 finding(s)" in text
        assert "patch(es) applied" in text

    def test_parse_failed_note(self):
        report = AnalysisReport(tool="t", source="x", parse_failed=True)
        assert "pattern mode" in render_report(report)

    def test_suggestions_rendered(self):
        report = AnalysisReport(
            tool="bandit",
            source="yaml.load(f)\n",
            findings=[Finding("B506", "CWE-502", "m", Span(0, 4))],
            suggestions=[SuggestionComment("B506", "CWE-502", 1, "# use safe_load")],
        )
        assert "use safe_load" in render_report(report)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [["x", 1.5], ["yyyy", 2]])
        lines = text.splitlines()
        assert len({len(l) for l in lines if l.startswith(("+", "|"))}) == 1

    def test_title(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.startswith("My Table")

    def test_float_formatting(self):
        assert "0.97" in render_table(["m"], [[0.9713]])


class TestAsciiBoxplot:
    def test_markers_present(self):
        line = ascii_boxplot("grp", q1=1.0, median=2.0, q3=3.0, lo=0.5, hi=4.0)
        assert "#" in line and "=" in line and line.startswith("         grp")

    def test_values_clamped(self):
        line = ascii_boxplot("grp", q1=1, median=2, q3=3, lo=-5, hi=100, scale=8)
        assert line.count("|") == 2
