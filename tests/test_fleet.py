"""Tests for the sharded scan fleet (``repro.server.fleet`` / ``router``).

Two layers, matching the module split:

- pure-logic tests (plus hypothesis properties) on :class:`HashRing`
  and the token-bucket quota machinery — no processes involved;
- end-to-end tests that run a real :class:`FleetRouter` supervising
  real daemon subprocesses via :class:`BackgroundFleet`, and drive it
  through the stdlib :class:`ServerClient` — including the two fleet
  acceptance drills: a worker killed mid-traffic with zero
  client-visible errors, and a cross-worker warm cache hit served from
  the shared tier.

The subprocess fleet is expensive to boot (each worker warms a full
engine), so the end-to-end tests share one module-scoped fleet and a
separate test covers the kill/restart drill on its own fleet.
"""

from __future__ import annotations

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BackgroundFleet, FleetConfig, FleetRouter, ServerClient, ServerError
from repro.core.cache import hash_source
from repro.server.fleet import build_fleet_parser, config_from_args
from repro.server.router import (
    DEFAULT_TENANT,
    HashRing,
    OVERFLOW_TENANT,
    TenantQuotas,
    TokenBucket,
    tenant_label,
)

VULN = "data = pickle.loads(blob)\n"


# --------------------------------------------------------------- hash ring


class TestHashRing:
    def test_routes_deterministically(self):
        ring = HashRing(["w0", "w1", "w2"])
        assert ring.route("some-key") == ring.route("some-key")
        assert len(ring) == 3
        assert "w1" in ring and "w9" not in ring

    def test_empty_ring_routes_nowhere(self):
        assert HashRing().route("anything") is None

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["w0"])
        assert not ring.add("w0")
        assert ring.add("w1")
        assert ring.remove("w1")
        assert not ring.remove("w1")
        assert ring.members == ("w0",)

    def test_exclude_walks_to_the_next_owner(self):
        ring = HashRing(["w0", "w1"])
        key = "k"
        owner = ring.route(key)
        other = ring.route(key, exclude={owner})
        assert other is not None and other != owner
        assert ring.route(key, exclude={"w0", "w1"}) is None

    def test_exclude_matches_permanent_rehash(self):
        # Failover target == where the key lands once the dead member is
        # actually removed, so a retried request and the steady state agree.
        ring = HashRing(["w0", "w1", "w2"])
        for i in range(50):
            key = f"key-{i}"
            owner = ring.route(key)
            failover = ring.route(key, exclude={owner})
            ring2 = HashRing(["w0", "w1", "w2"])
            ring2.remove(owner)
            assert failover == ring2.route(key)

    def test_distribution_is_not_degenerate(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts = {m: 0 for m in ring.members}
        for i in range(2000):
            counts[ring.route(f"key-{i}")] += 1
        # 64 virtual nodes won't be perfectly uniform, but every worker
        # must own a real share (no starved shard).
        assert min(counts.values()) > 2000 * 0.10

    @settings(max_examples=50, deadline=None)
    @given(
        members=st.sets(
            st.text(
                alphabet="abcdefghij0123456789", min_size=1, max_size=8
            ),
            min_size=2,
            max_size=6,
        ),
        keys=st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_removal_moves_only_the_removed_members_keys(
        self, members, keys, seed
    ):
        members = sorted(members)
        ring = HashRing(members)
        removed = members[seed % len(members)]
        before = {key: ring.route(key) for key in keys}
        ring.remove(removed)
        for key, owner in before.items():
            after = ring.route(key)
            if owner == removed:
                assert after != removed
            else:
                assert after == owner

    @settings(max_examples=50, deadline=None)
    @given(
        members=st.sets(
            st.text(
                alphabet="abcdefghij0123456789", min_size=1, max_size=8
            ),
            min_size=1,
            max_size=6,
        ),
        newcomer=st.text(alphabet="klmnopqrs", min_size=1, max_size=8),
        keys=st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=40),
    )
    def test_addition_moves_keys_only_onto_the_newcomer(
        self, members, newcomer, keys
    ):
        ring = HashRing(sorted(members))
        before = {key: ring.route(key) for key in keys}
        ring.add(newcomer)
        for key, owner in before.items():
            after = ring.route(key)
            assert after == owner or after == newcomer


# ------------------------------------------------------- quotas and tenants


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.take() and bucket.take()
        assert not bucket.take()
        now[0] = 1.0
        assert bucket.take()
        assert not bucket.take()

    def test_retry_after_reflects_the_deficit(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=lambda: now[0])
        for _ in range(4):
            assert bucket.take()
        assert bucket.retry_after_s() == pytest.approx(0.5)
        assert bucket.retry_after_s(4.0) == pytest.approx(2.0)
        # demands beyond burst are clamped to burst, not "never"
        assert bucket.retry_after_s(100.0) == pytest.approx(2.0)

    def test_zero_rate_advertises_a_minute(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=lambda: 0.0)
        assert bucket.take()
        assert bucket.retry_after_s() == 60.0


class TestTenantQuotas:
    def test_tenants_have_independent_buckets(self):
        now = [0.0]
        quotas = TenantQuotas(rate=1.0, burst=1.0, clock=lambda: now[0])
        ok_a, _, _ = quotas.admit("alice")
        ok_a2, retry, _ = quotas.admit("alice")
        ok_b, _, _ = quotas.admit("bob")
        assert ok_a and ok_b and not ok_a2
        assert retry >= 1.0
        assert quotas.snapshot_rejections() == {"alice": 1}

    def test_overflow_tenants_share_one_label(self):
        now = [0.0]
        quotas = TenantQuotas(
            rate=1.0, burst=1.0, max_tenants=2, clock=lambda: now[0]
        )
        assert quotas.admit("t0")[2] == "t0"
        assert quotas.admit("t1")[2] == "t1"
        # third distinct tenant lands in (and is throttled as) "other"
        assert quotas.admit("t2")[2] == OVERFLOW_TENANT
        assert quotas.admit("t3")[2] == OVERFLOW_TENANT
        admitted, _, label = quotas.admit("t4")
        assert label == OVERFLOW_TENANT and not admitted

    def test_tenant_label_validation(self):
        assert tenant_label("team-a.prod") == "team-a.prod"
        assert tenant_label(None) == DEFAULT_TENANT
        assert tenant_label("") == DEFAULT_TENANT
        assert tenant_label("bad tenant\n") == DEFAULT_TENANT
        assert tenant_label("x" * 65) == DEFAULT_TENANT


# ------------------------------------------------------------- CLI parser


class TestFleetParser:
    def test_defaults_map_onto_config(self):
        args = build_fleet_parser().parse_args([])
        cfg = config_from_args(args)
        assert cfg.workers == 2
        assert cfg.port == 8750
        assert cfg.tenant_rate == 50.0
        assert cfg.shared_cache_dir is None

    def test_floors_are_enforced(self):
        args = build_fleet_parser().parse_args(
            ["--workers", "0", "--jobs", "-3", "--tenant-burst", "0"]
        )
        cfg = config_from_args(args)
        assert cfg.workers == 1
        assert cfg.jobs == 1
        assert cfg.tenant_burst == 1.0

    def test_cli_lists_fleet_subcommand(self):
        from repro.cli import SUBCOMMANDS, build_parser

        assert "fleet" in SUBCOMMANDS
        helptext = build_parser().format_help()
        assert "fleet" in helptext


# ----------------------------------------------------------- live fleet


@pytest.fixture(scope="module")
def running_fleet():
    """One shared 2-worker fleet for the read-mostly round-trip tests."""
    config = FleetConfig(
        port=0,
        workers=2,
        tenant_rate=10_000.0,
        tenant_burst=10_000.0,
        health_interval_s=0.2,
        restart_backoff_s=0.2,
    )
    router = FleetRouter(config)
    with BackgroundFleet(router) as fleet:
        with ServerClient(port=fleet.port) as client:
            yield router, client


class TestFleetRoundTrips:
    def test_healthz_reports_the_worker_table(self, running_fleet):
        router, client = running_fleet
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["role"] == "fleet"
        assert doc["workers"] == 2 and doc["workers_up"] == 2
        states = {row["id"]: row["state"] for row in doc["worker_table"]}
        assert states == {"w0": "up", "w1": "up"}

    def test_analyze_round_trips_through_a_worker(self, running_fleet):
        router, client = running_fleet
        result = client.analyze(VULN)
        assert result["vulnerable"] is True
        assert result["findings"]

    def test_analyze_repeat_is_a_cache_hit(self, running_fleet):
        router, client = running_fleet
        source = "repeat_hit = pickle.loads(raw)\n"
        cold = client.analyze(source)
        warm = client.analyze(source)
        assert cold.get("from_cache", False) is False
        assert warm.get("from_cache") is True
        assert warm["findings"] == cold["findings"]

    def test_batch_fans_out_and_keeps_ids(self, running_fleet):
        router, client = running_fleet
        sources = [f"v{i} = eval(data{i})" for i in range(6)] + ["x = 1\n"]
        result = client.batch(sources)
        assert result["count"] == 7 and result["failed"] == 0
        by_id = {entry["id"]: entry for entry in result["results"]}
        assert sorted(by_id) == list(range(7))
        assert by_id[0]["vulnerable"] is True
        assert by_id[6]["vulnerable"] is False
        # per-digest routing spread the batch over both workers
        proxied = [row["proxied"] for row in router.worker_table()]
        assert all(count > 0 for count in proxied)

    def test_batch_stream_yields_items_then_summary(self, running_fleet):
        router, client = running_fleet
        lines = list(client.batch_stream(["a = eval(x)", "b = 2\n"]))
        summary = lines[-1]
        assert summary["done"] is True
        assert summary["count"] == 2 and summary["failed"] == 0
        ids = {line["id"] for line in lines[:-1]}
        assert ids == {0, 1}

    def test_worker_errors_pass_through_verbatim(self, running_fleet):
        router, client = running_fleet
        with pytest.raises(ServerError) as excinfo:
            client.analyze(source=None)  # type: ignore[arg-type]
        assert excinfo.value.status == 400

    def test_unknown_route_is_404_and_wrong_method_405(self, running_fleet):
        router, client = running_fleet
        status, _, _ = client.forward("GET", "/nope")
        assert status == 404
        status, _, _ = client.forward("GET", "/v1/analyze")
        assert status == 405

    def test_metrics_merges_workers_and_adds_fleet_families(self, running_fleet):
        router, client = running_fleet
        client.analyze("m = pickle.loads(metrics_probe)\n")
        text = client.metrics_text()
        # worker-side families survived the merge
        assert "patchitpy_server_requests" in text
        assert "patchitpy_detect_time_s" in text
        # router-side families and labeled series are appended
        assert "patchitpy_fleet_requests" in text
        assert 'patchitpy_fleet_worker_up{worker="w0"} 1' in text
        assert 'patchitpy_fleet_worker_up{worker="w1"} 1' in text
        assert "patchitpy_fleet_worker_proxied_total" in text
        assert "patchitpy_fleet_workers_up 2" in text

    def test_statusz_renders_the_fleet_page(self, running_fleet):
        router, client = running_fleet
        html = client.statusz()
        assert "patchitpy fleet" in html
        assert "w0" in html and "w1" in html
        assert "/metrics" in html

    def test_fleet_worker_header_names_the_shard(self, running_fleet):
        router, client = running_fleet
        source = "hdr = pickle.loads(blob)\n"
        expected = router.ring.route(hash_source(source))
        conn_status, _, _ = client.forward(
            "POST",
            "/v1/analyze",
            body=json.dumps({"source": source}).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert conn_status == 200
        # route() is deterministic, so the ring names the serving shard
        assert expected in {"w0", "w1"}


class TestFleetQuotas:
    def test_quota_exhaustion_answers_429_with_tenant_metrics(self):
        config = FleetConfig(
            port=0,
            workers=1,
            tenant_rate=0.0,  # no refill: the burst is the whole budget
            tenant_burst=2.0,
            health_interval_s=0.2,
        )
        router = FleetRouter(config)
        with BackgroundFleet(router) as fleet:
            with ServerClient(port=fleet.port, tenant="team-a") as client:
                assert client.analyze("x = 1\n")["vulnerable"] is False
                assert "vulnerable" in client.analyze("y = 2\n")
                with pytest.raises(ServerError) as excinfo:
                    client.analyze("z = 3\n")
                assert excinfo.value.status == 429
                assert "team-a" in str(excinfo.value.payload.get("error", ""))
                text = client.metrics_text()
                assert (
                    'patchitpy_fleet_quota_rejections_total{tenant="team-a"} 1'
                    in text
                )
                # anonymous traffic has its own untouched bucket
                with ServerClient(port=fleet.port) as anon:
                    assert "vulnerable" in anon.analyze("w = 4\n")

    def test_batch_debits_one_token_per_item(self):
        config = FleetConfig(
            port=0,
            workers=1,
            tenant_rate=0.0,
            tenant_burst=3.0,
            health_interval_s=0.2,
        )
        with BackgroundFleet(FleetRouter(config)) as fleet:
            with ServerClient(port=fleet.port, tenant="bulk") as client:
                with pytest.raises(ServerError) as excinfo:
                    client.batch(["a = 1\n"] * 4)
                assert excinfo.value.status == 429
                result = client.batch(["b = 2\n"] * 3)
                assert result["count"] == 3


class TestFleetFailover:
    def test_worker_kill_rehashes_with_zero_client_errors(self):
        """The headline drill: kill a worker mid-traffic; every client
        request still succeeds, the survivor serves the dead worker's
        snippets from the shared cache tier, and the supervisor brings
        the worker back."""
        config = FleetConfig(
            port=0,
            workers=2,
            tenant_rate=10_000.0,
            tenant_burst=10_000.0,
            health_interval_s=0.2,
            restart_backoff_s=0.2,
        )
        router = FleetRouter(config)
        with BackgroundFleet(router) as fleet:
            with ServerClient(port=fleet.port) as client:
                probe = "victim_owned = pickle.loads(wire_bytes)\n"
                owner = router.ring.route(hash_source(probe))
                cold = client.analyze(probe)
                assert cold["findings"]
                assert cold.get("from_cache", False) is False

                victim = router.workers[owner]
                assert victim.process is not None
                victim.process.kill()

                # Immediately re-request: the router must fail over to the
                # survivor without surfacing any error to the client...
                failover = client.analyze(probe)
                assert failover["findings"] == cold["findings"]
                # ...and the survivor serves bytes it never scanned itself
                # as a warm hit from the shared tier.
                assert failover.get("from_cache") is True

                # a batch spanning both shards also fully succeeds
                batch = client.batch(
                    [probe] + [f"k{i} = eval(v{i})" for i in range(4)]
                )
                assert batch["failed"] == 0

                # the supervisor restarts the victim with backoff
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if router.workers[owner].state == "up":
                        break
                    time.sleep(0.2)
                assert router.workers[owner].state == "up"
                assert router.workers[owner].restarts >= 1
                assert client.healthz()["workers_up"] == 2

                text = client.metrics_text()
                assert "patchitpy_fleet_proxy_failures" in text
                assert "patchitpy_fleet_worker_restarts_total" in text

    def test_all_workers_dead_answers_503_with_retry_after(self):
        config = FleetConfig(
            port=0,
            workers=1,
            tenant_rate=10_000.0,
            tenant_burst=10_000.0,
            health_interval_s=0.2,
            restart_backoff_s=5.0,  # keep it down for the duration
        )
        router = FleetRouter(config)
        with BackgroundFleet(router) as fleet:
            with ServerClient(port=fleet.port) as client:
                worker = router.workers["w0"]
                assert worker.process is not None
                worker.process.kill()
                with pytest.raises(ServerError) as excinfo:
                    client.analyze("x = 1\n")
                assert excinfo.value.status == 503
