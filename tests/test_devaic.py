"""Tests for the DevAIC predecessor reconstruction."""

from repro.baselines import DevAIC, devaic_ruleset
from repro.core.rules import default_ruleset
from repro.metrics import from_verdicts


class TestRuleset:
    def test_same_size_as_default(self):
        assert len(devaic_ruleset()) == len(default_ruleset()) == 85

    def test_detection_only(self):
        assert all(not r.patchable for r in devaic_ruleset())

    def test_no_guards_or_prerequisites(self):
        for rule in devaic_ruleset():
            assert rule.guards == ()
            assert rule.prerequisites == ()

    def test_renamed_ids(self):
        assert all(r.rule_id.startswith("DEVAIC-") for r in devaic_ruleset())


class TestLineage:
    """PatchitPy inherits DevAIC's recall and improves precision (§II-A)."""

    def test_recall_inherited_precision_improved(self, flat_samples, engine):
        devaic = DevAIC()
        dev = from_verdicts(
            (s.is_vulnerable, devaic.is_vulnerable(s)) for s in flat_samples
        )
        pit = from_verdicts(
            (s.is_vulnerable, engine.is_vulnerable(s.source)) for s in flat_samples
        )
        # guards/prerequisites can only remove matches → recall >= PatchitPy's
        assert dev.recall >= pit.recall
        # ...but the raw patterns over-fire on safe code
        assert pit.precision > dev.precision

    def test_cannot_patch(self, flat_samples):
        tool = DevAIC()
        assert tool.patch(flat_samples[0]) is None
