"""Focused tests for the generator style transforms."""

import ast
import random

import pytest

from repro.corpus.scenarios import SCENARIOS
from repro.generators.style import (
    CLAUDE_STYLE,
    COPILOT_STYLE,
    DEEPSEEK_STYLE,
    _apply_incompleteness,
    _insert_comment,
    _insert_docstring,
)

CODE = "import os\n\ndef run(task):\n    if task:\n        return os.getpid()\n    return 0\n"


class TestDocstringInsertion:
    def test_module_docstring_added(self):
        out = _insert_docstring(CODE, "Generated.")
        tree = ast.parse(out)
        assert ast.get_docstring(tree) == "Generated."

    def test_original_code_preserved(self):
        out = _insert_docstring(CODE, "Generated.")
        assert CODE in out


class TestCommentInsertion:
    def test_comment_lands_after_colon_line(self):
        rng = random.Random(3)
        out = _insert_comment(CODE, "# main logic", rng)
        lines = out.splitlines()
        for index, line in enumerate(lines):
            if line.strip() == "# main logic":
                assert lines[index - 1].rstrip().endswith(":")
                break
        else:
            pytest.fail("comment not inserted")

    def test_result_parses(self):
        for trial in range(20):
            out = _insert_comment(CODE, "# note", random.Random(trial))
            ast.parse(out)

    def test_no_candidates_no_change(self):
        flat = "x = 1\ny = 2\n"
        assert _insert_comment(flat, "# c", random.Random(0)) == flat


class TestIncompletenessTransforms:
    @pytest.mark.parametrize("style", [COPILOT_STYLE, CLAUDE_STYLE, DEEPSEEK_STYLE])
    def test_always_breaks_parsing(self, style):
        for trial in range(20):
            rng = random.Random(f"{style.name}:{trial}")
            out = _apply_incompleteness(CODE, style, rng)
            with pytest.raises(SyntaxError):
                ast.parse(out)

    def test_original_body_survives_textually(self):
        rng = random.Random(5)
        out = _apply_incompleteness(CODE, COPILOT_STYLE, rng)
        assert "os.getpid()" in out

    def test_copilot_never_emits_chat(self):
        # inline completions carry no chat preamble
        for trial in range(40):
            rng = random.Random(f"c:{trial}")
            out = _apply_incompleteness(CODE, COPILOT_STYLE, rng)
            assert "Here" not in out and "Sure" not in out


class TestNamePools:
    def test_no_login_like_function_names(self):
        # fn pools must not collide with the auth-logging rule's name list
        forbidden = {"login", "authenticate", "verify_user", "check_credentials"}
        for style in (COPILOT_STYLE, CLAUDE_STYLE, DEEPSEEK_STYLE):
            assert not (set(style.fn_names) & forbidden)

    def test_no_credential_like_variable_names(self):
        for style in (COPILOT_STYLE, CLAUDE_STYLE, DEEPSEEK_STYLE):
            for name in style.var_names + style.arg_names:
                assert "password" not in name and "secret" not in name
