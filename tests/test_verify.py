"""Tests for the Verifier stage: verdict taxonomy and the re-patch loop."""

from pathlib import Path

import pytest

from repro.core.engine import PatchitPy
from repro.core.rules import PatchTemplate, RuleSet, rule
from repro.core.sarif import dumps_plain, to_sarif
from repro.core.verify import (
    VERDICT_IMPORT_COLLISION,
    VERDICT_REGRESSED,
    VERDICT_SYNTAX_BROKEN,
    VERDICT_VERIFIED,
    PatchVerdict,
    binding_collisions,
    finding_key,
    syntax_context,
)
from repro.observability import ScanMetrics, TraceRecorder
from repro.types import Finding, Span


def _rules(*rules_):
    return RuleSet(list(rules_))


GOOD_RULE = rule(
    "TST-GOOD-01",
    "CWE-502",
    "unsafe transmogrify",
    r"transmogrify\((\w+)\)",
    patch=PatchTemplate(replacement=r"safe_mogrify(\1)", description="use safe_mogrify"),
)

# Deliberately broken template: the "safe" replacement matches another rule.
TAINTING_RULE = rule(
    "TST-TAINT-01",
    "CWE-502",
    "unsafe frobnicate",
    r"frobnicate\((\w+)\)",
    patch=PatchTemplate(replacement=r"dangerously(\1)", description="broken rewrite"),
)
DANGER_RULE = rule(
    "TST-DANGER-01",
    "CWE-094",
    "dangerous call",
    r"dangerously\(",
)

# Deliberately broken template: replacement is identical, so the
# triggering finding survives patching verbatim.
NOOP_RULE = rule(
    "TST-NOOP-01",
    "CWE-094",
    "noop rewrite",
    r"noop_bad\(\)",
    patch=PatchTemplate(replacement="noop_bad()", description="does nothing"),
)

# Deliberately broken template: the replacement is not valid Python.
BREAKING_RULE = rule(
    "TST-BREAK-01",
    "CWE-094",
    "legacy parse",
    r"legacy_parse\((\w+)\)",
    patch=PatchTemplate(replacement=r"broken((", description="mangles syntax"),
)

COLLIDING_RULE = rule(
    "TST-COLLIDE-01",
    "CWE-330",
    "weak token",
    r"weak_token\(\)",
    patch=PatchTemplate(
        replacement="secrets.token_hex(16)",
        imports=("import secrets",),
        description="use secrets",
    ),
)


class TestFindingKey:
    def test_stable_under_offset_shift(self):
        a = Finding("R1", "CWE-094", "m", Span(0, 7), snippet="evil(x)")
        b = Finding("R1", "CWE-094", "m", Span(10, 17), snippet="evil(x)")
        assert finding_key("evil(x)\n\n\nevil(x)\n", a) == finding_key(
            "evil(x)\n\n\nevil(x)\n", b
        )

    def test_distinct_rules_distinct_keys(self):
        f = Finding("R1", "CWE-094", "m", Span(0, 7))
        g = Finding("R2", "CWE-094", "m", Span(0, 7))
        src = "evil(x)\n"
        assert finding_key(src, f) != finding_key(src, g)

    def test_distinct_text_distinct_keys(self):
        f = Finding("R1", "CWE-094", "m", Span(0, 7))
        assert finding_key("evil(x)\n", f) != finding_key("evil(y)\n", f)

    def test_span_clamped_to_source(self):
        f = Finding("R1", "CWE-094", "m", Span(0, 999))
        assert finding_key("short\n", f)  # no IndexError


class TestSyntaxContext:
    def test_full_module(self):
        assert syntax_context("x = 1\n") == "module"

    def test_function_body_snippet(self):
        assert syntax_context("return compute()\n") == "function-body"

    def test_async_body_snippet(self):
        assert syntax_context("return await fetch()\n") == "async-body"

    def test_indented_snippet(self):
        assert syntax_context("    return pickle.loads(x)\n") is not None

    def test_invalid_everywhere(self):
        assert syntax_context("def f(:\n") is None


class TestBindingCollisions:
    def test_assignment_collides(self):
        out = binding_collisions('secrets = "hunter2"\n', ["import secrets"])
        assert "secrets" in out and "assignment" in out["secrets"]

    def test_def_collides(self):
        out = binding_collisions("def json(x):\n    return x\n", ["import json"])
        assert "json" in out

    def test_alias_collides(self):
        out = binding_collisions("import numpy as hashlib\n", ["import hashlib"])
        assert "hashlib" in out

    def test_already_imported_is_skipped(self):
        # nothing new would be inserted, so nothing can collide
        out = binding_collisions("import json\njson = json\n", ["import json"])
        assert out == {}

    def test_clean_file_no_collision(self):
        assert binding_collisions("x = 1\n", ["import json"]) == {}


class TestVerdictTaxonomy:
    def test_verified(self):
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        result = engine.patch("y = transmogrify(data)\n")
        assert result.patched == "y = safe_mogrify(data)\n"
        assert [v.status for v in result.verdicts] == [VERDICT_VERIFIED]
        assert result.verified and not result.unverified

    def test_regressed_new_finding_introduced(self):
        engine = PatchitPy(rules=_rules(TAINTING_RULE, DANGER_RULE))
        result = engine.patch("y = frobnicate(data)\n")
        # the broken rewrite is detected and reverted, not shipped
        assert result.patched == "y = frobnicate(data)\n"
        assert result.applied == []
        assert [v.status for v in result.verdicts] == [VERDICT_REGRESSED]
        assert result.verdicts[0].reverted
        assert "new finding" in result.verdicts[0].detail

    def test_regressed_trigger_survives(self):
        engine = PatchitPy(rules=_rules(NOOP_RULE))
        result = engine.patch("noop_bad()\n")
        assert result.patched == "noop_bad()\n"
        # the identical-replacement patch re-applies on every fixpoint
        # pass, so one verdict per application — all regressed, all
        # reverted, none shipped
        assert result.verdicts and result.applied == []
        assert all(v.status == VERDICT_REGRESSED for v in result.verdicts)
        assert all(v.reverted for v in result.verdicts)
        assert "still present" in result.verdicts[0].detail

    def test_syntax_broken(self):
        engine = PatchitPy(rules=_rules(BREAKING_RULE))
        result = engine.patch("value = legacy_parse(raw)\n")
        assert result.patched == "value = legacy_parse(raw)\n"
        assert [v.status for v in result.verdicts] == [VERDICT_SYNTAX_BROKEN]
        assert result.verdicts[0].reverted

    def test_import_collision(self):
        engine = PatchitPy(rules=_rules(COLLIDING_RULE))
        source = 'secrets = "hunter2"\ntoken = weak_token()\n'
        result = engine.patch(source)
        assert result.patched == source
        assert [v.status for v in result.verdicts] == [VERDICT_IMPORT_COLLISION]
        assert "secrets" in result.verdicts[0].detail

    def test_incomplete_snippet_not_flagged_as_syntax_broken(self):
        # the paper's incomplete-snippet case: a bare function body is
        # valid in a wrapper context before AND after patching
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        result = engine.patch("    return transmogrify(blob)\n")
        assert "safe_mogrify" in result.patched
        assert [v.status for v in result.verdicts] == [VERDICT_VERIFIED]

    def test_never_compilable_original_cannot_regress_on_syntax(self):
        # original compiles in no context, so the patch can't be blamed
        # for a syntax state that was already broken
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        result = engine.patch("def f(:\n    transmogrify(x)\n")
        assert [v.status for v in result.verdicts] == [VERDICT_VERIFIED]


class TestRepatchLoop:
    def test_good_patch_survives_bad_patch_reverted(self):
        engine = PatchitPy(rules=_rules(GOOD_RULE, BREAKING_RULE))
        source = "a = transmogrify(x)\nb = legacy_parse(y)\n"
        result = engine.patch(source)
        # converges: the good patch ships, the breaking one is banned
        assert result.patched == "a = safe_mogrify(x)\nb = legacy_parse(y)\n"
        statuses = sorted(v.status for v in result.verdicts)
        assert statuses == [VERDICT_SYNTAX_BROKEN, VERDICT_VERIFIED]
        reverted = [v for v in result.verdicts if v.reverted]
        assert [v.rule_id for v in reverted] == ["TST-BREAK-01"]
        assert len(result.applied) == 1

    def test_verify_false_ships_unchecked(self):
        engine = PatchitPy(rules=_rules(BREAKING_RULE), verify=False)
        result = engine.patch("value = legacy_parse(raw)\n")
        assert "broken((" in result.patched
        assert result.verdicts == []

    def test_per_call_override(self):
        engine = PatchitPy(rules=_rules(BREAKING_RULE))
        result = engine.patch("value = legacy_parse(raw)\n", verify=False)
        assert "broken((" in result.patched

    def test_attempts_bounded(self):
        engine = PatchitPy(rules=_rules(NOOP_RULE), max_verify_attempts=1)
        result = engine.patch("noop_bad()\n")
        assert result.patched == "noop_bad()\n"
        assert all(v.reverted for v in result.verdicts)

    def test_invalid_max_verify_attempts_rejected(self):
        with pytest.raises(ValueError):
            PatchitPy(max_verify_attempts=0)


class TestVerdictSurfacing:
    def test_analyze_report_carries_verdicts(self):
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        report = engine.analyze("y = transmogrify(data)\n")
        assert [v.status for v in report.verdicts] == [VERDICT_VERIFIED]

    def test_provenance_carries_verdict(self):
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        report = engine.analyze("y = transmogrify(data)\n")
        prov = report.findings[0].provenance
        assert prov is not None and prov.patch is not None
        assert prov.patch.verdict == VERDICT_VERIFIED

    def test_explain_shows_verdict(self):
        from repro.observability import render_explain

        engine = PatchitPy(rules=_rules(BREAKING_RULE))
        report = engine.analyze("value = legacy_parse(raw)\n")
        text = render_explain(report.findings[0])
        assert "verdict: syntax-broken" in text

    def test_provenance_verdict_roundtrips(self):
        from repro.observability.provenance import PatchProvenance

        prov = PatchProvenance("d", "r", (), verdict="regressed", verdict_detail="why")
        clone = PatchProvenance.from_dict(prov.to_dict())
        assert clone.verdict == "regressed" and clone.verdict_detail == "why"
        # no verdict -> pre-1.5 serialized shape
        assert "verdict" not in PatchProvenance("d", "r", ()).to_dict()

    def test_sarif_embeds_verdicts(self):
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        report = engine.analyze("y = transmogrify(data)\n")
        log = to_sarif(report)
        verdicts = log["runs"][0]["invocations"][0]["properties"]["patchVerdicts"]
        assert verdicts[0]["status"] == VERDICT_VERIFIED

    def test_plain_json_embeds_verdicts(self):
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        report = engine.analyze("y = transmogrify(data)\n")
        assert '"patch_verdicts"' in dumps_plain(report)

    def test_plain_json_shape_unchanged_without_verdicts(self):
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        report = engine.analyze("y = transmogrify(data)\n", patch=False)
        assert '"patch_verdicts"' not in dumps_plain(report)

    def test_verdict_roundtrips(self):
        verdict = PatchVerdict(
            "R1", "CWE-094", (3, 9), VERDICT_REGRESSED, detail="d",
            trigger_key="abc", reverted=True,
        )
        assert PatchVerdict.from_dict(verdict.to_dict()) == verdict


class TestObservabilityIntegration:
    def test_metrics_counters(self):
        metrics = ScanMetrics()
        engine = PatchitPy(rules=_rules(GOOD_RULE, BREAKING_RULE))
        engine.patch(
            "a = transmogrify(x)\nb = legacy_parse(y)\n", metrics=metrics
        )
        counters = metrics.to_dict()["counters"]
        assert counters["patch_verdict_verified"] == 1
        assert counters["patch_verdict_syntax_broken"] == 1
        assert counters["patches_verified"] == 1
        assert counters["patches_reverted"] == 1
        assert counters["patch_verify_attempts"] >= 1

    def test_trace_event_emitted(self):
        tracer = TraceRecorder()
        engine = PatchitPy(rules=_rules(GOOD_RULE))
        engine.patch("y = transmogrify(data)\n", trace=tracer)
        events = [e for e in tracer.events if e["kind"] == "patch-verify"]
        assert len(events) == 1
        assert events[0]["status"] == VERDICT_VERIFIED


class TestProjectIntegration:
    def test_patch_tree_aggregates_verdicts(self, tmp_path: Path):
        (tmp_path / "good.py").write_text("a = transmogrify(x)\n")
        (tmp_path / "bad.py").write_text("b = legacy_parse(y)\n")
        from repro.core.project import ProjectScanner

        engine = PatchitPy(rules=_rules(GOOD_RULE, BREAKING_RULE))
        scanner = ProjectScanner(engine=engine)
        report = scanner.patch_tree(tmp_path, backup=False, use_cache=False)
        assert report.verified_patches == 1
        assert report.unverified_patches == 1
        assert report.verdict_counts() == {
            VERDICT_SYNTAX_BROKEN: 1,
            VERDICT_VERIFIED: 1,
        }
        assert "patch verdicts:" in report.summary()
        assert "unverified patches reverted: 1" in report.summary()
        # the unverifiable file was left byte-identical but still reports
        bad = next(f for f in report.files if f.path.name == "bad.py")
        assert not bad.patched and bad.reverted_patches == 1
        assert (tmp_path / "bad.py").read_text() == "b = legacy_parse(y)\n"

    def test_server_payload_carries_verdicts(self):
        from repro.server.app import analyze_payload

        engine = PatchitPy(rules=_rules(GOOD_RULE, BREAKING_RULE))
        payload, _ = analyze_payload(
            engine, "a = transmogrify(x)\nb = legacy_parse(y)\n", patch=True
        )
        assert payload["patches_reverted"] == 1
        assert payload["verified"] is False
        statuses = {v["status"] for v in payload["patch_verdicts"]}
        assert statuses == {VERDICT_VERIFIED, VERDICT_SYNTAX_BROKEN}
        # clients must never see an edit the verifier refused to ship
        assert [p["rule_id"] for p in payload["patches"]] == ["TST-GOOD-01"]

    def test_server_payload_verified_defaults(self):
        from repro.server.app import analyze_payload

        engine = PatchitPy(rules=_rules(GOOD_RULE))
        payload, _ = analyze_payload(engine, "x = 1\n", patch=True)
        assert payload["verified"] is True
        assert payload["patch_verdicts"] == []

    def test_html_report_shows_verdict_counts(self, tmp_path: Path):
        from repro.core.htmlreport import render_html_report
        from repro.core.project import ProjectScanner

        (tmp_path / "good.py").write_text("a = transmogrify(x)\n")
        (tmp_path / "bad.py").write_text("b = legacy_parse(y)\n")
        engine = PatchitPy(rules=_rules(GOOD_RULE, BREAKING_RULE))
        scanner = ProjectScanner(engine=engine)
        report = scanner.patch_tree(tmp_path, backup=False, use_cache=False)
        document = render_html_report(report)
        assert "Patch verdicts" in document
        assert VERDICT_VERIFIED in document
        assert VERDICT_SYNTAX_BROKEN in document
        assert "1 patch(es) failed verification" in document


class TestCliIntegration:
    def test_exit_code_3_on_reverted_patch(self, tmp_path: Path, monkeypatch, capsys):
        # route the CLI onto a ruleset with a deliberately-broken template
        import repro.cli as cli

        target = tmp_path / "sample.py"
        target.write_text("value = legacy_parse(raw)\n")
        real = cli.PatchitPy

        def patched_engine(**kwargs):
            kwargs["rules"] = _rules(BREAKING_RULE)
            return real(**kwargs)

        monkeypatch.setattr(cli, "PatchitPy", patched_engine)
        code = cli.main([str(target), "--patch"])
        captured = capsys.readouterr()
        assert code == 3
        assert "syntax-broken" in captured.err
        # verification off restores the 0/1/2 contract
        assert cli.main([str(target), "--patch", "--no-verify"]) == 1

    def test_verify_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["patch", "x.py", "--no-verify"])
        assert args.verify is False
        assert build_parser().parse_args(["patch", "x.py"]).verify is True
        # scan never patches, so verification is structurally on-but-moot
        assert build_parser().parse_args(["scan", "x.py"]).verify is True

    def test_sarif_export_carries_verdicts_and_exit_code(
        self, tmp_path: Path, monkeypatch, capsys
    ):
        import json

        import repro.cli as cli

        target = tmp_path / "sample.py"
        target.write_text("value = legacy_parse(raw)\n")
        real = cli.PatchitPy

        def patched_engine(**kwargs):
            kwargs["rules"] = _rules(BREAKING_RULE)
            return real(**kwargs)

        monkeypatch.setattr(cli, "PatchitPy", patched_engine)
        code = cli.main([str(target), "--patch", "--format", "sarif"])
        captured = capsys.readouterr()
        assert code == 3
        log = json.loads(captured.out)
        verdicts = log["runs"][0]["invocations"][0]["properties"]["patchVerdicts"]
        assert [v["status"] for v in verdicts] == [VERDICT_SYNTAX_BROKEN]
        assert verdicts[0]["reverted"] is True
        # detection-only SARIF keeps the pre-1.5 shape
        code = cli.main([str(target), "--format", "sarif"])
        run = json.loads(capsys.readouterr().out)["runs"][0]
        assert code == 1 and "invocations" not in run
