"""Tests for the named entity tagger (Table I semantics)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.standardize import (
    NamedEntityTagger,
    is_config_keyword,
    is_protected_name,
    standardize,
)


class TestProtectionRules:
    def test_config_keywords(self):
        assert is_config_keyword("True")
        assert is_config_keyword("False")
        assert is_config_keyword("None")
        assert not is_config_keyword("true")

    def test_framework_objects_protected(self):
        for name in ("app", "db", "cursor", "self"):
            assert is_protected_name(name)

    def test_api_names_protected(self):
        for name in ("request", "Flask", "escape", "execute", "pickle"):
            assert is_protected_name(name)

    def test_dunders_protected(self):
        assert is_protected_name("__name__")
        assert is_protected_name("__main__")

    def test_data_names_not_protected(self):
        for name in ("username", "visitor", "payload_blob", "order_total"):
            assert not is_protected_name(name)


class TestTaggerBehaviour:
    def test_table1_example(self):
        code = (
            "from flask import Flask, request\n"
            "app = Flask(__name__)\n"
            '@app.route("/comments")\n'
            "def comments():\n"
            "    name = request.args.get('name', '')\n"
            "    return f'<p>{name}</p>'\n"
            "if __name__ == '__main__':\n"
            "    app.run(debug=True)\n"
        )
        result = standardize(code)
        assert "var0 = request.args.get(var1, var2)" in result.text
        assert "f'<p>{var0}</p>'" in result.text
        # configuration parameter preserved (recognized by '=')
        assert "debug=True" in result.text
        # decorator route string preserved
        assert '"/comments"' in result.text
        assert result.mapping["name"] == "var0"

    def test_numbering_by_first_appearance(self):
        result = standardize("alpha = beta\ngamma = alpha\n")
        assert result.mapping["alpha"] == "var0"
        assert result.mapping["beta"] == "var1"
        assert result.mapping["gamma"] == "var2"

    def test_same_token_same_placeholder(self):
        result = standardize("val = load()\nstore(val)\nprint(val)\n")
        assert result.text.count("var0") == 3

    def test_callee_names_preserved(self):
        result = standardize("outcome = compute_total(amount)\n")
        assert "compute_total(" in result.text
        assert result.mapping.get("amount") == "var1" or "amount" in result.mapping

    def test_attribute_names_preserved(self):
        result = standardize("row = cursor.fetchone()\n")
        assert "cursor.fetchone()" in result.text

    def test_kwarg_names_preserved(self):
        result = standardize("resp = post(endpoint, json=payload_data, timeout=10)\n")
        assert "json=" in result.text
        assert "timeout=10" in result.text

    def test_kwarg_literal_values_preserved(self):
        result = standardize("conn.run(retries=3, verbose=False)\n")
        assert "retries=3" in result.text
        assert "verbose=False" in result.text

    def test_positional_string_arg_standardized(self):
        result = standardize("row = fetch('customer-42')\n")
        assert "'customer-42'" in result.mapping

    def test_module_level_string_preserved(self):
        result = standardize('GREETING = "hello world"\n')
        assert '"hello world"' in result.text

    def test_fstring_fields_standardized(self):
        result = standardize("def f():\n    who = get_user()\n    return f'<b>{who}</b>'\n")
        assert "{var0}" in result.text

    def test_fstring_call_wrapped_field(self):
        result = standardize(
            "def f():\n    who = request.args.get('w')\n    return f'<b>{escape(who)}</b>'\n"
        )
        assert "{escape(var0)}" in result.text

    def test_fstring_format_spec_kept(self):
        result = standardize("def f(total):\n    return f'{total:.2f}'\n")
        assert ":.2f}" in result.text

    def test_import_names_preserved(self):
        result = standardize("import os\nfrom flask import Flask\n")
        assert "import os" in result.text
        assert "from flask import Flask" in result.text

    def test_def_name_preserved(self):
        result = standardize("def handle_order(order_code):\n    return order_code\n")
        assert "def handle_order(" in result.text

    def test_extra_protected_names(self):
        tagger = NamedEntityTagger(extra_protected={"special_var"})
        result = tagger.standardize("special_var = other_var\n")
        assert "special_var" in result.text
        assert result.mapping.get("other_var") == "var0"

    def test_placeholder_count(self):
        result = standardize("first = second\n")
        assert result.placeholder_count == 2
        assert result.placeholder_for("first") == "var0"

    def test_comments_removed_by_normalization(self):
        result = standardize("x_value = 1  # remove me\n")
        assert "remove me" not in result.text

    def test_deterministic(self):
        code = "def f():\n    item_name = request.args.get('n')\n    return f'{item_name}'\n"
        assert standardize(code).text == standardize(code).text

    @given(st.text(alphabet="abcxyz_ =('\")\n.,f", max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_total_on_arbitrary_text(self, text):
        # the tagger must never raise, even on junk input
        standardize(text)

    def test_two_samples_align_after_standardization(self):
        # the purpose of standardization: different identifiers, same shape
        a = standardize("def f():\n    alpha = request.args.get('a')\n    return f'<p>{alpha}</p>'\n")
        b = standardize("def g():\n    beta = request.args.get('b')\n    return f'<p>{beta}</p>'\n")
        assert "var0 = request.args.get(var1)" in a.text
        assert "var0 = request.args.get(var1)" in b.text
