"""Tests for the rule model and the 85-rule catalog."""

import re

import pytest

from repro.core.matching import match_rule, run_rules
from repro.core.rules import (
    EXTENDED_ONLY,
    DetectionRule,
    PatchTemplate,
    RuleSet,
    default_ruleset,
    extended_ruleset,
    rule,
)
from repro.cwe import OwaspCategory
from repro.exceptions import DuplicateRuleError, RuleError
from repro.types import Severity


class TestRuleModel:
    def test_patch_template_requires_exactly_one(self):
        with pytest.raises(RuleError):
            PatchTemplate()
        with pytest.raises(RuleError):
            PatchTemplate(replacement="x", builder=lambda m: ("x", ()))

    def test_template_render_expand(self):
        template = PatchTemplate(replacement=r"safe(\g<arg>)")
        match = re.match(r"bad\((?P<arg>\w+)\)", "bad(value)")
        text, imports = template.render(match)
        assert text == "safe(value)"
        assert imports == ()

    def test_template_render_builder_merges_imports(self):
        template = PatchTemplate(
            builder=lambda m: ("fixed", ("import extra",)), imports=("import base",)
        )
        match = re.match("x", "x")
        text, imports = template.render(match)
        assert text == "fixed"
        assert imports == ("import base", "import extra")

    def test_rule_normalizes_cwe(self):
        r = rule("T-1", "89", "d", "pattern")
        assert r.cwe_id == "CWE-089"

    def test_rule_owasp_category(self):
        r = rule("T-2", "CWE-079", "d", "pattern")
        assert r.owasp is OwaspCategory.A03_INJECTION

    def test_empty_rule_id_rejected(self):
        with pytest.raises(RuleError):
            rule("", "CWE-089", "d", "p")

    def test_patchable_property(self):
        plain = rule("T-3", "CWE-089", "d", "p")
        fixing = rule("T-4", "CWE-089", "d", "p", patch=PatchTemplate(replacement="x"))
        assert not plain.patchable and fixing.patchable


class TestGuards:
    def test_not_if_vetoes_match(self):
        r = rule("T-5", "CWE-079", "d", r"render\(\w+\)", not_if=(r"render\(safe",))
        assert match_rule(r, "render(safe_value)") == []
        assert len(match_rule(r, "render(raw_value)")) == 1

    def test_not_on_line(self):
        r = rule("T-6", "CWE-089", "d", r"execute\(q\)", not_on_line=(r"# reviewed",))
        assert match_rule(r, "execute(q)  # reviewed") == []
        assert len(match_rule(r, "execute(q)")) == 1

    def test_not_in_file(self):
        r = rule("T-7", "CWE-502", "d", r"load\(", not_in_file=(r"SafeLoader",))
        assert match_rule(r, "load(x)\n# uses SafeLoader elsewhere\n") == []

    def test_nosec_waiver_is_implicit(self):
        r = rule("T-8", "CWE-095", "d", r"eval\(")
        assert match_rule(r, "eval(x)  # nosec") == []

    def test_require_in_file(self):
        r = rule("T-9", "CWE-079", "d", r"return f", require_in_file=(r"flask",))
        assert match_rule(r, "return f'{x}'") == []
        assert len(match_rule(r, "import flask\nreturn f'{x}'")) == 1


class TestRuleSet:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(DuplicateRuleError):
            RuleSet([rule("X-1", "CWE-089", "d", "p"), rule("X-1", "CWE-079", "d", "p")])

    def test_get_unknown_raises(self):
        with pytest.raises(RuleError):
            RuleSet().get("nope")

    def test_by_cwe(self):
        rs = default_ruleset()
        for r in rs.by_cwe("CWE-89"):
            assert r.cwe_id == "CWE-089"
        assert rs.by_cwe("89")

    def test_by_owasp(self):
        rs = default_ruleset()
        injection = rs.by_owasp(OwaspCategory.A03_INJECTION)
        assert len(injection) >= 15

    def test_without(self):
        rs = default_ruleset()
        smaller = rs.without("PIT-A03-01")
        assert len(smaller) == len(rs) - 1
        assert "PIT-A03-01" not in smaller

    def test_subset(self):
        rs = default_ruleset().subset(lambda r: r.severity is Severity.CRITICAL)
        assert all(r.severity is Severity.CRITICAL for r in rs)


class TestCatalog:
    def test_default_has_85_rules(self):
        # §II-A: "The tool executes 85 detection rules"
        assert len(default_ruleset()) == 85

    def test_extended_superset(self):
        default_ids = {r.rule_id for r in default_ruleset()}
        extended_ids = {r.rule_id for r in extended_ruleset()}
        assert default_ids < extended_ids
        assert extended_ids - default_ids == EXTENDED_ONLY

    def test_covers_51_cwes(self):
        # §III: PatchitPy identified code vulnerable to 51 distinct CWEs
        assert len(default_ruleset().cwes()) == 51

    def test_every_category_has_rules(self):
        rs = default_ruleset()
        for category in OwaspCategory:
            assert rs.by_owasp(category), category

    def test_most_rules_patchable(self):
        rs = default_ruleset()
        assert len(rs.patchable()) >= 60

    def test_unique_patterns_compile(self):
        for r in extended_ruleset():
            assert r.pattern.pattern  # compiled at construction


# One positive and one negative snippet per high-traffic rule.
_RULE_CASES = [
    ("PIT-A03-01", 'cur.execute(f"SELECT * FROM t WHERE id={x}")', 'cur.execute("SELECT 1")'),
    ("PIT-A03-02", 'cur.execute("SELECT * FROM t WHERE id=%s" % x)', 'cur.execute("SELECT 1", (x,))'),
    ("PIT-A03-03", 'cur.execute("SELECT {}".format(x))', 'cur.execute("SELECT ?", (x,))'),
    ("PIT-A03-04", 'cur.execute("SELECT * FROM t WHERE n=\'" + x + "\'")', 'cur.execute("SELECT ?", (x,))'),
    ("PIT-A03-07", 'os.system(f"ping {host}")', 'subprocess.run(["ping", host])'),
    ("PIT-A03-08", 'subprocess.run(cmd, shell=True)', 'subprocess.run(cmd, shell=False)'),
    ("PIT-A03-09", "os.popen(cmd)", "subprocess.run([cmd])"),
    ("PIT-A03-11", "eval(expr)", "ast.literal_eval(expr)"),
    ("PIT-A03-12", "exec(code)", "run_action(code)"),
    ("PIT-A03-13", 'import flask\nreturn f"<p>{name}</p>"', 'import flask\nreturn f"<p>{escape(name)}</p>"'),
    ("PIT-A03-18", 'conn.search_s(base, scope, f"(uid={u})")', 'conn.search_s(base, scope, f"(uid={escape_filter_chars(u)})")'),
    ("PIT-A03-19", 'tree.xpath(f"//u[@n=\'{x}\']")', 'tree.xpath("//u[@n=$n]", n=x)'),
    ("PIT-A03-21", 'logging.info(f"user {u}")', 'logging.info("user %s", u)'),
    ("PIT-A02-01", "hashlib.md5(data)", "hashlib.sha256(data)"),
    ("PIT-A02-02", "hashlib.sha1(data)", "hashlib.sha3_256(data)"),
    ("PIT-A02-03", 'hashlib.new("md5")', 'hashlib.new("sha256")'),
    ("PIT-A02-07", "AES.MODE_ECB", "AES.MODE_GCM"),
    ("PIT-A02-08", 'AES.new(key, AES.MODE_CBC, b"0123456789abcdef")', "AES.new(key, AES.MODE_CBC, os.urandom(16))"),
    ("PIT-A02-12", "requests.get(url, verify=False)", "requests.get(url, verify=True)"),
    ("PIT-A02-13", "ssl._create_unverified_context()", "ssl.create_default_context()"),
    ("PIT-A02-15", "ssl.PROTOCOL_TLSv1", "ssl.PROTOCOL_TLS_CLIENT"),
    ("PIT-A01-05", "archive.extractall(dest)", 'archive.extractall(dest, filter="data")'),
    ("PIT-A01-07", "f.save(os.path.join(d, f.filename))", "f.save(os.path.join(d, secure_filename(f.filename)))"),
    ("PIT-A01-09", 'redirect(request.args.get("next"))', 'redirect(url_for("home"))'),
    ("PIT-A01-10", "os.chmod(p, 0o777)", "os.chmod(p, 0o600)"),
    ("PIT-A01-12", "tempfile.mktemp()", "tempfile.mkstemp()"),
    ("PIT-A04-01", "app.run(debug=True)", "app.run(debug=False)"),
    ("PIT-A04-02", "return str(e), 500", 'return "error", 500'),
    ("PIT-A05-05", "resp.set_cookie('sid', v)", "resp.set_cookie('sid', v, secure=True, httponly=True, samesite='Lax')"),
    ("PIT-A05-09", 'app.run(host="0.0.0.0")', 'app.run(host="127.0.0.1")'),
    ("PIT-A06-01", "telnetlib.Telnet(host)", "paramiko.SSHClient()"),
    ("PIT-A06-02", "ftplib.FTP(host)", "ftplib.FTP_TLS(host)"),
    ("PIT-A07-01", 'password = "hunter2!"', 'password = os.environ.get("PASSWORD", "")'),
    ("PIT-A07-03", 'password == "letmein"', 'hmac.compare_digest(password, expected)'),
    ("PIT-A07-05", "len(password) >= 4", "len(password) >= 12"),
    ("PIT-A08-01", "pickle.loads(blob)", "json.loads(blob)"),
    ("PIT-A08-02", "pickle.load(fh)", "json.load(fh)"),
    ("PIT-A08-04", "marshal.loads(blob)", "json.loads(blob)"),
    ("PIT-A08-06", "yaml.load(fh)", "yaml.safe_load(fh)"),
    ("PIT-A08-07", "yaml.full_load(fh)", "yaml.safe_load(fh)"),
    ("PIT-A09-02", "try:\n    go()\nexcept OSError:\n    pass\n", "try:\n    go()\nexcept OSError:\n    logging.exception('x')\n"),
    ("PIT-A10-01", 'requests.get(request.args.get("url"))', "requests.get(FIXED_URL, timeout=5)"),
]


class TestCatalogRules:
    @pytest.mark.parametrize("rule_id,positive,negative", _RULE_CASES)
    def test_positive_matches(self, rule_id, positive, negative):
        r = default_ruleset().get(rule_id)
        assert match_rule(r, positive), f"{rule_id} must match: {positive!r}"

    @pytest.mark.parametrize("rule_id,positive,negative", _RULE_CASES)
    def test_negative_does_not_match(self, rule_id, positive, negative):
        r = default_ruleset().get(rule_id)
        assert not match_rule(r, negative), f"{rule_id} must not match: {negative!r}"


class TestRunRules:
    def test_same_cwe_overlap_deduped(self):
        source = 'cur.execute(f"SELECT {x}")'
        findings = run_rules(default_ruleset(), source)
        sql_findings = [f for f in findings if f.cwe_id == "CWE-089"]
        assert len(sql_findings) == 1

    def test_findings_sorted_by_position(self):
        source = "eval(a)\npickle.loads(b)\n"
        findings = run_rules(default_ruleset(), source)
        starts = [f.span.start for f in findings]
        assert starts == sorted(starts)

    def test_empty_source(self):
        assert run_rules(default_ruleset(), "") == []
