"""Tests for the persistent scan-result cache and incremental scanning."""

import json
import os
from pathlib import Path

import pytest

from repro import PatchitPy, ProjectScanner, default_ruleset
from repro.core.cache import (
    CACHE_DIR_NAME,
    CACHE_FILE_NAME,
    CACHE_SCHEMA_VERSION,
    ScanCache,
    hash_source,
)
from repro.types import Confidence, Finding, Severity, Span

VULN = "import pickle\n\ndata = pickle.loads(blob)\n"
CLEAN = "def add(a, b):\n    return a + b\n"


class CountingEngine(PatchitPy):
    """Engine that counts detect() calls (module level, so it pickles)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.detect_calls = 0

    def detect(self, source):
        self.detect_calls += 1
        return super().detect(source)


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "vuln.py").write_text(VULN)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


class TestScanCacheStore:
    def test_round_trips_findings(self, tmp_path):
        finding = Finding(
            rule_id="PIT-A08-01",
            cwe_id="CWE-502",
            message="pickle.loads on untrusted data",
            span=Span(15, 27),
            snippet="pickle.loads",
            severity=Severity.HIGH,
            confidence=Confidence.HIGH,
            fixable=True,
        )
        cache = ScanCache(tmp_path, "fp")
        cache.store("digest-1", [finding])
        assert cache.save()
        reloaded = ScanCache(tmp_path, "fp")
        entry = reloaded.lookup("digest-1")
        assert entry is not None
        assert entry.findings == [finding]
        assert entry.error is None

    def test_error_outcomes_cached(self, tmp_path):
        cache = ScanCache(tmp_path, "fp")
        cache.store("digest-bad", [], error="decode failed")
        cache.save()
        entry = ScanCache(tmp_path, "fp").lookup("digest-bad")
        assert entry.error == "decode failed"
        assert entry.findings == []

    def test_fingerprint_mismatch_discards_store(self, tmp_path):
        cache = ScanCache(tmp_path, "fp-old")
        cache.store("digest-1", [])
        cache.save()
        assert ScanCache(tmp_path, "fp-old").lookup("digest-1") is not None
        assert ScanCache(tmp_path, "fp-new").lookup("digest-1") is None

    def test_corrupt_store_loads_empty(self, tmp_path):
        cache_dir = tmp_path / CACHE_DIR_NAME
        cache_dir.mkdir()
        (cache_dir / CACHE_FILE_NAME).write_text("{not json")
        cache = ScanCache(tmp_path, "fp")
        assert len(cache) == 0

    def test_schema_bump_discards_store(self, tmp_path):
        cache = ScanCache(tmp_path, "fp")
        cache.store("digest-1", [])
        cache.save()
        raw = json.loads((tmp_path / CACHE_DIR_NAME / CACHE_FILE_NAME).read_text())
        raw["schema"] = CACHE_SCHEMA_VERSION + 1
        (tmp_path / CACHE_DIR_NAME / CACHE_FILE_NAME).write_text(json.dumps(raw))
        assert len(ScanCache(tmp_path, "fp")) == 0

    def test_clear_removes_store(self, tmp_path):
        cache = ScanCache(tmp_path, "fp")
        cache.store("digest-1", [])
        cache.save()
        assert ScanCache.clear(tmp_path)
        assert not (tmp_path / CACHE_DIR_NAME).exists()
        assert not ScanCache.clear(tmp_path)

    def test_eviction_bounds_store(self, tmp_path):
        cache = ScanCache(tmp_path, "fp", max_entries=3)
        for i in range(5):
            cache.store(f"digest-{i}", [])
        cache.save()
        reloaded = ScanCache(tmp_path, "fp", max_entries=3)
        assert len(reloaded) == 3
        assert reloaded.lookup("digest-4") is not None
        assert reloaded.lookup("digest-0") is None

    def test_stat_hint_requires_unchanged_mtime_and_size(self, tmp_path):
        target = tmp_path / "f.py"
        target.write_text(CLEAN)
        stat = target.stat()
        cache = ScanCache(tmp_path, "fp")
        cache.remember_stat(target, stat, "digest-1")
        assert cache.stat_digest(target, stat) == "digest-1"
        target.write_text(CLEAN + "# more\n")
        assert cache.stat_digest(target, target.stat()) is None

    def test_hash_source_matches_bytes(self):
        import hashlib

        assert hash_source(VULN) == hashlib.sha256(VULN.encode()).hexdigest()


class TestIncrementalScan:
    def test_warm_scan_performs_zero_detect_calls(self, tree):
        engine = CountingEngine()
        scanner = ProjectScanner(engine=engine)
        cold = scanner.scan(tree, use_cache=True)
        assert engine.detect_calls == 2
        assert cold.cache_misses == 2 and cold.cache_hits == 0

        engine.detect_calls = 0
        warm = scanner.scan(tree, use_cache=True)
        assert engine.detect_calls == 0
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.total_findings == cold.total_findings
        assert all(f.from_cache for f in warm.files)

    def test_warm_report_identical_to_cold(self, tree):
        scanner = ProjectScanner()
        cold = scanner.scan(tree, use_cache=True)
        warm = scanner.scan(tree, use_cache=True)
        assert [f.path for f in cold.files] == [f.path for f in warm.files]
        assert [
            [fi.to_dict() for fi in f.findings] for f in cold.files
        ] == [[fi.to_dict() for fi in f.findings] for f in warm.files]

    def test_modified_file_reanalyzed(self, tree):
        engine = CountingEngine()
        scanner = ProjectScanner(engine=engine)
        scanner.scan(tree, use_cache=True)
        (tree / "clean.py").write_text("import pickle\nx = pickle.loads(y)\n")
        engine.detect_calls = 0
        rescan = scanner.scan(tree, use_cache=True)
        assert engine.detect_calls == 1
        assert rescan.cache_hits == 1 and rescan.cache_misses == 1
        assert rescan.total_findings == 2

    def test_rule_change_invalidates_cache(self, tree):
        scanner = ProjectScanner()
        scanner.scan(tree, use_cache=True)

        engine = CountingEngine(rules=default_ruleset().without("PIT-A08-01"))
        changed = ProjectScanner(engine=engine)
        report = changed.scan(tree, use_cache=True)
        assert engine.detect_calls == 2  # nothing reused across fingerprints
        assert report.cache_misses == 2

    def test_touched_but_unchanged_content_still_hits(self, tree):
        scanner = ProjectScanner()
        scanner.scan(tree, use_cache=True)
        # rewrite identical bytes with a new mtime: stat hint misses, the
        # content digest still hits
        os.utime(tree / "vuln.py", ns=(1, 1))
        (tree / "vuln.py").write_text(VULN)
        engine = CountingEngine()
        warm = ProjectScanner(engine=engine).scan(tree, use_cache=True)
        assert engine.detect_calls == 0
        assert warm.cache_hits == 2

    def test_cache_dir_not_scanned(self, tree):
        scanner = ProjectScanner()
        scanner.scan(tree, use_cache=True)
        # plant a vulnerable .py inside the cache dir; it must be ignored
        (tree / CACHE_DIR_NAME / "planted.py").write_text(VULN)
        report = scanner.scan(tree, use_cache=True)
        assert len(report.files) == 2

    def test_undecodable_file_cached_as_error(self, tree):
        (tree / "bad.py").write_bytes(b"\xff\xfe\x00 junk")
        engine = CountingEngine()
        scanner = ProjectScanner(engine=engine)
        cold = scanner.scan(tree, use_cache=True)
        assert sum(1 for f in cold.files if f.error) == 1
        engine.detect_calls = 0
        warm = scanner.scan(tree, use_cache=True)
        assert engine.detect_calls == 0
        assert warm.cache_misses == 0
        bad = [f for f in warm.files if f.path.name == "bad.py"][0]
        assert bad.error

    def test_cache_survives_readonly_root(self, tree, monkeypatch):
        """Save failures degrade to an uncached scan, not an exception."""
        scanner = ProjectScanner()
        report = scanner.scan(tree, use_cache=True)
        assert report.total_findings >= 1
        # simulate unwritable store: save() returns False instead of raising
        cache = scanner.open_cache(tree)
        monkeypatch.setattr(
            Path, "mkdir", lambda *a, **k: (_ for _ in ()).throw(OSError("ro"))
        )
        cache.store("d", [])
        assert cache.save() is False


class TestPatchTreeCache:
    def test_patch_tree_reuses_cached_detect(self, tree):
        engine = CountingEngine()
        scanner = ProjectScanner(engine=engine)
        scanner.scan(tree, use_cache=True)
        engine.detect_calls = 0
        report = scanner.patch_tree(tree, use_cache=True)
        # detection reused from cache for both files; the patch pass
        # itself still re-detects internally on the vulnerable file only
        assert report.cache_hits == 2
        patched = [f for f in report.files if f.patched]
        assert len(patched) == 1
        assert all(f.from_cache for f in report.files if f.error is None)


class TestScanCacheLifecycle:
    """The open/close contract the scan daemon relies on."""

    def test_close_persists_and_is_idempotent(self, tmp_path):
        cache = ScanCache(tmp_path, "fp")
        cache.store("d1", [])
        assert cache.close() is True  # first close performs the save
        assert cache.closed
        assert cache.close() is False  # second close is a no-op
        reloaded = ScanCache(tmp_path, "fp")
        assert reloaded.lookup("d1") is not None

    def test_mutations_after_close_are_noops(self, tmp_path):
        cache = ScanCache(tmp_path, "fp")
        cache.store("kept", [])
        cache.close()
        cache.store("dropped", [])
        cache.remember_stat(tmp_path / "f.py", os.stat(tmp_path), "dropped")
        assert cache.save() is False
        reloaded = ScanCache(tmp_path, "fp")
        assert reloaded.lookup("kept") is not None
        assert reloaded.lookup("dropped") is None
        # direct misses, because the post-close lookup above also counted
        assert reloaded.misses >= 1

    def test_lookups_keep_working_after_close(self, tmp_path):
        cache = ScanCache(tmp_path, "fp")
        cache.store("d1", [])
        cache.close()
        assert cache.lookup("d1") is not None

    def test_context_manager_closes(self, tmp_path):
        with ScanCache(tmp_path, "fp") as cache:
            cache.store("d1", [])
        assert cache.closed
        assert ScanCache(tmp_path, "fp").lookup("d1") is not None

    def test_concurrent_readers_and_writers_one_process(self, tmp_path):
        """Overlapping store/lookup threads never corrupt the tables.

        This is the daemon's exact sharing pattern: one open cache, many
        request threads hitting it concurrently.
        """
        import threading

        cache = ScanCache(tmp_path, "fp")
        errors = []
        barrier = threading.Barrier(8)

        def worker(slot):
            try:
                barrier.wait(timeout=10)
                for i in range(200):
                    digest = f"w{slot}-{i}"
                    cache.store(digest, [])
                    assert cache.lookup(digest) is not None
                    cache.lookup(f"missing-{slot}-{i}")
                    if i % 50 == 0:
                        cache.save()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) == 8 * 200
        assert cache.hits == 8 * 200
        assert cache.misses == 8 * 200
        assert cache.close() in (True, False)
        reloaded = ScanCache(tmp_path, "fp")
        assert len(reloaded) == 8 * 200

    def test_scanner_accepts_caller_held_cache(self, tree):
        """scan(cache=...) reuses the open cache and reports per-scan deltas."""
        scanner = ProjectScanner()
        cache = scanner.open_cache(tree)
        cold = scanner.scan(tree, cache=cache)
        warm = scanner.scan(tree, cache=cache)
        assert not cache.closed  # caller-held caches are never closed
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        # deltas, not the cache's lifetime totals
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        cache.close()


def _finding(rule_id="PIT-A08-01"):
    return Finding(
        rule_id=rule_id,
        cwe_id="CWE-502",
        message="pickle.loads on untrusted data",
        span=Span(15, 27),
        snippet="pickle.loads",
        severity=Severity.HIGH,
        confidence=Confidence.HIGH,
        fixable=True,
    )


class TestSharedCacheTier:
    """The cross-process concurrent-open contract (``shared=True``).

    These tests simulate two fleet workers by holding two independently
    constructed ``ScanCache`` instances open on the same directory —
    which is exactly what two daemon processes do, minus the address
    spaces.  The contract under test: saves merge instead of clobber,
    and lookups refresh from disk on miss, so an entry stored by one
    opener becomes a hit for its sibling without either restarting.
    """

    def test_miss_refreshes_from_a_siblings_save(self, tmp_path):
        writer = ScanCache(tmp_path, "fp", shared=True)
        reader = ScanCache(tmp_path, "fp", shared=True)
        writer.store("digest-shared", [_finding()])
        assert writer.save()
        entry = reader.lookup("digest-shared")
        assert entry is not None and entry.findings == [_finding()]
        assert reader.refreshes == 1
        assert reader.hits == 1 and reader.misses == 0

    def test_unshared_cache_never_refreshes(self, tmp_path):
        writer = ScanCache(tmp_path, "fp", shared=True)
        reader = ScanCache(tmp_path, "fp")  # plain single-owner mode
        writer.store("digest-x", [_finding()])
        assert writer.save()
        assert reader.lookup("digest-x") is None
        assert reader.refreshes == 0

    def test_true_miss_probes_but_stays_a_miss(self, tmp_path):
        writer = ScanCache(tmp_path, "fp", shared=True)
        reader = ScanCache(tmp_path, "fp", shared=True)
        writer.store("digest-present", [_finding()])
        assert writer.save()
        assert reader.lookup("digest-absent") is None
        assert reader.misses == 1

    def test_refresh_is_cheap_when_store_is_unchanged(self, tmp_path):
        writer = ScanCache(tmp_path, "fp", shared=True)
        reader = ScanCache(tmp_path, "fp", shared=True)
        writer.store("d1", [_finding()])
        assert writer.save()
        assert reader.lookup("missing-1") is None
        assert reader.lookup("missing-2") is None
        # the (mtime_ns, size) probe noticed nothing new the second time
        assert reader.refreshes == 1

    def test_saves_merge_instead_of_clobbering(self, tmp_path):
        a = ScanCache(tmp_path, "fp", shared=True)
        b = ScanCache(tmp_path, "fp", shared=True)
        a.store("digest-a", [_finding("PIT-A08-01")])
        b.store("digest-b", [_finding("PIT-A03-01")])
        assert a.save()
        assert b.save()  # must fold a's entry in, not overwrite it
        fresh = ScanCache(tmp_path, "fp", shared=True)
        assert fresh.lookup("digest-a") is not None
        assert fresh.lookup("digest-b") is not None

    def test_in_memory_entry_wins_the_merge(self, tmp_path):
        a = ScanCache(tmp_path, "fp", shared=True)
        b = ScanCache(tmp_path, "fp", shared=True)
        a.store("digest-dup", [_finding("PIT-A08-01")])
        assert a.save()
        b.store("digest-dup", [_finding("PIT-A03-01")])
        assert b.save()
        fresh = ScanCache(tmp_path, "fp", shared=True)
        entry = fresh.lookup("digest-dup")
        assert entry is not None
        assert entry.findings[0].rule_id == "PIT-A03-01"

    def test_writer_lock_file_is_created(self, tmp_path):
        cache = ScanCache(tmp_path, "fp", shared=True)
        cache.store("d", [_finding()])
        assert cache.save()
        assert cache.lock_file.exists()

    def test_cross_process_write_through(self, tmp_path):
        """A real second process stores an entry; this process hits it."""
        import subprocess
        import sys
        import textwrap

        reader = ScanCache(tmp_path, "fp", shared=True)
        assert reader.lookup("digest-proc") is None
        script = textwrap.dedent(
            f"""
            from pathlib import Path
            from repro.core.cache import ScanCache
            from repro.types import Confidence, Finding, Severity, Span
            cache = ScanCache(Path({str(tmp_path)!r}), "fp", shared=True)
            cache.store("digest-proc", [Finding(
                rule_id="PIT-A08-01", cwe_id="CWE-502", message="m",
                span=Span(0, 1), snippet="s", severity=Severity.HIGH,
                confidence=Confidence.HIGH, fixable=True)])
            assert cache.save()
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-c", script], check=True, env=env, timeout=60
        )
        entry = reader.lookup("digest-proc")
        assert entry is not None and entry.findings[0].rule_id == "PIT-A08-01"
