"""Tests for structured tracing, per-finding provenance and the watchdog.

Pins the tracing PR's contract: deterministic span ids (``--jobs 1`` and
``--jobs 4`` emit byte-identical canonical traces), zero-cost disabled
recorders, complete provenance on every ``analyze`` finding, the
slow-rule watchdog's rule-health table, and the surfacing layers (CLI
``--explain``/``--trace``, SARIF, HTML, Prometheus).
"""

import json
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro import PatchitPy, ProjectScanner, ScanMetrics
from repro.cli import main
from repro.core.htmlreport import render_html_report
from repro.core.matching import _dedupe_same_cwe_overlaps, run_rules
from repro.core.project import scan_paths
from repro.core.sarif import to_sarif
from repro.observability import (
    NULL_TRACE,
    NullTraceRecorder,
    RuleHealth,
    TraceRecorder,
    format_stats,
    render_explain,
    to_prometheus,
)
from repro.observability.trace import span_id
from repro.types import AnalysisReport, Confidence, Finding, Severity, Span

VULN_PICKLE = "import pickle\n\ndata = pickle.loads(blob)\n"
VULN_MD5 = "import hashlib\n\nh = hashlib.md5(secret_value)\n"
VULN_YAML = 'import yaml\n\ny = yaml.load(open("f"))\n'
CLEAN = "def add(a, b):\n    return a + b\n"
NOSEC = "import pickle\n\ndata = pickle.loads(blob)  # nosec\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "a.py").write_text(VULN_PICKLE)
    (tmp_path / "b.py").write_text(VULN_MD5)
    (tmp_path / "c.py").write_text(CLEAN)
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "d.py").write_text(VULN_YAML + VULN_PICKLE)
    (tmp_path / "pkg" / "e.py").write_text(CLEAN)
    return tmp_path


class TestRecorder:
    def test_span_ids_are_content_derived(self):
        assert span_id("", "scan", "root", 0) == span_id("", "scan", "root", 0)
        assert span_id("", "scan", "root", 0) != span_id("", "scan", "root", 1)
        assert span_id("p1", "rule", "R", 0) != span_id("p2", "rule", "R", 0)

    def test_children_are_parented_to_open_span(self):
        t = TraceRecorder()
        outer = t.begin("scan", "root")
        inner = t.begin("file", "a.py")
        t.event("cache-lookup", "a.py", outcome="miss")
        t.end(inner, findings=0)
        t.end(outer, files=1)
        by_id = {e["id"]: e for e in t.events}
        assert by_id[inner]["parent"] == outer
        lookup = next(e for e in t.events if e["kind"] == "cache-lookup")
        assert lookup["parent"] == inner
        assert by_id[outer]["parent"] is None
        # children are emitted before their parent closes
        assert t.events[-1]["id"] == outer

    def test_same_name_siblings_get_distinct_ids(self):
        t = TraceRecorder()
        first = t.event("rule", "R")
        second = t.event("rule", "R")
        assert first != second

    def test_canonical_jsonl_strips_only_timing(self):
        t = TraceRecorder()
        sid = t.begin("rule", "R")
        t.end(sid, outcome="no-match", matches=0)
        assert "dur_ms" in t.to_jsonl()
        canonical = t.canonical_jsonl()
        assert "dur_ms" not in canonical
        assert '"outcome": "no-match"' in canonical

    def test_merge_reparents_top_level_events(self):
        scan = TraceRecorder()
        root = scan.begin("scan", "r")
        worker = TraceRecorder()
        fid = worker.begin("file", "a.py")
        worker.event("rule", "R")
        worker.end(fid)
        scan.merge(worker, parent=root)
        scan.end(root)
        file_event = next(e for e in scan.events if e["kind"] == "file")
        assert file_event["parent"] == root
        rule_event = next(e for e in scan.events if e["kind"] == "rule")
        assert rule_event["parent"] == fid

    def test_merge_none_and_disabled_are_noops(self):
        t = TraceRecorder()
        assert t.merge(None) is t
        assert t.merge(NullTraceRecorder()) is t
        assert t.events == []

    def test_null_recorder_pickles_to_singleton(self):
        assert pickle.loads(pickle.dumps(NULL_TRACE)) is NULL_TRACE
        assert not NULL_TRACE.enabled
        assert NULL_TRACE.begin("scan", "x") == ""
        assert NULL_TRACE.to_jsonl() == ""

    def test_write_jsonl(self, tmp_path):
        t = TraceRecorder()
        t.event("rule", "R", outcome="no-match")
        target = t.write_jsonl(tmp_path / "trace.jsonl")
        lines = target.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "rule"


class TestTracedDetect:
    def test_findings_identical_to_untraced(self):
        engine = PatchitPy()
        plain = engine.detect(VULN_PICKLE + VULN_MD5)
        traced = engine.detect(VULN_PICKLE + VULN_MD5, trace=TraceRecorder())
        assert [f.to_dict() | {"provenance": None} for f in traced] == [
            f.to_dict() | {"provenance": None} for f in plain
        ]
        assert all(f.provenance is not None for f in traced)
        assert all(f.provenance is None for f in plain)

    def test_rule_spans_cover_every_rule(self):
        engine = PatchitPy()
        t = TraceRecorder()
        engine.detect(VULN_PICKLE, trace=t)
        rule_events = [e for e in t.events if e["kind"] == "rule"]
        assert len(rule_events) == len(list(engine.rules))
        outcomes = {e["outcome"] for e in rule_events}
        assert "matched" in outcomes
        assert "prefilter-skip" in outcomes

    def test_guard_veto_recorded(self):
        engine = PatchitPy()
        t = TraceRecorder()
        findings = engine.detect(NOSEC, trace=t)
        assert findings == []
        vetoed = [
            e
            for e in t.events
            if e["kind"] == "guard-decision" and e["vetoed"]
        ]
        assert vetoed, "nosec veto not traced"
        rule_events = [e for e in t.events if e["kind"] == "rule" and e["vetoes"]]
        assert rule_events

    def test_traced_detect_also_feeds_metrics(self):
        engine = PatchitPy()
        metrics = ScanMetrics()
        engine.detect(VULN_PICKLE, metrics=metrics, trace=TraceRecorder())
        assert metrics.counters["findings"] >= 1
        assert metrics.rules


class TestProvenance:
    def test_provenance_names_prefilter_and_guards(self):
        engine = PatchitPy()
        [finding] = engine.detect(VULN_YAML, trace=TraceRecorder())
        prov = finding.provenance
        assert prov.rule_id == finding.rule_id
        assert prov.prefilter_passed
        assert prov.matched_span == (finding.span.start, finding.span.end)
        descriptions = [g.description for g in prov.guards]
        assert any("nosec" in d for d in descriptions)
        assert not prov.vetoed
        # the patch preview is rendered at detection time
        assert prov.patch is not None
        assert "safe_load" in prov.patch.replacement

    def test_analyze_attaches_provenance_untraced(self):
        report = PatchitPy().analyze(VULN_PICKLE + VULN_MD5, patch=True)
        assert report.findings
        for finding in report.findings:
            assert finding.provenance is not None
            assert finding.provenance.rule_id == finding.rule_id
            assert finding.provenance.guards
        patchable = [f for f in report.findings if f.fixable]
        assert patchable
        assert all(f.provenance.patch is not None for f in patchable)

    def test_explain_renders_guard_verdicts_and_patch(self):
        engine = PatchitPy()
        report = engine.analyze(VULN_YAML, patch=True)
        text = engine.explain(VULN_YAML, report.findings[0])
        assert "fired" in text
        assert "[pass]" in text
        assert "safe_load" in text

    def test_explain_without_provenance_points_at_flags(self):
        finding = Finding(
            rule_id="X",
            cwe_id="CWE-1",
            message="m",
            span=Span(0, 1),
        )
        assert "--explain" in render_explain(finding)

    def test_finding_dict_roundtrip_preserves_provenance(self):
        engine = PatchitPy()
        [finding] = engine.detect(VULN_YAML, trace=TraceRecorder())
        restored = Finding.from_dict(finding.to_dict())
        assert restored == finding  # provenance excluded from equality
        assert restored.provenance is not None
        assert restored.provenance.to_dict() == finding.provenance.to_dict()

    def test_untraced_finding_keeps_pre_1_2_shape(self):
        [finding] = PatchitPy().detect(VULN_YAML)
        assert "provenance" not in finding.to_dict()

    def test_provenance_survives_the_scan_cache(self, tree):
        tracer = TraceRecorder()
        ProjectScanner(trace=tracer).scan(tree, use_cache=True)
        warm = ProjectScanner().scan(tree, use_cache=True)
        assert warm.cache_hits == 5
        cached_findings = [f for r in warm.files for f in r.findings]
        assert cached_findings
        assert all(f.provenance is not None for f in cached_findings)


class TestParallelDeterminism:
    def test_jobs1_vs_jobs4_traces_byte_identical(self, tree):
        t1 = TraceRecorder()
        r1 = ProjectScanner(trace=t1).scan(tree, jobs=1)
        t4 = TraceRecorder()
        r4 = ProjectScanner(trace=t4).scan(tree, jobs=4, processes=True)
        assert t1.canonical_jsonl() == t4.canonical_jsonl()
        assert t1.canonical_jsonl()  # non-empty
        prov1 = [
            [f.provenance.to_dict() for f in r.findings] for r in r1.files
        ]
        prov4 = [
            [f.provenance.to_dict() for f in r.findings] for r in r4.files
        ]
        assert prov1 == prov4

    def test_trace_is_one_connected_tree(self, tree):
        t = TraceRecorder()
        ProjectScanner(trace=t).scan(tree, jobs=1)
        ids = {e["id"] for e in t.events}
        roots = [e for e in t.events if e["parent"] is None]
        assert [e["kind"] for e in roots] == ["scan"]
        for event in t.events:
            if event["parent"] is not None:
                assert event["parent"] in ids
        scan_event = roots[0]
        assert scan_event["files"] == 5
        file_events = [e for e in t.events if e["kind"] == "file"]
        assert len(file_events) == 5

    def test_warm_scan_traces_cache_hits(self, tree):
        ProjectScanner().scan(tree, use_cache=True)
        t = TraceRecorder()
        ProjectScanner(trace=t).scan(tree, use_cache=True)
        lookups = [e for e in t.events if e["kind"] == "cache-lookup"]
        assert len(lookups) == 5
        assert all(e["outcome"] == "hit" for e in lookups)

    def test_scan_paths_forwards_trace(self, tree):
        t = TraceRecorder()
        report = scan_paths([tree], trace=t)
        assert report.total_findings
        assert any(e["kind"] == "scan" for e in t.events)


class TestWatchdog:
    def test_tiny_budget_flags_slow_rules(self, tree):
        metrics = ScanMetrics()
        scanner = ProjectScanner(metrics=metrics, slow_rule_budget_ms=0.0000001)
        scanner.scan(tree, jobs=1)
        assert metrics.rule_health, "no rule breached an (almost) zero budget"
        entry = next(iter(metrics.rule_health.values()))
        assert entry.breaches >= 1
        assert entry.worst_file.endswith(".py")
        assert entry.worst_ms > 0
        assert metrics.counters["slow_rule_breaches"] >= len(metrics.rule_health)

    def test_none_budget_disables_watchdog(self, tree):
        metrics = ScanMetrics()
        ProjectScanner(metrics=metrics, slow_rule_budget_ms=None).scan(tree)
        assert metrics.rule_health == {}
        assert "slow_rule_breaches" not in metrics.counters

    def test_rule_health_in_format_stats(self):
        metrics = ScanMetrics()
        health = metrics.health_for("PIT-X")
        health.note("slow.py", 120.0)
        text = format_stats(metrics)
        assert "rule health" in text
        assert "slow.py" in text
        assert "120.0ms" in text

    def test_rule_health_merge_is_deterministic(self):
        # same worst_ms on two files: the lexicographically smaller path
        # wins regardless of merge order (associativity requirement)
        a = RuleHealth()
        a.note("b.py", 80.0)
        b = RuleHealth()
        b.note("a.py", 80.0)
        ab = RuleHealth()
        ab.merge(a)
        ab.merge(b)
        ba = RuleHealth()
        ba.merge(b)
        ba.merge(a)
        assert ab.to_dict() == ba.to_dict()
        assert ab.worst_file == "a.py"
        assert ab.breaches == 2

    def test_rule_health_serialization_roundtrip(self):
        metrics = ScanMetrics()
        metrics.health_for("PIT-X").note("f.py", 75.5)
        restored = ScanMetrics.from_dict(metrics.to_dict())
        assert restored.rule_health["PIT-X"].to_dict() == {
            "breaches": 1,
            "worst_ms": 75.5,
            "worst_file": "f.py",
        }


class TestPrometheusEscaping:
    def _metrics_with_hostile_rule(self):
        metrics = ScanMetrics()
        rule_id = 'bad"rule\\id'
        stats = metrics.rule_stats(rule_id)
        stats.calls = 1
        stats.time_s = 0.5
        health = metrics.health_for(rule_id)
        health.note('dir\\file"name.py', 90.0)
        return metrics, rule_id

    def test_rule_labels_escape_quotes_and_backslashes(self):
        metrics, _ = self._metrics_with_hostile_rule()
        payload = to_prometheus(metrics)
        assert 'rule="bad\\"rule\\\\id"' in payload
        assert 'file="dir\\\\file\\"name.py"' in payload
        # no raw (unescaped) quote or backslash survives inside a label
        for line in payload.splitlines():
            if line.startswith("#") or "{" not in line:
                continue
            label_part = line[line.index("{") : line.rindex("}")]
            assert '\\"' in label_part or '"bad' not in label_part

    def test_rule_health_families_exported(self):
        metrics, _ = self._metrics_with_hostile_rule()
        payload = to_prometheus(metrics)
        assert "patchitpy_rule_slow_breaches" in payload
        assert "patchitpy_rule_worst_file_ms" in payload


class TestSarif:
    def test_default_shape_unchanged_without_metrics(self):
        report = PatchitPy().analyze(VULN_PICKLE, patch=False)
        # strip provenance to mimic a pre-1.2 caller's findings
        report.findings = [f.with_provenance(None) for f in report.findings]
        log = to_sarif(report)
        run = log["runs"][0]
        assert "invocations" not in run
        assert all("provenance" not in r["properties"] for r in run["results"])

    def test_provenance_and_metrics_embedded(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        report = engine.analyze(VULN_PICKLE, patch=False)
        log = to_sarif(report, metrics=metrics)
        run = log["runs"][0]
        result = run["results"][0]
        prov = result["properties"]["provenance"]
        assert prov["rule_id"] == result["ruleId"]
        assert prov["guards"]
        invocation = run["invocations"][0]
        assert invocation["executionSuccessful"] is True
        snapshot = invocation["properties"]["metrics"]
        assert snapshot["counters"]["findings"] >= 1
        json.dumps(log)  # fully serializable

    def test_parse_failed_notification_still_present(self):
        metrics = ScanMetrics()
        report = AnalysisReport(
            tool="patchitpy", source="x = (", findings=[], parse_failed=True
        )
        metrics.count("findings", 0)
        log = to_sarif(report, metrics=metrics)
        invocation = log["runs"][0]["invocations"][0]
        assert invocation["toolExecutionNotifications"]
        assert "metrics" in invocation["properties"]


class TestHtml:
    def test_report_includes_provenance_details(self, tree):
        tracer = TraceRecorder()
        report = ProjectScanner(trace=tracer).scan(tree)
        document = render_html_report(report)
        assert "provenance" in document
        assert "nosec" in document

    def test_report_includes_rule_health(self, tree):
        metrics = ScanMetrics()
        scanner = ProjectScanner(metrics=metrics, slow_rule_budget_ms=0.0000001)
        report = scanner.scan(tree)
        document = render_html_report(report)
        assert "Rule health" in document


class TestCli:
    def test_explain_prints_provenance(self, tmp_path, capsys):
        target = tmp_path / "app.py"
        target.write_text(VULN_YAML)
        code = main([str(target), "--explain"])
        out = capsys.readouterr().out
        assert code == 1
        assert "fired" in out
        assert "[pass]" in out
        assert "safe_load" in out

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "app.py"
        target.write_text(VULN_PICKLE)
        trace_file = tmp_path / "trace.jsonl"
        code = main([str(target), "--trace", str(trace_file)])
        assert code == 1
        assert "trace written" in capsys.readouterr().out
        events = [json.loads(line) for line in trace_file.read_text().splitlines()]
        assert any(e["kind"] == "rule" for e in events)

    def test_directory_trace_explain_and_budget(self, tree, capsys):
        trace_file = tree / "trace.jsonl"
        code = main(
            [
                str(tree),
                "--no-cache",
                "--explain",
                "--trace",
                str(trace_file),
                "--stats",
                "--slow-rule-budget-ms",
                "0.0000001",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "fired" in out
        assert "rule health" in out
        assert trace_file.exists()
        events = [json.loads(line) for line in trace_file.read_text().splitlines()]
        assert any(e["kind"] == "scan" for e in events)
        assert any(e["kind"] == "file" for e in events)

    def test_zero_budget_disables_watchdog(self, tree, capsys):
        code = main([str(tree), "--no-cache", "--stats", "--slow-rule-budget-ms", "0"])
        out = capsys.readouterr().out
        assert code == 1
        assert "rule health" not in out

    def test_sarif_includes_provenance_and_metrics(self, tmp_path, capsys):
        target = tmp_path / "app.py"
        target.write_text(VULN_PICKLE)
        code = main([str(target), "--format", "sarif", "--stats"])
        out = capsys.readouterr().out
        assert code == 1
        log = json.loads(out[: out.rindex("}") + 1])
        result = log["runs"][0]["results"][0]
        assert "provenance" in result["properties"]
        assert "invocations" in log["runs"][0]


class TestDedupe:
    @staticmethod
    def _finding(cwe, start, end, rule="R"):
        return Finding(
            rule_id=rule,
            cwe_id=cwe,
            message="m",
            span=Span(start, end),
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        )

    @staticmethod
    def _reference(findings):
        # the pre-optimization quadratic implementation, kept as the oracle
        kept = []
        for finding in findings:
            duplicate = any(
                other.cwe_id == finding.cwe_id and other.span.overlaps(finding.span)
                for other in kept
            )
            if not duplicate:
                kept.append(finding)
        return kept

    def test_equivalent_to_quadratic_reference(self):
        import itertools

        cwes = ["CWE-1", "CWE-2"]
        spans = [(0, 4), (2, 6), (4, 4), (4, 8), (5, 9), (9, 12)]
        findings = sorted(
            (
                self._finding(cwe, start, end, rule=f"R{i}")
                for i, ((start, end), cwe) in enumerate(
                    itertools.product(spans, cwes)
                )
            ),
            key=lambda f: (f.span.start, f.span.end, f.rule_id),
        )
        assert _dedupe_same_cwe_overlaps(findings) == self._reference(findings)

    def test_zero_length_spans_do_not_mask_overlaps(self):
        # kept [5,10) then zero-length [10,10): a later [9,11) overlaps the
        # *first* span — pruning must not have discarded it
        findings = [
            self._finding("CWE-1", 5, 10, "A"),
            self._finding("CWE-1", 10, 10, "B"),
            self._finding("CWE-1", 10, 11, "C"),
        ]
        assert _dedupe_same_cwe_overlaps(findings) == self._reference(findings)

    def test_run_rules_still_dedupes(self):
        findings = run_rules(PatchitPy().rules, VULN_PICKLE + VULN_MD5)
        spans_by_cwe = {}
        for finding in findings:
            for other in spans_by_cwe.get(finding.cwe_id, []):
                assert not other.overlaps(finding.span)
            spans_by_cwe.setdefault(finding.cwe_id, []).append(finding.span)


class TestHotPathLint:
    def test_lint_script_passes(self):
        root = Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" / "check_hot_path_isolation.py"), str(root)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
