"""Tests for the simulated LLM baselines."""

import dataclasses

import pytest

from repro.baselines.llm import (
    CHATGPT_4O,
    CLAUDE_37,
    GEMINI_20,
    SimulatedLLM,
    make_chatgpt,
    make_claude_llm,
    make_gemini,
)
from repro.baselines.llm.rewrites import (
    add_logging_completion,
    add_validation_guard,
    wrap_body_in_try_except,
)
from repro.metrics.complexity import cyclomatic_complexity


class TestDetection:
    def test_deterministic(self, flat_samples):
        a = make_chatgpt()
        b = make_chatgpt()
        for sample in flat_samples[:40]:
            assert a.is_vulnerable(sample) == b.is_vulnerable(sample)

    def test_seed_changes_verdicts(self, flat_samples):
        a = make_gemini(seed=1)
        b = make_gemini(seed=2)
        differing = sum(
            a.is_vulnerable(s) != b.is_vulnerable(s) for s in flat_samples[:100]
        )
        assert differing > 0

    def test_suspicion_orders_risk(self):
        tool = make_chatgpt()
        risky = "import pickle\nos.system(cmd)\npickle.loads(request.data)\n"
        bland = "def add(a, b):\n    return a + b\n"
        assert tool.suspicion_score(risky) > tool.suspicion_score(bland)

    def test_mitigations_lower_score(self):
        tool = make_claude_llm()
        raw = 'cur.execute(f"SELECT {x}")\npassword = load()\n'
        fixed = 'cur.execute("SELECT ?", (x,))\npassword = os.environ["P"]\n'
        assert tool.suspicion_score(raw) > tool.suspicion_score(fixed)

    def test_recall_high_precision_lower(self, flat_samples, engine):
        # the Table II LLM signature
        tool = make_claude_llm()
        vuln = [s for s in flat_samples if s.is_vulnerable]
        safe = [s for s in flat_samples if not s.is_vulnerable]
        recall = sum(tool.is_vulnerable(s) for s in vuln) / len(vuln)
        fp_rate = sum(tool.is_vulnerable(s) for s in safe) / len(safe)
        assert recall >= 0.85
        assert fp_rate >= 0.30  # over-flagging of safe security-themed code


class TestPatching:
    def test_no_patch_when_not_flagged(self, flat_samples):
        tool = make_chatgpt()
        clean = next(s for s in flat_samples if not tool.is_vulnerable(s))
        assert tool.patch(clean) is None

    def test_patch_returns_text_when_flagged(self, flat_samples):
        tool = make_claude_llm()
        flagged = next(s for s in flat_samples if tool.is_vulnerable(s))
        patched = tool.patch(flagged)
        assert isinstance(patched, str) and patched

    def test_patch_deterministic(self, flat_samples):
        tool = make_gemini()
        flagged = next(s for s in flat_samples if tool.is_vulnerable(s))
        assert tool.patch(flagged) == tool.patch(flagged)

    def test_complexity_inflation_ordering(self, flat_samples):
        # Fig. 3: claude-3.7 > gemini > chatgpt > generated
        subset = flat_samples[:120]
        baseline = sum(cyclomatic_complexity(s.source) for s in subset) / len(subset)
        means = {}
        for tool in (make_chatgpt(), make_claude_llm(), make_gemini()):
            total = 0.0
            for sample in subset:
                patched = tool.patch(sample)
                total += cyclomatic_complexity(patched if patched else sample.source)
            means[tool.name] = total / len(subset)
        assert means["claude-3.7"] > means["chatgpt-4o"] > baseline
        assert means["gemini-2.0"] > baseline


class TestProfiles:
    def test_rule_knowledge_subsets(self):
        chatgpt = make_chatgpt()
        full = 85
        known = len(chatgpt._engine.rules)
        assert 0 < known < full

    def test_profiles_distinct(self):
        assert CHATGPT_4O.threshold != CLAUDE_37.threshold
        assert CLAUDE_37.try_except_rate > GEMINI_20.try_except_rate

    def test_custom_profile(self):
        profile = dataclasses.replace(CHATGPT_4O, name="custom", threshold=99.0)
        tool = SimulatedLLM(profile)
        assert tool.name == "custom"


FUNC = '''def process(data, limit):
    total = data + limit
    return total
'''


class TestRewrites:
    def test_try_except_wrap(self):
        out = wrap_body_in_try_except(FUNC)
        assert "try:" in out
        assert "except Exception as exc:" in out
        assert cyclomatic_complexity(out) > cyclomatic_complexity(FUNC)

    def test_try_except_compiles(self):
        import ast

        ast.parse(wrap_body_in_try_except(FUNC))

    def test_validation_guard(self):
        import random

        out = add_validation_guard(FUNC, random.Random(1))
        assert "raise ValueError" in out
        import ast

        ast.parse(out)

    def test_validation_guard_respects_docstring(self):
        import ast
        import random

        source = 'def f(x):\n    """Doc."""\n    return x\n'
        out = add_validation_guard(source, random.Random(1))
        tree = ast.parse(out)
        assert ast.get_docstring(tree.body[0]) == "Doc."

    def test_logging_completion_appends_helper(self):
        out = add_logging_completion(FUNC)
        assert "_log_status" in out

    def test_rewrites_tolerate_incomplete_code(self):
        snippet = "```python\ndef f(x):\n    return x\n```"
        wrap_body_in_try_except(snippet)
        import random

        add_validation_guard(snippet, random.Random(0))

    def test_no_function_no_change(self):
        assert wrap_body_in_try_except("x = 1\n") == "x = 1\n"
