"""Corpus integrity tests: prompts, scenarios, and the rule/oracle contract."""

import random

import pytest

from repro.corpus import SCENARIOS, load_prompts, prompt_token_stats, prompts_by_scenario
from repro.corpus.prompts import get_prompt
from repro.cwe.top25 import CWE_TOP_25_2021
from repro.exceptions import CorpusError
from repro.types import PromptSource


class TestPromptCorpus:
    def test_203_prompts(self, prompts):
        assert len(prompts) == 203

    def test_split_121_82(self):
        assert len(load_prompts(PromptSource.SECURITYEVAL)) == 121
        assert len(load_prompts(PromptSource.LLMSECEVAL)) == 82

    def test_unique_ids(self, prompts):
        ids = [p.prompt_id for p in prompts]
        assert len(set(ids)) == len(ids)

    def test_every_prompt_has_known_scenario(self, prompts):
        for prompt in prompts:
            assert prompt.scenario_key in SCENARIOS

    def test_every_scenario_has_a_prompt(self):
        grouped = prompts_by_scenario()
        assert set(grouped) == set(SCENARIOS.keys())

    def test_prompt_cwes_match_scenario(self, prompts):
        for prompt in prompts:
            assert prompt.cwe_ids == SCENARIOS.get(prompt.scenario_key).cwe_ids

    def test_get_prompt(self):
        assert get_prompt("SE-001").source is PromptSource.SECURITYEVAL
        with pytest.raises(CorpusError):
            get_prompt("SE-999")

    def test_llmseceval_top25_derived(self):
        top25 = set(CWE_TOP_25_2021)
        exempt = {"flask_cookie_flags", "temp_file_usage", "flask_template_ssti"}
        for prompt in load_prompts(PromptSource.LLMSECEVAL):
            if prompt.scenario_key in exempt:
                continue
            assert top25 & set(prompt.cwe_ids), prompt.prompt_id


class TestTokenStatistics:
    """§III-A: mean ≈ 21, median 15, min 3, max 63, 75 % below 35."""

    def test_mean(self):
        stats = prompt_token_stats()
        assert 19.0 <= stats["mean"] <= 23.0

    def test_median(self):
        assert 13 <= prompt_token_stats()["median"] <= 17

    def test_min_max(self):
        stats = prompt_token_stats()
        assert stats["min"] == 3
        assert stats["max"] == 63

    def test_share_below_35(self):
        assert prompt_token_stats()["share_below_35"] >= 0.75


class TestScenarioCatalog:
    def test_63_distinct_cwes(self):
        # §III-B: prompts triggered code vulnerable to 63 distinct CWEs
        assert len(SCENARIOS.cwe_union()) == 63

    def test_every_scenario_has_both_pools(self):
        for scenario in SCENARIOS.all():
            assert scenario.vulnerable and scenario.safe
            assert scenario.secure_reference.strip()

    def test_secure_references_parse(self):
        import ast

        for scenario in SCENARIOS.all():
            ast.parse(scenario.secure_reference)

    def test_secure_references_clean(self, engine):
        for scenario in SCENARIOS.all():
            findings = engine.detect(scenario.secure_reference)
            assert findings == [], (scenario.key, [f.rule_id for f in findings])

    def test_variant_lookup(self):
        scenario = SCENARIOS.get("sql_user_lookup")
        assert scenario.variant("fstring_query").is_vulnerable
        with pytest.raises(CorpusError):
            scenario.variant("nope")

    def test_unknown_scenario_raises(self):
        with pytest.raises(CorpusError):
            SCENARIOS.get("not-a-scenario")

    def test_placeholders_are_known(self):
        allowed = {"fn", "v", "arg", "tbl"}
        for scenario in SCENARIOS.all():
            for variant in scenario.all_variants():
                assert set(variant.placeholders()) <= allowed, (scenario.key, variant.key)


class TestRuleContract:
    """The central consistency contract between corpus and engine:

    - detectable vulnerable variants must trigger the rules;
    - evasive variants must not;
    - safe variants must be clean unless marked ``false_alarm``.
    """

    @pytest.mark.parametrize("style_name", ["copilot", "claude", "deepseek"])
    def test_variant_detection_contract(self, engine, style_name):
        from repro.generators.style import CLAUDE_STYLE, COPILOT_STYLE, DEEPSEEK_STYLE, render_variant

        style = {"copilot": COPILOT_STYLE, "claude": CLAUDE_STYLE, "deepseek": DEEPSEEK_STYLE}[style_name]
        for scenario in SCENARIOS.all():
            for variant in scenario.all_variants():
                for trial in range(3):
                    rng = random.Random(f"{scenario.key}:{variant.key}:{style_name}:{trial}")
                    code, _ = render_variant(variant, style, rng)
                    detected = engine.is_vulnerable(code)
                    expected = (variant.is_vulnerable and variant.detectable) or variant.false_alarm
                    assert detected == expected, (scenario.key, variant.key, style_name, trial)


class TestOracleContract:
    """The oracle must agree with variant labels and release safe code."""

    def test_oracle_labels(self):
        from repro.evaluation.oracle import is_cwe_present
        from repro.generators.style import COPILOT_STYLE, render_variant

        for scenario in SCENARIOS.all():
            for variant in scenario.all_variants():
                rng = random.Random(f"oracle:{scenario.key}:{variant.key}")
                code, _ = render_variant(variant, COPILOT_STYLE, rng)
                if variant.is_vulnerable:
                    for cwe in variant.cwe_ids:
                        assert is_cwe_present(code, cwe), (scenario.key, variant.key, cwe)
                else:
                    for cwe in scenario.cwe_ids:
                        assert not is_cwe_present(code, cwe), (scenario.key, variant.key, cwe)

    def test_oracle_releases_patched_detectable_variants(self, engine):
        from repro.evaluation.oracle import still_vulnerable
        from repro.generators.style import CLAUDE_STYLE, render_variant

        releasable = 0
        total = 0
        for scenario in SCENARIOS.all():
            for variant in scenario.vulnerable:
                if not variant.detectable:
                    continue
                rng = random.Random(f"release:{scenario.key}:{variant.key}")
                code, _ = render_variant(variant, CLAUDE_STYLE, rng)
                patched = engine.patch(code).patched
                total += 1
                if not still_vulnerable(patched, variant.cwe_ids):
                    releasable += 1
        # most detectable variants are fully repairable (Table III ceiling)
        assert releasable / total >= 0.70


class TestInventory:
    def test_render_contains_all_scenarios(self):
        from repro.corpus.inventory import render_corpus_markdown

        text = render_corpus_markdown()
        for scenario in SCENARIOS.all():
            assert f"`{scenario.key}`" in text

    def test_render_contains_stats(self):
        from repro.corpus.inventory import render_corpus_markdown

        text = render_corpus_markdown()
        assert "203 NL prompts" in text
        assert "63 distinct CWEs" in text

    def test_write_roundtrip(self, tmp_path):
        from repro.corpus.inventory import write_corpus_markdown

        path = tmp_path / "corpus.md"
        text = write_corpus_markdown(str(path))
        assert path.read_text() == text
