"""Tests for the single-pass candidate index (repro.core.candidates).

The load-bearing property is at the bottom: over the full bundled corpus
and the complete default ruleset, detection with the index enabled is
byte-identical to detection without it.  Everything above pins the
pieces that property rests on — automaton correctness against brute
force, scanner/automaton agreement, case folding, the always-run bucket,
pickling, and every rule being reachable through the index.
"""

import pickle
import random
import re

import pytest

from repro.core.candidates import AhoCorasick, RuleIndex
from repro.core.engine import PatchitPy
from repro.core.matching import run_rules
from repro.core.rules import RuleSet, default_ruleset, extended_ruleset
from repro.core.rules.base import rule
from repro.observability import ScanMetrics, TraceRecorder


def _brute_force_present(literals, text):
    return {i for i, literal in enumerate(literals) if literal in text}


class TestAhoCorasick:
    def test_simple_presence(self):
        ac = AhoCorasick(["abc", "bcd", "zz"])
        assert ac.present("xabcdx") == {0, 1}
        assert ac.present("zz") == {2}
        assert ac.present("nothing") == set()

    def test_overlapping_and_nested_literals(self):
        # "bc" ends inside "abc"; "abcd" contains both — all must report
        ac = AhoCorasick(["abcd", "abc", "bc"])
        assert ac.present("abcd") == {0, 1, 2}
        assert ac.present("xbc") == {2}

    def test_iter_matches_reports_every_occurrence(self):
        ac = AhoCorasick(["ab", "b"])
        matches = list(ac.iter_matches("abab"))
        assert (2, 0) in matches and (4, 0) in matches  # "ab" twice
        assert (2, 1) in matches and (4, 1) in matches  # "b" twice

    def test_empty_literal_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick(["ok", ""])

    def test_no_literals(self):
        ac = AhoCorasick([])
        assert ac.present("anything") == set()
        assert len(ac) == 0

    def test_brute_force_equivalence_on_random_inputs(self):
        rng = random.Random(1337)
        alphabet = "abcx"
        for _ in range(150):
            literals = list(
                {
                    "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 6)))
                    for _ in range(rng.randrange(1, 8))
                }
            )
            ac = AhoCorasick(literals)
            for _ in range(10):
                text = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 40)))
                assert ac.present(text) == _brute_force_present(literals, text), (
                    literals,
                    text,
                )

    def test_pickle_round_trip(self):
        ac = AhoCorasick(["pickle.loads(", "yaml.load(", "eval("])
        clone = pickle.loads(pickle.dumps(ac))
        probe = "data = yaml.load(eval(x))"
        assert clone.present(probe) == ac.present(probe) == {1, 2}


class TestScannerMatchesAutomaton:
    """lookup() and lookup(reference=True) must partition identically."""

    @pytest.mark.parametrize("ruleset_factory", [default_ruleset, extended_ruleset])
    def test_on_real_sources(self, ruleset_factory, flat_samples):
        index = RuleIndex(list(ruleset_factory()))
        for sample in flat_samples[:150]:
            fast = index.lookup(sample.source)
            reference = index.lookup(sample.source, reference=True)
            assert [r.rule_id for r in fast.candidates] == [
                r.rule_id for r in reference.candidates
            ]
            assert [r.rule_id for r in fast.skipped] == [
                r.rule_id for r in reference.skipped
            ]

    def test_on_random_texts(self):
        index = RuleIndex(list(default_ruleset()))
        rng = random.Random(99)
        fragments = [
            "pickle.loads(", "yaml.load(", "eval(", "return ", "password",
            "subprocess", "shell=True", "os.system(", "x = 1\n", "# comment\n",
        ]
        for _ in range(100):
            text = "".join(rng.choice(fragments) for _ in range(rng.randrange(0, 30)))
            fast = index.lookup(text)
            reference = index.lookup(text, reference=True)
            assert [r.rule_id for r in fast.candidates] == [
                r.rule_id for r in reference.candidates
            ]


class TestRuleIndex:
    def test_partition_is_total_and_ordered(self, flat_samples):
        rules = list(default_ruleset())
        index = RuleIndex(rules)
        lookup = index.lookup(flat_samples[0].source)
        assert len(lookup.candidates) + len(lookup.skipped) == len(rules)
        # candidates preserve catalog order
        order = {r.rule_id: i for i, r in enumerate(rules)}
        positions = [order[r.rule_id] for r in lookup.candidates]
        assert positions == sorted(positions)

    def test_every_default_rule_reachable_through_index(self):
        """Parametrized over the full catalog: no rule can be orphaned."""
        rules = list(default_ruleset())
        index = RuleIndex(rules)
        by_rule = {r: (em, fm, groups) for r, em, fm, groups in index._entries}

        def _exact_bits(mask):
            return [
                index.exact_literals[i]
                for i in range(len(index.exact_literals))
                if mask >> i & 1
            ]

        def _folded_bits(mask):
            return [
                index.folded_literals[i].upper()  # prove the fold, not the literal
                for i in range(len(index.folded_literals))
                if mask >> i & 1
            ]

        for target in rules:
            exact_mask, folded_mask, groups = by_rule[target]
            # synthesize a source containing exactly the rule's literals:
            # every conjunction literal, plus ONE member per OR-group
            parts = _exact_bits(exact_mask) + _folded_bits(folded_mask)
            for group_exact, group_folded in groups:
                members = _exact_bits(group_exact) or _folded_bits(group_folded)
                parts.append(members[0])
            source = "\n".join(parts)
            candidates = index.lookup(source).candidates
            assert target in candidates, target.rule_id

    def test_rules_without_literals_land_in_always_run_bucket(self):
        no_literal = rule("T-NOLIT", "CWE-000", "free pattern", r"\w+\d\w+x")
        with_literal = rule("T-LIT", "CWE-000", "literal pattern", r"dangerzone\(")
        index = RuleIndex([no_literal, with_literal])
        assert index.always_run == (no_literal,)
        # an empty source can only ever produce always-run candidates
        lookup = index.lookup("")
        assert lookup.candidates == [no_literal]
        assert lookup.skipped == [with_literal]

    def test_always_run_bucket_on_default_catalog(self):
        index = RuleIndex(list(default_ruleset()))
        described = index.describe()
        assert described["always_run"] == len(index.lookup("").candidates)
        assert described["always_run"] < described["rules"]

    def test_multi_literal_conjunction_skips_partial_sources(self):
        conjunction = rule(
            "T-CONJ", "CWE-000", "two literals", r"alphaone\(.*betatwo\("
        )
        index = RuleIndex([conjunction])
        assert index.lookup("alphaone( betatwo(").candidates == [conjunction]
        # one literal alone is not enough — the single-literal prefilter
        # (longest run only) could not have skipped this source
        assert index.lookup("alphaone( only").skipped == [conjunction]
        assert index.lookup("only betatwo(").skipped == [conjunction]

    def test_ignorecase_rule_found_in_any_casing(self):
        insensitive = rule(
            "T-ICASE", "CWE-000", "folded", r"select\s+secret", flags=re.IGNORECASE
        )
        index = RuleIndex([insensitive])
        assert index.folded_literals  # the fold actually engaged
        for probe in ("select secret", "SELECT SECRET", "SeLeCt SeCrEt"):
            assert index.lookup(probe).candidates == [insensitive], probe
        assert index.lookup("no match here").skipped == [insensitive]

    def test_non_ascii_source_promotes_folded_rules(self):
        insensitive = rule(
            "T-ICASE", "CWE-000", "folded", r"select\s+secret", flags=re.IGNORECASE
        )
        index = RuleIndex([insensitive])
        # Unicode one-to-many case mappings make the fold unverifiable:
        # the rule must run rather than risk a wrong skip.
        assert index.lookup("print('İstanbul')").candidates == [insensitive]

    def test_pickle_round_trip_preserves_lookup(self, flat_samples):
        index = RuleIndex(list(default_ruleset()))
        clone = pickle.loads(pickle.dumps(index))
        for sample in flat_samples[:20]:
            assert [r.rule_id for r in clone.lookup(sample.source).candidates] == [
                r.rule_id for r in index.lookup(sample.source).candidates
            ]


class TestRuleSetIntegration:
    def test_index_cached_until_rules_change(self):
        rules = RuleSet([rule("T-A", "CWE-000", "a", r"alphaone\(")])
        first = rules.candidate_index()
        assert rules.candidate_index() is first
        rules.add(rule("T-B", "CWE-000", "b", r"betatwo\("))
        rebuilt = rules.candidate_index()
        assert rebuilt is not first
        assert len(rebuilt) == 2
        assert rebuilt.lookup("betatwo(").candidates

    def test_ruleset_pickles_with_built_index(self):
        rules = default_ruleset()
        rules.candidate_index()
        clone = pickle.loads(pickle.dumps(rules))
        probe = "import pickle\npickle.loads(data)\n"
        assert [r.rule_id for r in clone.candidate_index().lookup(probe).candidates] == [
            r.rule_id for r in rules.candidate_index().lookup(probe).candidates
        ]

    def test_engine_pickles_with_built_index(self):
        engine = PatchitPy()
        engine.warmup()  # builds the index, like the daemon and workers do
        clone = pickle.loads(pickle.dumps(engine))
        probe = "eval(input())\n"
        assert [f.to_dict() for f in clone.detect(probe)] == [
            f.to_dict() for f in engine.detect(probe)
        ]

    def test_plain_rule_lists_have_no_index(self):
        # run_rules over a bare list silently falls back to per-rule checks
        rules = list(default_ruleset())
        probe = "eval(input())\n"
        assert [f.to_dict() for f in run_rules(rules, probe)] == [
            f.to_dict() for f in run_rules(default_ruleset(), probe)
        ]


class TestObservabilityIntegration:
    def test_metrics_gain_index_counters(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        engine.detect("import pickle\npickle.loads(x)\n")
        counters = metrics.counters
        assert counters["index_candidates"] >= 1
        assert counters["index_skips"] >= 1
        assert counters["index_candidates"] + counters["index_skips"] == len(
            engine.rules
        )

    def test_no_index_counters_on_ablated_engine(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics, use_index=False)
        engine.detect("import pickle\npickle.loads(x)\n")
        assert "index_candidates" not in metrics.counters

    def test_index_skipped_rules_still_accounted_as_prefilter_skips(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        engine.detect("x = 1\n")
        assert {stats.calls for stats in metrics.rules.values()} == {1}
        assert sum(s.prefilter_skips for s in metrics.rules.values()) > 0

    def test_traced_scan_emits_index_lookup_event(self):
        tracer = TraceRecorder()
        engine = PatchitPy(trace=tracer)
        engine.detect("import pickle\npickle.loads(x)\n")
        lookups = [e for e in tracer.events if e.get("kind") == "index-lookup"]
        assert len(lookups) == 1
        assert lookups[0]["candidates"] + lookups[0]["skipped"] == len(engine.rules)

    def test_traced_scan_keeps_one_rule_span_per_rule(self):
        tracer = TraceRecorder()
        engine = PatchitPy(trace=tracer)
        engine.detect("x = 1\n")
        rule_spans = [e for e in tracer.events if e.get("kind") == "rule"]
        assert len(rule_spans) == len(list(engine.rules))
        assert any(e.get("outcome") == "prefilter-skip" for e in rule_spans)


class TestPrerequisiteMemo:
    def test_shared_prerequisite_searched_once_per_scan(self):
        calls = []

        class CountingPattern:
            """Duck-typed re.Pattern standing in as a shared prerequisite."""

            pattern = "flask"
            flags = 0

            def search(self, source):
                calls.append(source)
                return re.search("flask", source)

        shared = CountingPattern()
        rules = RuleSet(
            [
                rule("T-A", "CWE-000", "a", r"alphaone\("),
                rule("T-B", "CWE-000", "b", r"betatwo\("),
            ]
        )
        for item in rules:
            object.__setattr__(item, "prerequisites", (shared,))
        source = "import flask\nalphaone( betatwo(\n"
        run_rules(rules, source)
        assert len(calls) == 1

    def test_failed_prerequisite_still_blocks_every_rule(self):
        gated = rule(
            "T-GATED", "CWE-000", "gated", r"alphaone\(", require_in_file=[r"flask"]
        )
        rules = RuleSet([gated])
        assert run_rules(rules, "alphaone(\n") == []
        assert len(run_rules(rules, "import flask\nalphaone('x')\n")) == 1


class TestEquivalenceProperty:
    """The acceptance property: index on == index off, byte for byte."""

    @pytest.fixture(scope="class")
    def engines(self):
        return PatchitPy(), PatchitPy(use_index=False)

    def test_findings_identical_across_full_corpus(self, flat_samples, engines):
        indexed, naive = engines
        assert len(flat_samples) > 500  # the whole corpus, not a slice
        for sample in flat_samples:
            with_index = [f.to_dict() for f in indexed.detect(sample.source)]
            without = [f.to_dict() for f in naive.detect(sample.source)]
            assert with_index == without, sample.sample_id

    def test_extended_ruleset_equivalence(self, flat_samples):
        indexed = PatchitPy(rules=extended_ruleset())
        naive = PatchitPy(rules=extended_ruleset(), use_index=False)
        for sample in flat_samples[:150]:
            assert [f.to_dict() for f in indexed.detect(sample.source)] == [
                f.to_dict() for f in naive.detect(sample.source)
            ]

    def test_instrumented_paths_equivalent(self, flat_samples):
        indexed = PatchitPy(metrics=ScanMetrics())
        naive = PatchitPy(metrics=ScanMetrics(), use_index=False)
        for sample in flat_samples[:100]:
            assert [f.to_dict() for f in indexed.detect(sample.source)] == [
                f.to_dict() for f in naive.detect(sample.source)
            ]

    def test_traced_path_equivalent(self, flat_samples):
        for sample in flat_samples[:40]:
            indexed = PatchitPy(trace=TraceRecorder())
            naive = PatchitPy(trace=TraceRecorder(), use_index=False)
            assert [f.to_dict() for f in indexed.detect(sample.source)] == [
                f.to_dict() for f in naive.detect(sample.source)
            ]
