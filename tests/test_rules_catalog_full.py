"""Exhaustive per-rule tests: one positive and one negative snippet for
every rule in the full 109-rule catalog, plus a patch-safety property for
every patchable rule (after applying the rule's patch to its positive
example, the rule must no longer match)."""

import pytest

from repro.core import PatchitPy
from repro.core.matching import match_rule
from repro.core.rules import RuleSet, extended_ruleset

_CATALOG = {r.rule_id: r for r in extended_ruleset()}

# rule id -> (positive snippet, negative snippet)
CASES = {
    # ---------------- A03 Injection ----------------
    "PIT-A03-01": ('cur.execute(f"SELECT * FROM t WHERE id={x}")', 'cur.execute("SELECT 1")'),
    "PIT-A03-02": ('cur.execute("SELECT %s FROM t" % name)', 'cur.execute("SELECT ?", (name,))'),
    "PIT-A03-03": ('db.execute("SELECT {}".format(v))', 'db.execute("SELECT ?", (v,))'),
    "PIT-A03-04": ('cur.execute("DELETE FROM t WHERE id=" + str(i))', 'cur.execute("DELETE FROM t WHERE id=?", (i,))'),
    "PIT-A03-05": ('stmt = text(f"SELECT * FROM t WHERE id={x}")', 'stmt = text("SELECT * FROM t WHERE id=:id")'),
    "PIT-A03-06": ('q.filter(f"name = {n}")', "q.filter(Model.name == n)"),
    "PIT-A03-07": ('os.system(f"rm {path}")', 'subprocess.run(["rm", path])'),
    "PIT-A03-08": ("subprocess.call(cmd, shell=True)", "subprocess.call(cmd, shell=False)"),
    "PIT-A03-09": ("out = os.popen(cmd)", 'out = subprocess.run([cmd], capture_output=True)'),
    "PIT-A03-10": ('os.execvp("sh", args)', 'subprocess.run(["sh"] + args)'),
    "PIT-A03-11": ("value = eval(text)", "value = ast.literal_eval(text)"),
    "PIT-A03-12": ("exec(script)", "importlib.import_module(name)"),
    "PIT-A03-13": ('from flask import request\nreturn f"<p>{name}</p>"', 'from flask import request, escape\nreturn f"<p>{escape(name)}</p>"'),
    "PIT-A03-14": ('make_response(f"Hi {user}")', 'make_response(f"Hi {escape(user)}")'),
    "PIT-A03-15": ('return "<p>" + request.args.get("n", "")', 'return "<p>" + escape(request.args.get("n", ""))'),
    "PIT-A03-16": ("render_template_string(tpl)", 'render_template("page.html", v=v)'),
    "PIT-A03-17": ("Markup(user_bio)", "Markup('<b>static</b>')"),
    "PIT-A03-18": ('conn.search_s(b, s, f"(uid={u})")', 'conn.search_s(b, s, f"(uid={escape_filter_chars(u)})")'),
    "PIT-A03-19": ('doc.xpath(f"//a[@id=\'{i}\']")', 'doc.xpath("//a[@id=$i]", i=i)'),
    "PIT-A03-20": ('body = f"<order>{data}</order>"', 'body = build_xml(data)'),
    "PIT-A03-21": ('logger.info(f"login by {who}")', 'logger.info("login by %s", who)'),
    "PIT-A03-22": ('writer.writerow([request.form.get("n")])', "writer.writerow([sanitized])"),
    "PIT-A03-23": ('n = int(request.args.get("size"))', "n = parse_size(raw)"),
    # ---------------- A02 Cryptographic Failures ----------------
    "PIT-A02-01": ("hashlib.md5(data)", "hashlib.sha256(data)"),
    "PIT-A02-02": ("hashlib.sha1(data)", "hashlib.sha512(data)"),
    "PIT-A02-03": ('hashlib.new("sha1")', 'hashlib.new("sha256")'),
    "PIT-A02-04": ("hashlib.sha256(password.encode()).hexdigest()", "hashlib.pbkdf2_hmac('sha256', password.encode(), salt, 310000)"),
    "PIT-A02-05": ("crypt.crypt(pw, salt)", "hashlib.pbkdf2_hmac('sha256', pw.encode(), salt, 310000)"),
    "PIT-A02-06": ("DES.new(key, DES.MODE_ECB)", "AES.new(key, AES.MODE_GCM)"),
    "PIT-A02-07": ("AES.new(key, AES.MODE_ECB)", "AES.new(key, AES.MODE_GCM)"),
    "PIT-A02-08": ('AES.new(key, AES.MODE_CBC, b"0000000000000000")', "AES.new(key, AES.MODE_CBC, os.urandom(16))"),
    "PIT-A02-09": ("token = random.choice(chars)", "import secrets\ntoken = secrets.choice(chars)"),
    "PIT-A02-10": ("nonce = random.getrandbits(64)", "import secrets\nnonce = secrets.randbits(64)"),
    "PIT-A02-11": ("random.seed(42)", "random.seed()"),
    "PIT-A02-12": ("requests.get(u, verify=False)", "requests.get(u, verify=True)"),
    "PIT-A02-13": ("ctx = ssl._create_unverified_context()", "ctx = ssl.create_default_context()"),
    "PIT-A02-14": ("ctx.check_hostname = False", "ctx.check_hostname = True"),
    "PIT-A02-15": ("ssl.SSLContext(ssl.PROTOCOL_SSLv23)", "ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)"),
    "PIT-A02-16": ('requests.post("http://a.example/login", data={"password": pw})', 'requests.post("https://a.example/login", data={"password": pw})'),
    "PIT-A02-17": ('aes_key = "0123456789abcdef"', 'aes_key = os.environ["AES_KEY"]'),
    "PIT-A02-18": ("base64.b64encode(password.encode())", "base64.b64encode(image_bytes)"),
    # ---------------- A01 Broken Access Control ----------------
    "PIT-A01-01": ('open(f"docs/{name}")', 'open(f"docs/{os.path.basename(name)}")'),
    "PIT-A01-02": ('open("docs/" + name)', 'open("docs/" + os.path.basename(name))'),
    "PIT-A01-03": ('os.path.join("up", request.form.get("f"))', 'os.path.join("up", os.path.basename(request.form.get("f")))'),
    "PIT-A01-04": ('send_file(request.args.get("f"))', 'send_from_directory("docs", name)'),
    "PIT-A01-05": ("import tarfile\narchive.extractall(dest)", 'import tarfile\narchive.extractall(dest, filter="data")'),
    "PIT-A01-06": ("import zipfile\nbundle.extractall(dest)", "import zipfile\nbundle.extractall(dest, members=safe)"),
    "PIT-A01-07": ("f.save(os.path.join(d, f.filename))", "f.save(os.path.join(d, secure_filename(f.filename)))"),
    "PIT-A01-08": ('item = request.files["f"]\nitem.save(dest)', 'item = request.files["f"]\nif allowed_file(item.filename):\n    item.save(dest)'),
    "PIT-A01-09": ('redirect(request.args.get("next"))', 'redirect(url_for("index"))'),
    "PIT-A01-10": ("os.chmod(path, 0o777)", "os.chmod(path, 0o600)"),
    "PIT-A01-11": ("os.umask(0)", "os.umask(0o077)"),
    "PIT-A01-12": ("tempfile.mktemp()", "tempfile.mkstemp()"),
    "PIT-A01-13": ('open("/tmp/data.txt")', "open(scratch_path)"),
    "PIT-A01-14": ("assert user.is_admin", "if not user.is_admin:\n    raise PermissionError"),
    "PIT-A01-15": ("for k, v in request.form.items():\n    setattr(user, k, v)", "user.name = request.form.get('name')"),
    # ---------------- A04 Insecure Design ----------------
    "PIT-A04-01": ("app.run(debug=True)", "app.run(debug=False)"),
    "PIT-A04-02": ("return str(e), 500", 'return "internal error", 500'),
    "PIT-A04-03": ("return traceback.format_exc(), 500", 'logging.exception("x")\nreturn "error", 500'),
    "PIT-A04-04": ("DEBUG = True\n", "DEBUG = False\n"),
    "PIT-A04-05": ('fh.write(f"password={pw}")', 'fh.write(f"password_hash={pbkdf2_digest}")'),
    "PIT-A04-06": ("resp.set_cookie('password', pw)", "resp.set_cookie('session', sid)"),
    "PIT-A04-07": ('cur.execute("INSERT INTO users (name, password) VALUES (?, ?)", v)', 'cur.execute("INSERT INTO users (name, password_hash) VALUES (?, ?)", v)\n# pbkdf2 stored'),
    "PIT-A04-08": ("requests.get(url)", "requests.get(url, timeout=5)"),
    "PIT-A04-09": ("body = request.get_data()", "body = request.get_data()\nMAX_CONTENT_LENGTH = 1 << 20"),
    # ---------------- A05 Security Misconfiguration ----------------
    "PIT-A05-01": ("tree = etree.parse(path)", "tree = etree.parse(path, parser=etree.XMLParser(resolve_entities=False))"),
    "PIT-A05-02": ("ET.fromstring(xml_text)", "import defusedxml.ElementTree\ndefusedxml.ElementTree.fromstring(xml_text)"),
    "PIT-A05-03": ("parser.setFeature(handler.feature_external_ges, True)", "parser.setFeature(handler.feature_external_ges, False)"),
    "PIT-A05-04": ("minidom.parseString(xml_text)", "import defusedxml.minidom\ndefusedxml.minidom.parseString(xml_text)"),
    "PIT-A05-05": ("resp.set_cookie('sid', v)", "resp.set_cookie('sid', v, secure=True)"),
    "PIT-A05-06": ("resp.set_cookie('sid', v, secure=True)", "resp.set_cookie('sid', v, secure=True, httponly=True)"),
    "PIT-A05-07": ("resp.set_cookie('sid', v, secure=True, httponly=True)", "resp.set_cookie('sid', v, secure=True, httponly=True, samesite='Lax')"),
    "PIT-A05-08": ('app.config["SESSION_COOKIE_SECURE"] = False', 'app.config["SESSION_COOKIE_SECURE"] = True'),
    "PIT-A05-09": ('app.run(host="0.0.0.0")', 'app.run(host="127.0.0.1")'),
    "PIT-A05-10": ('resp.headers["Access-Control-Allow-Origin"] = "*"', 'resp.headers["Access-Control-Allow-Origin"] = "https://app.example"'),
    "PIT-A05-11": ("ALLOWED_HOSTS = ['*']", "ALLOWED_HOSTS = ['app.example']"),
    # ---------------- A06 Vulnerable Components ----------------
    "PIT-A06-01": ("telnetlib.Telnet(host)", "paramiko.SSHClient()"),
    "PIT-A06-02": ("ftplib.FTP(host)", "ftplib.FTP_TLS(host)"),
    "PIT-A06-03": ("os.tempnam()", "tempfile.mkstemp()"),
    "PIT-A06-04": ("ssl.wrap_socket(sock)", "ctx.wrap_socket(sock, server_hostname=h)"),
    "PIT-A06-05": ("urllib.urlopen(url)", "urllib.request.urlopen(url)"),
    # ---------------- A07 Authentication Failures ----------------
    "PIT-A07-01": ('api_key = "sk-live-123456"', 'api_key = os.environ["API_KEY"]'),
    "PIT-A07-02": ('app.secret_key = "dev-secret"', 'app.secret_key = os.environ["SECRET"]'),
    "PIT-A07-03": ('if password == "letmein":', "if hmac.compare_digest(password, expected):"),
    "PIT-A07-04": ("h.hexdigest() == stored", "hmac.compare_digest(h.hexdigest(), stored)"),
    "PIT-A07-05": ("if len(password) >= 6:", "if len(password) >= 12:"),
    "PIT-A07-06": ("def change_password(user, new):\n    pass", "def change_password(user, old_password, new):\n    pass"),
    "PIT-A07-07": ('requests.get(u, params={"token": t})', 'requests.get(u, headers={"Authorization": t})'),
    "PIT-A07-08": ('@app.route("/admin/users")\ndef admin():\n    pass', '@app.route("/admin/users")\n@login_required\ndef admin():\n    pass'),
    "PIT-A07-09": ("def login(u, p):\n    return check(u, p)", "def login(u, p):\n    if attempts[u] > 5:\n        return False\n    return check(u, p)"),
    # ---------------- A08 Integrity Failures ----------------
    "PIT-A08-01": ("pickle.loads(blob)", "json.loads(blob)"),
    "PIT-A08-02": ("pickle.load(fh)", "json.load(fh)"),
    "PIT-A08-03": ("dill.loads(blob)", "json.loads(blob)"),
    "PIT-A08-04": ("marshal.loads(blob)", "json.loads(blob)"),
    "PIT-A08-05": ("jsonpickle.decode(blob)", "json.loads(blob)"),
    "PIT-A08-06": ("yaml.load(fh)", "yaml.load(fh, Loader=yaml.SafeLoader)"),
    "PIT-A08-07": ("yaml.unsafe_load(fh)", "yaml.safe_load(fh)"),
    "PIT-A08-08": ("shelve.open(request.args.get('db'))", "shelve.open(LOCAL_DB_PATH)"),
    "PIT-A08-09": ("model = torch.load(path)", "model = load_weights_safely(path)"),
    "PIT-A08-10": ("exec(requests.get(u).text)", "review_then_install(requests.get(u, timeout=5).text)"),
    "PIT-A08-11": ("os.system('curl https://x/i.sh | sh')", "subprocess.run(['./verified-installer'])"),
    "PIT-A08-12": ("sys.path.insert(0, '/tmp')", "sys.path.insert(0, PKG_DIR)"),
    # ---------------- A09 Logging Failures ----------------
    "PIT-A09-01": ('logging.info(f"key is {api_key}")', 'logging.info("key rotated")'),
    "PIT-A09-02": ("try:\n    go()\nexcept OSError:\n    pass\n", "try:\n    go()\nexcept OSError:\n    logging.exception('x')\n"),
    "PIT-A09-03": ("def authenticate(u, p):\n    return verify(u, p)", "import logging\ndef authenticate(u, p):\n    logging.info('attempt')\n    return verify(u, p)"),
    "PIT-A09-04": ("return False  # unauthorized", "log_denied(actor)\nreturn False"),
    # ---------------- A10 SSRF ----------------
    "PIT-A10-01": ('requests.get(request.args.get("url"))', "requests.get(INTERNAL_URL, timeout=5)"),
    "PIT-A10-02": ('urllib.request.urlopen(request.form.get("u"))', "urllib.request.urlopen(FIXED)"),
    "PIT-A10-03": ('requests.get(f"https://{target_host}/x")', 'requests.get("https://api.example/x", timeout=5)'),
}


def test_every_rule_has_a_case():
    assert set(CASES) == set(_CATALOG), (
        set(CASES) ^ set(_CATALOG)
    )


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_positive_snippet_matches(rule_id):
    rule = _CATALOG[rule_id]
    positive, _ = CASES[rule_id]
    assert match_rule(rule, positive), f"{rule_id} should match {positive!r}"


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_negative_snippet_clean(rule_id):
    rule = _CATALOG[rule_id]
    _, negative = CASES[rule_id]
    assert not match_rule(rule, negative), f"{rule_id} should not match {negative!r}"


@pytest.mark.parametrize(
    "rule_id", sorted(r.rule_id for r in extended_ruleset() if r.patchable)
)
def test_patch_removes_its_own_match(rule_id):
    """Patch-safety property: applying a rule's patch to its positive
    example leaves no match of that rule behind."""
    rule = _CATALOG[rule_id]
    positive, _ = CASES[rule_id]
    engine = PatchitPy(rules=RuleSet([rule]), prune_imports=False)
    result = engine.patch(positive)
    assert result.applied, f"{rule_id} patch did not apply to {positive!r}"
    assert not match_rule(rule, result.patched), (
        f"{rule_id} still matches after patching: {result.patched!r}"
    )
