"""Tests for the IDE layer: document model, edits, extension workflow."""

import pytest

from repro.exceptions import DocumentError
from repro.ide import (
    EditBuilder,
    PatchitPyExtension,
    Position,
    Range,
    TextDocument,
    TextEdit,
    WorkspaceEdit,
)

SAMPLE = "line one\nline two\nline three\n"


class TestPosition:
    def test_ordering(self):
        assert Position(0, 5) < Position(1, 0)
        assert Position(1, 2) < Position(1, 3)

    def test_negative_rejected(self):
        with pytest.raises(DocumentError):
            Position(-1, 0)


class TestRange:
    def test_reversed_rejected(self):
        with pytest.raises(DocumentError):
            Range(Position(2, 0), Position(1, 0))

    def test_contains(self):
        r = Range(Position(0, 0), Position(1, 4))
        assert r.contains(Position(0, 7))
        assert not r.contains(Position(2, 0))

    def test_is_empty(self):
        assert Range(Position(1, 1), Position(1, 1)).is_empty


class TestTextDocument:
    def test_line_count(self):
        assert TextDocument(SAMPLE).line_count == 4  # trailing newline → empty last line

    def test_line_text(self):
        doc = TextDocument(SAMPLE)
        assert doc.line_text(1) == "line two"

    def test_offset_roundtrip(self):
        doc = TextDocument(SAMPLE)
        for offset in range(len(SAMPLE) + 1):
            assert doc.offset_at(doc.position_at(offset)) == offset

    def test_offset_at_position(self):
        doc = TextDocument(SAMPLE)
        assert doc.offset_at(Position(1, 0)) == 9

    def test_position_beyond_line_rejected(self):
        doc = TextDocument(SAMPLE)
        with pytest.raises(DocumentError):
            doc.offset_at(Position(0, 99))

    def test_bad_line_rejected(self):
        with pytest.raises(DocumentError):
            TextDocument(SAMPLE).line_text(99)

    def test_get_text_range(self):
        doc = TextDocument(SAMPLE)
        r = Range(Position(0, 5), Position(1, 4))
        assert doc.get_text(r) == "one\nline"

    def test_replace_updates_version(self):
        doc = TextDocument(SAMPLE)
        version = doc.version
        doc.replace(Range(Position(0, 0), Position(0, 4)), "LINE")
        assert doc.version == version + 1
        assert doc.line_text(0) == "LINE one"

    def test_range_of_lines(self):
        doc = TextDocument(SAMPLE)
        r = doc.range_of_lines(0, 1)
        assert doc.get_text(r) == "line one\nline two"


class TestEditBuilder:
    def test_batch_apply_reverse_order(self):
        doc = TextDocument("abc def ghi")
        builder = EditBuilder(doc)
        builder.replace(Range(doc.position_at(0), doc.position_at(3)), "XXX")
        builder.replace(Range(doc.position_at(8), doc.position_at(11)), "YYY")
        assert builder.apply() == 2
        assert doc.get_text() == "XXX def YYY"

    def test_insert(self):
        doc = TextDocument("ab")
        builder = EditBuilder(doc)
        builder.insert(Position(0, 1), "X")
        builder.apply()
        assert doc.get_text() == "aXb"

    def test_delete(self):
        doc = TextDocument("abcd")
        builder = EditBuilder(doc)
        builder.delete(Range(Position(0, 1), Position(0, 3)))
        builder.apply()
        assert doc.get_text() == "ad"

    def test_overlap_rejected_atomically(self):
        doc = TextDocument("abcdef")
        builder = EditBuilder(doc)
        builder.replace(Range(Position(0, 0), Position(0, 4)), "X")
        builder.replace(Range(Position(0, 2), Position(0, 6)), "Y")
        with pytest.raises(DocumentError):
            builder.apply()
        assert doc.get_text() == "abcdef"  # nothing applied

    def test_static_constructors(self):
        edit = TextEdit.insert(Position(0, 0), "x")
        assert edit.range.is_empty
        assert TextEdit.delete(Range(Position(0, 0), Position(0, 1))).new_text == ""


class TestWorkspaceEdit:
    def test_multi_document(self):
        doc_a = TextDocument("aaa", uri="file:///a.py")
        doc_b = TextDocument("bbb", uri="file:///b.py")
        ws = WorkspaceEdit()
        ws.replace(doc_a, Range(Position(0, 0), Position(0, 3)), "AAA")
        ws.insert(doc_b, Position(0, 0), "B")
        assert ws.apply() == 2
        assert doc_a.get_text() == "AAA"
        assert doc_b.get_text() == "Bbbb"


VULN_DOC = '''import pickle

def restore(blob):
    return pickle.loads(blob)
'''


class TestExtension:
    def test_full_document_flow(self):
        doc = TextDocument(VULN_DOC)
        session = PatchitPyExtension().assess_selection(doc)
        assert session.findings
        assert session.applied_edit_count >= 1
        assert "json.loads(blob)" in doc.get_text()
        assert "import json" in doc.get_text()
        assert session.imports_added == ["import json"]

    def test_clean_document_popup(self):
        doc = TextDocument("x = 1\n")
        session = PatchitPyExtension().assess_selection(doc)
        assert session.findings == []
        assert len(session.popups) == 1
        assert "No vulnerable patterns" in session.popups[0].body

    def test_selection_scoped(self):
        combined = VULN_DOC + "\nimport hashlib\nh = hashlib.md5(b'x')\n"
        doc = TextDocument(combined)
        selection = doc.range_of_lines(0, 3)
        session = PatchitPyExtension().assess_selection(doc, selection)
        assert {f.cwe_id for f in session.findings} == {"CWE-502"}
        # md5 outside the selection untouched
        assert "hashlib.md5" in doc.get_text()

    def test_decline_all(self):
        doc = TextDocument(VULN_DOC)
        extension = PatchitPyExtension(popup_handler=lambda popup: False)
        session = extension.assess_selection(doc)
        assert session.findings and not session.accepted
        assert doc.get_text() == VULN_DOC

    def test_popup_per_finding(self):
        doc = TextDocument(VULN_DOC)
        session = PatchitPyExtension().assess_selection(doc)
        assert len(session.popups) == len(session.findings)
