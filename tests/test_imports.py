"""Tests for the import manager (insertion + pruning)."""

from repro.core.imports import ImportManager, insert_imports, prune_unused_imports


class TestHasImport:
    def test_plain_import_detected(self):
        manager = ImportManager("import os\n")
        assert manager.has_import("import os")

    def test_from_import_subset(self):
        manager = ImportManager("from flask import Flask, request\n")
        assert manager.has_import("from flask import Flask")
        assert not manager.has_import("from flask import escape")

    def test_missing_module(self):
        manager = ImportManager("import os\n")
        assert not manager.has_import("import json")

    def test_aliased_import(self):
        manager = ImportManager("import numpy as np\n")
        assert manager.has_import("import numpy")


class TestInsertion:
    def test_after_existing_imports(self):
        source = "import os\nimport sys\n\nx = 1\n"
        out = insert_imports(source, ["import json"])
        lines = out.splitlines()
        assert lines[:3] == ["import os", "import sys", "import json"]

    def test_after_docstring_when_no_imports(self):
        source = '"""Module doc."""\n\nx = 1\n'
        out = insert_imports(source, ["import json"])
        assert out.splitlines()[1] == "import json" or out.splitlines()[2] == "import json"
        assert out.index('"""') < out.index("import json")

    def test_at_top_when_bare(self):
        out = insert_imports("x = 1\n", ["import json"])
        assert out.startswith("import json\n")

    def test_no_duplicates(self):
        source = "import json\n\nx = 1\n"
        out = insert_imports(source, ["import json"])
        assert out.count("import json") == 1

    def test_multiple_statements_ordered(self):
        out = insert_imports("x = 1\n", ["import a", "import b"])
        assert out.index("import a") < out.index("import b")

    def test_indented_import_not_top_level(self):
        source = "def f():\n    import os\n    return os\n"
        manager = ImportManager(source)
        # insertion offset must be 0 (no *top-level* import block)
        assert manager.insertion_offset() == 0

    def test_missing_deduplicates_requests(self):
        manager = ImportManager("x = 1\n")
        assert manager.missing(["import os", "import os", "import re"]) == [
            "import os",
            "import re",
        ]


class TestPruning:
    def test_dead_plain_import_removed(self):
        source = "import pickle\nimport json\n\ndata = json.loads(x)\n"
        out = prune_unused_imports(source)
        assert "import pickle" not in out
        assert "import json" in out

    def test_from_import_kept_if_any_name_used(self):
        source = "from flask import Flask, escape\n\napp = Flask(__name__)\n"
        assert "escape" in prune_unused_imports(source)

    def test_from_import_removed_if_unused(self):
        source = "from flask import escape\n\nprint('hi')\n"
        assert "escape" not in prune_unused_imports(source)

    def test_dotted_module_binding(self):
        source = "import urllib.request\n\nurllib.request.urlopen(u)\n"
        assert "import urllib.request" in prune_unused_imports(source)

    def test_aliased_binding(self):
        source = "import numpy as np\n\nprint(np.zeros(3))\n"
        assert "import numpy as np" in prune_unused_imports(source)

    def test_indented_imports_untouched(self):
        source = "def f():\n    import os\n    return 1\n"
        assert prune_unused_imports(source) == source

    def test_word_boundary_respected(self):
        # "osmium" must not keep "import os" alive
        source = "import os\n\nosmium = 1\nprint(osmium)\n"
        assert "import os\n" not in prune_unused_imports(source)
