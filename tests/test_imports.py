"""Tests for the import manager (insertion + pruning)."""

from repro.core.imports import (
    ImportManager,
    import_bindings,
    insert_imports,
    prune_unused_imports,
)


class TestHasImport:
    def test_plain_import_detected(self):
        manager = ImportManager("import os\n")
        assert manager.has_import("import os")

    def test_from_import_subset(self):
        manager = ImportManager("from flask import Flask, request\n")
        assert manager.has_import("from flask import Flask")
        assert not manager.has_import("from flask import escape")

    def test_missing_module(self):
        manager = ImportManager("import os\n")
        assert not manager.has_import("import json")

    def test_aliased_import(self):
        manager = ImportManager("import numpy as np\n")
        assert manager.has_import("import numpy")

    def test_multi_module_import_records_every_module(self):
        # regression: "import os, pickle" used to record only "os"
        manager = ImportManager("import os, pickle\n")
        assert manager.has_import("import os")
        assert manager.has_import("import pickle")
        assert not manager.has_import("import json")

    def test_multi_module_request_needs_all_modules(self):
        manager = ImportManager("import os\n")
        assert not manager.has_import("import os, pickle")
        assert ImportManager("import os\nimport pickle\n").has_import(
            "import os, pickle"
        )

    def test_no_duplicate_insert_for_multi_module_import(self):
        source = "import os, pickle\n\npickle.loads(x)\n"
        out = insert_imports(source, ["import pickle"])
        assert out == source

    def test_docstring_import_not_treated_as_import(self):
        source = '"""Usage:\nimport os\n"""\n\nx = 1\n'
        assert not ImportManager(source).has_import("import os")


class TestInsertion:
    def test_after_existing_imports(self):
        source = "import os\nimport sys\n\nx = 1\n"
        out = insert_imports(source, ["import json"])
        lines = out.splitlines()
        assert lines[:3] == ["import os", "import sys", "import json"]

    def test_after_docstring_when_no_imports(self):
        source = '"""Module doc."""\n\nx = 1\n'
        out = insert_imports(source, ["import json"])
        assert out.splitlines()[1] == "import json" or out.splitlines()[2] == "import json"
        assert out.index('"""') < out.index("import json")

    def test_at_top_when_bare(self):
        out = insert_imports("x = 1\n", ["import json"])
        assert out.startswith("import json\n")

    def test_no_duplicates(self):
        source = "import json\n\nx = 1\n"
        out = insert_imports(source, ["import json"])
        assert out.count("import json") == 1

    def test_multiple_statements_ordered(self):
        out = insert_imports("x = 1\n", ["import a", "import b"])
        assert out.index("import a") < out.index("import b")

    def test_indented_import_not_top_level(self):
        source = "def f():\n    import os\n    return os\n"
        manager = ImportManager(source)
        # insertion offset must be 0 (no *top-level* import block)
        assert manager.insertion_offset() == 0

    def test_missing_deduplicates_requests(self):
        manager = ImportManager("x = 1\n")
        assert manager.missing(["import os", "import os", "import re"]) == [
            "import os",
            "import re",
        ]

    def test_insertion_skips_import_inside_docstring(self):
        # regression: the MULTILINE scan used to anchor on the
        # import-shaped line *inside* the docstring, splicing new
        # imports into the middle of the literal
        source = '"""Module doc.\nimport os\nmore prose\n"""\n\nx = 1\n'
        out = insert_imports(source, ["import json"])
        assert compile(out, "<t>", "exec")
        assert out.index('"""\n') < out.index("import json")
        assert "import os\nimport json" not in out

    def test_insertion_after_real_import_with_docstring_decoy(self):
        source = '"""doc\nimport os\n"""\nimport sys\n\nx = 1\n'
        out = insert_imports(source, ["import json"])
        assert "import sys\nimport json\n" in out


class TestPruning:
    def test_dead_plain_import_removed(self):
        source = "import pickle\nimport json\n\ndata = json.loads(x)\n"
        out = prune_unused_imports(source)
        assert "import pickle" not in out
        assert "import json" in out

    def test_from_import_kept_if_any_name_used(self):
        source = "from flask import Flask, escape\n\napp = Flask(__name__)\n"
        assert "escape" in prune_unused_imports(source)

    def test_from_import_removed_if_unused(self):
        source = "from flask import escape\n\nprint('hi')\n"
        assert "escape" not in prune_unused_imports(source)

    def test_dotted_module_binding(self):
        source = "import urllib.request\n\nurllib.request.urlopen(u)\n"
        assert "import urllib.request" in prune_unused_imports(source)

    def test_aliased_binding(self):
        source = "import numpy as np\n\nprint(np.zeros(3))\n"
        assert "import numpy as np" in prune_unused_imports(source)

    def test_indented_imports_untouched(self):
        source = "def f():\n    import os\n    return 1\n"
        assert prune_unused_imports(source) == source

    def test_word_boundary_respected(self):
        # "osmium" must not keep "import os" alive
        source = "import os\n\nosmium = 1\nprint(osmium)\n"
        assert "import os\n" not in prune_unused_imports(source)

    def test_future_import_never_pruned(self):
        # regression: future imports are compiler directives, not
        # bindings — pruning one changes program semantics
        source = "from __future__ import annotations\n\nx = 1\n"
        assert prune_unused_imports(source) == source

    def test_multi_module_import_kept_if_any_binding_used(self):
        # regression: binding extraction saw only the first module
        source = "import os, pickle\n\npickle.loads(x)\n"
        assert "import os, pickle" in prune_unused_imports(source)

    def test_multi_module_import_pruned_when_all_dead(self):
        source = "import os, pickle\n\nprint('hi')\n"
        assert "import os" not in prune_unused_imports(source)

    def test_docstring_import_line_not_pruned(self):
        source = '"""Example:\nimport os\n"""\n\nprint("hi")\n'
        assert prune_unused_imports(source) == source


class TestImportBindings:
    def test_plain_multi_module_with_alias(self):
        assert import_bindings("import os.path as p, pickle") == ["p", "pickle"]

    def test_from_import_aliases(self):
        assert import_bindings("from flask import Flask, request as req") == [
            "Flask",
            "req",
        ]

    def test_dotted_module_binds_first_component(self):
        assert import_bindings("import urllib.request") == ["urllib"]

    def test_non_import_raises(self):
        import pytest

        with pytest.raises(ValueError):
            import_bindings("x = 1")
