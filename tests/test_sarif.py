"""Tests for the SARIF / plain-JSON exporters and the CLI format flag."""

import json

import pytest

from repro.cli import main
from repro.core import PatchitPy
from repro.core.sarif import dumps_plain, dumps_sarif, to_plain_json, to_sarif
from repro.types import AnalysisReport

SOURCE = 'import pickle\n\ndata = pickle.loads(blob)\napp.run(debug=True)\n'


@pytest.fixture(scope="module")
def report():
    engine = PatchitPy()
    findings = engine.detect(SOURCE)
    return AnalysisReport(tool="patchitpy", source=SOURCE, findings=findings)


class TestSarif:
    def test_schema_header(self, report):
        log = to_sarif(report)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]

    def test_one_run_with_driver(self, report):
        run = to_sarif(report)["runs"][0]
        assert run["tool"]["driver"]["name"] == "patchitpy"
        assert run["tool"]["driver"]["rules"]

    def test_result_per_finding(self, report):
        run = to_sarif(report)["runs"][0]
        assert len(run["results"]) == len(report.findings)

    def test_rule_index_consistency(self, report):
        run = to_sarif(report)["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_locations_point_at_lines(self, report):
        run = to_sarif(report)["runs"][0]
        lines = {
            r["locations"][0]["physicalLocation"]["region"]["startLine"]
            for r in run["results"]
        }
        assert 3 in lines  # pickle.loads line
        assert 4 in lines  # debug=True line

    def test_cwe_tags(self, report):
        run = to_sarif(report)["runs"][0]
        tags = {t for rule in run["tool"]["driver"]["rules"] for t in rule["properties"]["tags"]}
        assert "CWE-502" in tags and "CWE-209" in tags

    def test_parse_failed_notification(self):
        engine = PatchitPy()
        bad = "```python\npickle.loads(x)\n```"
        rep = AnalysisReport(
            tool="patchitpy", source=bad, findings=engine.detect(bad), parse_failed=True
        )
        run = to_sarif(rep)["runs"][0]
        assert "invocations" in run

    def test_dumps_is_valid_json(self, report):
        parsed = json.loads(dumps_sarif(report))
        assert parsed["runs"]


class TestPlainJson:
    def test_shape(self, report):
        payload = to_plain_json(report, artifact_uri="x.py")
        assert payload["vulnerable"] is True
        assert payload["target"] == "x.py"
        assert all({"rule", "cwe", "line"} <= set(f) for f in payload["findings"])

    def test_dumps_roundtrip(self, report):
        assert json.loads(dumps_plain(report))["tool"] == "patchitpy"

    def test_clean_report(self):
        payload = to_plain_json(AnalysisReport(tool="t", source="x = 1\n"))
        assert payload["vulnerable"] is False
        assert payload["findings"] == []


class TestCliFormats:
    @pytest.fixture()
    def vulnerable_file(self, tmp_path):
        path = tmp_path / "t.py"
        path.write_text(SOURCE)
        return path

    def test_json_format(self, vulnerable_file, capsys):
        code = main([str(vulnerable_file), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["vulnerable"] is True

    def test_sarif_format(self, vulnerable_file, capsys):
        main([str(vulnerable_file), "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"]

    def test_json_clean_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "c.py"
        path.write_text("print('ok')\n")
        assert main([str(path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["findings"] == []
