"""Tests for the observability subsystem: collector, merge, exporters, CLI.

The pinned contracts:

- per-rule counters are **identical** between a serial scan and a
  ``jobs=4`` process-parallel scan of the same tree (wall times may
  differ; counts may not);
- :meth:`ScanMetrics.merge` is associative, so worker snapshots can be
  folded in any completion order;
- the default no-op collector records nothing and leaves reports in
  their pre-observability shape (``report.metrics is None``);
- the exporters produce parseable JSON and well-formed Prometheus text;
- the CLI surfaces (``--stats``, ``--metrics``) and the new argument
  contract (``--in-place`` validation, exit codes) behave as documented.
"""

import json
import warnings
from pathlib import Path

import pytest

from repro import (
    NULL_METRICS,
    PatchitPy,
    ProjectScanner,
    RuleStats,
    ScanMetrics,
)
from repro.cli import main
from repro.observability import (
    dumps_json,
    format_stats,
    metrics_to_dict,
    to_prometheus,
)

VULN_PICKLE = "import pickle\n\ndata = pickle.loads(blob)\n"
VULN_MD5 = "import hashlib\n\nh = hashlib.md5(secret_value)\n"
CLEAN = "def add(a, b):\n    return a + b\n"
NOSEC = "import pickle\n\ndata = pickle.loads(blob)  # nosec\n"


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "a.py").write_text(VULN_PICKLE)
    (tmp_path / "b.py").write_text(VULN_MD5)
    (tmp_path / "c.py").write_text(CLEAN)
    (tmp_path / "d.py").write_text(NOSEC)
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "e.py").write_text(VULN_PICKLE + VULN_MD5)
    (tmp_path / "pkg" / "f.py").write_text(CLEAN)
    return tmp_path


def _counter_view(metrics: ScanMetrics) -> dict:
    """The deterministic slice of a snapshot: every count, no wall times.

    ``slow_rule_breaches`` is a count *of* wall-time events (watchdog
    budget overruns), so it is excluded along with the timings.
    """
    return {
        "rules": {
            rule_id: {
                k: v for k, v in stats.to_dict().items() if k != "time_s"
            }
            for rule_id, stats in metrics.rules.items()
        },
        "counters": {
            k: v for k, v in metrics.counters.items() if k != "slow_rule_breaches"
        },
        "file_paths": sorted(metrics.files),
    }


class TestCollector:
    def test_rule_stats_created_on_first_use(self):
        metrics = ScanMetrics()
        stats = metrics.rule_stats("R1")
        stats.matches += 3
        assert metrics.rules["R1"].matches == 3

    def test_detect_records_per_rule_counters(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        findings = engine.detect(VULN_PICKLE)
        assert findings
        assert metrics.counters["detect_calls"] == 1
        assert metrics.counters["findings"] == len(findings)
        assert metrics.timers["detect_time_s"] > 0
        # every rule in the catalog was offered the file exactly once
        assert {stats.calls for stats in metrics.rules.values()} == {1}
        total_matches = sum(s.matches for s in metrics.rules.values())
        assert total_matches >= len(findings)
        # the clean-miss rules were mostly spared by the prefilter
        assert sum(s.prefilter_skips for s in metrics.rules.values()) > 0

    def test_guard_veto_counted(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        assert engine.detect(NOSEC) == []
        assert sum(s.guard_vetoes for s in metrics.rules.values()) >= 1

    def test_patch_counters(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        result = engine.patch(VULN_PICKLE)
        assert result.applied
        assert metrics.counters["patch_calls"] == 1
        assert metrics.counters["patch_passes"] >= 1
        assert metrics.counters["patches_applied"] == len(result.applied)
        assert metrics.timers["patch_time_s"] > 0

    def test_analyze_accepts_new_keyword(self):
        metrics = ScanMetrics()
        engine = PatchitPy(metrics=metrics)
        report = engine.analyze(VULN_PICKLE, patch=False)
        assert report.findings and not report.patches
        assert metrics.counters["detect_calls"] == 1

    def test_snapshot_is_independent(self):
        metrics = ScanMetrics()
        metrics.count("detect_calls", 2)
        copy = metrics.snapshot()
        copy.count("detect_calls", 5)
        assert metrics.counters["detect_calls"] == 2


class TestMerge:
    def _sample(self, rule_id, matches, calls, counter):
        m = ScanMetrics()
        stats = m.rule_stats(rule_id)
        stats.matches = matches
        stats.calls = calls
        stats.time_s = 0.25 * calls
        m.count("detect_calls", counter)
        m.add_time("detect_time_s", 0.5)
        m.record_file(f"/{rule_id}.py", 0.125)
        return m

    def test_merge_is_associative(self):
        a1, b1, c1 = (
            self._sample("R1", 1, 2, 3),
            self._sample("R2", 4, 5, 6),
            self._sample("R1", 7, 8, 9),
        )
        a2, b2, c2 = (
            self._sample("R1", 1, 2, 3),
            self._sample("R2", 4, 5, 6),
            self._sample("R1", 7, 8, 9),
        )
        left = ScanMetrics().merge(ScanMetrics().merge(a1).merge(b1)).merge(c1)
        right = ScanMetrics().merge(a2).merge(ScanMetrics().merge(b2).merge(c2))
        assert metrics_to_dict(left) == metrics_to_dict(right)

    def test_merge_is_commutative_on_counters(self):
        ab = ScanMetrics().merge(self._sample("R1", 1, 1, 1)).merge(
            self._sample("R2", 2, 2, 2)
        )
        ba = ScanMetrics().merge(self._sample("R2", 2, 2, 2)).merge(
            self._sample("R1", 1, 1, 1)
        )
        assert metrics_to_dict(ab) == metrics_to_dict(ba)

    def test_merge_none_and_disabled_are_noops(self):
        m = self._sample("R1", 1, 1, 1)
        before = metrics_to_dict(m)
        m.merge(None)
        m.merge(NULL_METRICS)
        assert metrics_to_dict(m) == before

    def test_null_merge_absorbs(self):
        assert NULL_METRICS.merge(ScanMetrics()) is NULL_METRICS
        assert metrics_to_dict(NULL_METRICS) == {
            "rules": {},
            "counters": {},
            "timers": {},
            "files": {},
            "rule_health": {},
            "durations": {},
        }


class TestScanParity:
    """Serial and process-parallel scans must agree on every counter."""

    def _scan(self, tree, jobs):
        metrics = ScanMetrics()
        scanner = ProjectScanner(metrics=metrics)
        report = scanner.scan(tree, jobs=jobs, processes=jobs > 1)
        assert report.metrics is metrics
        return report, metrics

    def test_serial_vs_process_parallel_totals(self, tree):
        serial_report, serial = self._scan(tree, jobs=1)
        parallel_report, parallel = self._scan(tree, jobs=4)
        assert [f.path for f in serial_report.files] == [
            f.path for f in parallel_report.files
        ]
        assert _counter_view(serial) == _counter_view(parallel)
        assert serial.counters["files_scanned"] == 6
        assert serial.counters["detect_calls"] == 6
        assert serial.counters["findings"] == serial_report.total_findings

    def test_per_file_durations_recorded(self, tree):
        _, metrics = self._scan(tree, jobs=1)
        assert len(metrics.files) == 6
        assert all(duration >= 0 for duration in metrics.files.values())
        assert metrics.timers["file_time_s"] == pytest.approx(
            sum(metrics.files.values())
        )
        assert metrics.timers["scan_time_s"] > 0

    def test_cache_counters_flow_into_metrics(self, tree):
        cold = ScanMetrics()
        ProjectScanner(metrics=cold).scan(tree, use_cache=True)
        assert cold.counters["cache_misses"] == 6
        assert "cache_hits" not in cold.counters or cold.counters["cache_hits"] == 0

        warm = ScanMetrics()
        ProjectScanner(metrics=warm).scan(tree, use_cache=True)
        assert warm.counters["cache_hits"] == 6
        assert warm.cache_hit_rate() == 1.0
        assert warm.counters["files_from_cache"] == 6
        # zero analysis happened, so no per-rule traffic at all
        assert warm.rules == {}

    def test_stale_hint_counted(self, tree):
        ProjectScanner(metrics=ScanMetrics()).scan(tree, use_cache=True)
        target = tree / "a.py"
        target.write_text(VULN_PICKLE + "\n# extended\n")
        rescan = ScanMetrics()
        ProjectScanner(metrics=rescan).scan(tree, use_cache=True)
        assert rescan.counters["cache_stale_hints"] == 1

    def test_patch_tree_metrics(self, tree):
        metrics = ScanMetrics()
        scanner = ProjectScanner(metrics=metrics)
        report = scanner.patch_tree(tree, backup=False)
        assert report.metrics is metrics
        assert metrics.counters["files_patched"] == len(
            [f for f in report.files if f.patched]
        )
        assert metrics.counters["patches_applied"] >= 1


class TestDisabledCollector:
    def test_scan_report_has_no_metrics(self, tree):
        report = ProjectScanner().scan(tree)
        assert report.metrics is None

    def test_patch_tree_report_has_no_metrics(self, tree):
        report = ProjectScanner().patch_tree(tree, backup=False)
        assert report.metrics is None

    def test_engine_default_records_nothing(self):
        engine = PatchitPy()
        engine.detect(VULN_PICKLE)
        engine.patch(VULN_PICKLE)
        assert engine.metrics is NULL_METRICS
        assert metrics_to_dict(engine.metrics) == {
            "rules": {},
            "counters": {},
            "timers": {},
            "files": {},
            "rule_health": {},
            "durations": {},
        }

    def test_null_collector_pickles_to_singleton(self):
        import pickle

        assert pickle.loads(pickle.dumps(NULL_METRICS)) is NULL_METRICS

    def test_enabled_collector_pickles_with_state(self):
        import pickle

        m = ScanMetrics()
        m.count("detect_calls", 4)
        m.rule_stats("R1").matches = 2
        clone = pickle.loads(pickle.dumps(m))
        assert metrics_to_dict(clone) == metrics_to_dict(m)


class TestExporters:
    @pytest.fixture()
    def collected(self, tree):
        metrics = ScanMetrics()
        ProjectScanner(metrics=metrics).scan(tree, use_cache=True)
        return metrics

    def test_json_round_trip(self, collected):
        payload = json.loads(dumps_json(collected))
        restored = ScanMetrics.from_dict(payload)
        assert metrics_to_dict(restored) == metrics_to_dict(collected)

    def test_rule_stats_round_trip(self):
        stats = RuleStats(calls=2, time_s=0.5, matches=1, prefilter_skips=1)
        assert RuleStats.from_dict(stats.to_dict()) == stats

    def test_prometheus_format(self, collected):
        text = to_prometheus(collected)
        assert "# TYPE patchitpy_detect_calls counter" in text
        assert "patchitpy_cache_misses 6" in text
        assert 'patchitpy_rule_time_seconds{rule="' in text
        assert 'patchitpy_rule_prefilter_skips{rule="' in text
        # every sample line is NAME VALUE or NAME{labels} VALUE
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name and float(value) is not None

    def test_format_stats_sections(self, collected):
        text = format_stats(collected, top=5)
        assert "top 5 rules by time:" in text
        assert "cache:" in text and "hit rate" in text
        assert "prefilter skip(s)" in text

    def test_format_stats_empty_collector(self):
        assert "(no metrics recorded)" in format_stats(ScanMetrics())


class TestCliSurface:
    @pytest.fixture()
    def project(self, tmp_path):
        (tmp_path / "a.py").write_text(VULN_PICKLE)
        (tmp_path / "b.py").write_text(CLEAN)
        return tmp_path

    def test_stats_flag_directory(self, project, capsys):
        code = main([str(project), "--stats"])
        out = capsys.readouterr().out
        assert code == 1
        assert "scan statistics:" in out
        assert "rules by time:" in out
        assert "hit rate" in out

    def test_stats_flag_single_file(self, project, capsys):
        code = main([str(project / "a.py"), "--stats"])
        out = capsys.readouterr().out
        assert code == 1
        assert "scan statistics:" in out

    def test_metrics_json_export(self, project, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        main([str(project), "--metrics", str(target)])
        payload = json.loads(target.read_text())
        assert payload["counters"]["detect_calls"] == 2
        assert payload["rules"]

    def test_metrics_prometheus_export(self, project, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        main([str(project), "--metrics", str(target)])
        assert "# TYPE patchitpy_detect_calls counter" in target.read_text()

    def test_no_stats_no_metrics_output(self, project, capsys):
        main([str(project)])
        out = capsys.readouterr().out
        assert "scan statistics:" not in out

    def test_in_place_requires_patch(self, project, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(project / "a.py"), "--in-place"])
        assert excinfo.value.code == 2
        assert "--in-place requires --patch" in capsys.readouterr().err

    def test_in_place_rejects_lines(self, project, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(project / "a.py"), "--patch", "--in-place", "--lines", "1:2"])
        assert excinfo.value.code == 2
        assert "--lines" in capsys.readouterr().err

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "exit codes" in capsys.readouterr().out


class TestDeprecationShim:
    def test_legacy_keyword_warns(self):
        engine = PatchitPy()
        with pytest.warns(DeprecationWarning, match="apply_patches_flag"):
            report = engine.analyze(VULN_PICKLE, apply_patches_flag=False)
        assert report.findings and not report.patches

    def test_new_keyword_does_not_warn(self):
        engine = PatchitPy()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = engine.analyze(VULN_PICKLE, patch=True)
        assert report.patches
