"""Tests for the patchitpy CLI."""

import pytest

from repro.cli import main

VULN = 'import pickle\n\ndata = pickle.loads(blob)\napp.run(debug=True)\n'


@pytest.fixture()
def vulnerable_file(tmp_path):
    path = tmp_path / "target.py"
    path.write_text(VULN)
    return path


class TestDetection:
    def test_findings_printed(self, vulnerable_file, capsys):
        code = main([str(vulnerable_file)])
        out = capsys.readouterr().out
        assert code == 1
        assert "CWE-502" in out and "CWE-209" in out

    def test_clean_file_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("print('ok')\n")
        assert main([str(path)]) == 0
        assert "no vulnerable patterns" in capsys.readouterr().out

    def test_missing_file_exit_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.py")]) == 2
        assert "error" in capsys.readouterr().err


class TestPatching:
    def test_patch_to_stdout(self, vulnerable_file, capsys):
        main([str(vulnerable_file), "--patch"])
        out = capsys.readouterr().out
        assert "json.loads(blob)" in out
        assert vulnerable_file.read_text() == VULN  # untouched

    def test_patch_in_place(self, vulnerable_file):
        main([str(vulnerable_file), "--patch", "--in-place"])
        text = vulnerable_file.read_text()
        assert "json.loads(blob)" in text
        assert "debug=False" in text


class TestSelection:
    def test_line_range_limits_analysis(self, vulnerable_file, capsys):
        main([str(vulnerable_file), "--lines", "4:4"])
        out = capsys.readouterr().out
        assert "CWE-209" in out
        assert "CWE-502" not in out

    def test_bad_range_rejected(self, vulnerable_file):
        with pytest.raises(SystemExit):
            main([str(vulnerable_file), "--lines", "90:99"])

    def test_malformed_range_rejected(self, vulnerable_file):
        with pytest.raises(SystemExit):
            main([str(vulnerable_file), "--lines", "abc"])


class TestExtended:
    def test_extended_catalog_flag(self, tmp_path, capsys):
        path = tmp_path / "ext.py"
        path.write_text("import sys\nsys.path.insert(0, '/tmp')\n")
        assert main([str(path)]) == 0  # default ruleset silent
        assert main([str(path), "--extended"]) == 1  # extended rule fires


class TestDirectoryMode:
    @pytest.fixture()
    def project(self, tmp_path):
        (tmp_path / "a.py").write_text("import pickle\nx = pickle.loads(b)\n")
        (tmp_path / "b.py").write_text("print('ok')\n")
        return tmp_path

    def test_scan_directory(self, project, capsys):
        code = main([str(project)])
        out = capsys.readouterr().out
        assert code == 1
        assert "vulnerable files: 1" in out
        assert "CWE-502" in out

    def test_patch_directory_in_place(self, project, capsys):
        main([str(project), "--patch", "--in-place"])
        assert "json.loads" in (project / "a.py").read_text()
        assert (project / "a.py.orig").exists()

    def test_clean_directory_exit_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("print('fine')\n")
        assert main([str(tmp_path)]) == 0

    def test_html_report_flag(self, project, tmp_path, capsys):
        out = tmp_path / "report.html"
        main([str(project), "--html", str(out)])
        assert out.exists()
        assert "<!DOCTYPE html>" in out.read_text()

    def test_jobs_flag(self, project, capsys):
        code = main([str(project), "--jobs", "2", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "vulnerable files: 1" in out

    def test_cache_written_and_reused(self, project, capsys):
        from repro.core.cache import CACHE_DIR_NAME

        main([str(project)])
        assert (project / CACHE_DIR_NAME).is_dir()
        main([str(project)])
        out = capsys.readouterr().out
        assert "cache: 2 hit(s), 0 miss(es)" in out

    def test_no_cache_flag(self, project, capsys):
        from repro.core.cache import CACHE_DIR_NAME

        main([str(project), "--no-cache"])
        assert not (project / CACHE_DIR_NAME).exists()
        assert "cache:" not in capsys.readouterr().out

    def test_clear_cache_flag(self, project, capsys):
        main([str(project)])
        capsys.readouterr()  # drain the cold-scan output
        code = main([str(project), "--clear-cache"])
        out = capsys.readouterr().out
        assert code == 1
        # the wiped cache forces a full re-analysis
        assert "cache: 0 hit(s), 2 miss(es)" in out
