"""Unit tests for mini-Bandit (AST plugin scanner)."""

import ast

import pytest

from repro.baselines.minibandit import MiniBandit, PLUGINS
from repro.baselines.minibandit.plugins import PluginContext, call_name


def _analyze(source: str):
    return MiniBandit().analyze_source(source)


def _rule_ids(source: str):
    return {f.rule_id for f in _analyze(source).findings}


class TestCallName:
    def test_dotted(self):
        node = ast.parse("os.path.join(a)").body[0].value
        assert call_name(node) == "os.path.join"

    def test_plain(self):
        node = ast.parse("eval(x)").body[0].value
        assert call_name(node) == "eval"


class TestParseBehaviour:
    def test_parse_failure_flagged(self):
        report = _analyze("def broken(:\n")
        assert report.parse_failed
        assert report.findings == []

    def test_markdown_fence_unanalyzable(self):
        report = _analyze("```python\nx = eval(y)\n```")
        assert report.parse_failed


class TestPlugins:
    @pytest.mark.parametrize(
        "source,plugin_id",
        [
            ("exec(code)", "B102"),
            ("import os\nos.chmod(p, 0o777)", "B103"),
            ('s.bind(("0.0.0.0", 80))', "B104"),
            ('password = "hunter2!"', "B105"),
            ('ok = password == "x1234"', "B105C"),
            ('path = "/tmp/scratch.txt"', "B108"),
            ("try:\n    f()\nexcept OSError:\n    pass", "B110"),
            ('import requests\nrequests.get("https://x")', "B113"),
            ("app.run(debug=True)", "B201"),
            ("import pickle\npickle.loads(b)", "B301"),
            ("import marshal\nmarshal.loads(b)", "B302"),
            ("import hashlib\nhashlib.md5(b'')", "B303"),
            ("from Crypto.Cipher import DES\nDES.new(k)", "B304"),
            ("from Crypto.Cipher import AES\nAES.new(k, AES.MODE_ECB)", "B305"),
            ("import tempfile\ntempfile.mktemp()", "B306"),
            ("import random\nrandom.randint(0, 9)", "B311"),
            ("from lxml import etree\netree.parse(p)", "B314"),
            ("import ftplib\nftplib.FTP(h)", "B321"),
            ("import telnetlib", "B401"),
            ("import requests\nrequests.get(u, verify=False)", "B501"),
            ("import ssl\nssl.PROTOCOL_SSLv3", "B502"),
            ("import ssl\nssl._create_unverified_context()", "B504"),
            ("import yaml\nyaml.load(fh)", "B506"),
            ("import subprocess\nsubprocess.run(c, shell=True)", "B602"),
            ("import os\nos.system(c)", "B605"),
            ("eval(expr)", "B607"),
            ("cur.execute(f\"SELECT * FROM t WHERE id={x}\")", "B608"),
        ],
    )
    def test_plugin_fires(self, source, plugin_id):
        assert plugin_id in _rule_ids(source)

    @pytest.mark.parametrize(
        "source,plugin_id",
        [
            ("import hashlib\nhashlib.md5(b'', usedforsecurity=False)", "B303"),
            ("import requests\nrequests.get(u, timeout=5)", "B113"),
            ("import yaml\nyaml.load(fh, Loader=yaml.SafeLoader)", "B506"),
            ("cur.execute(\"SELECT * FROM t WHERE id=?\", (x,))", "B608"),
            ("import subprocess\nsubprocess.run(c, shell=False)", "B602"),
            ("app.run(debug=False)", "B201"),
        ],
    )
    def test_plugin_silent_on_safe_form(self, source, plugin_id):
        assert plugin_id not in _rule_ids(source)

    def test_defusedxml_suppresses_xml(self):
        source = "import defusedxml.ElementTree\nfrom lxml import etree\netree.parse(p)"
        assert "B314" not in _rule_ids(source)


class TestSuggestions:
    def test_suggestion_comment_emitted(self):
        report = _analyze("import yaml\nyaml.load(fh)")
        assert any("safe_load" in s.comment for s in report.suggestions)

    def test_annotated_source_is_comment_only(self, flat_samples):
        tool = MiniBandit()
        sample = next(
            s for s in flat_samples if "yaml.load(" in s.source and not s.incomplete
        )
        annotated = tool.annotated_source(sample)
        assert annotated is not None
        # only comment lines were added: stripping them recovers the code
        code_lines = [l for l in annotated.splitlines() if not l.lstrip().startswith("# bandit[")]
        assert "\n".join(code_lines).strip() == sample.source.strip()

    def test_suggestion_rate_about_17_percent(self, flat_samples):
        tool = MiniBandit()
        detected = suggested = 0
        for sample in flat_samples:
            report = tool.analyze(sample)
            if report.is_vulnerable:
                detected += 1
                if report.suggestions:
                    suggested += 1
        assert 0.10 <= suggested / detected <= 0.25  # paper: 17 %


class TestDedup:
    def test_same_plugin_same_offset_once(self):
        report = _analyze("import pickle\npickle.loads(b)")
        ids = [f.rule_id for f in report.findings]
        assert ids.count("B301") == 1

    def test_plugin_registry_ids_unique(self):
        ids = [p.plugin_id for p in PLUGINS]
        assert len(set(ids)) == len(ids)


class TestContext:
    def test_span_maps_to_source(self):
        source = "x = 1\neval(y)\n"
        report = _analyze(source)
        finding = next(f for f in report.findings if f.rule_id == "B607")
        assert source[finding.span.start : finding.span.end] == "eval(y)"
