"""E7 — Fig. 3: cyclomatic-complexity distributions per patching tool.

Regenerates the mean/median/IQR table, the box plots, and the Wilcoxon
significance verdicts (PatchitPy ns vs generated; every LLM significant).
"""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.figures import fig3_complexity, fig3_values
from repro.metrics.complexity import cyclomatic_complexity


def test_fig3_artifact(case_study, artifact_dir, benchmark):
    samples = case_study.flat_samples()

    def complexity_sweep():
        return sum(cyclomatic_complexity(s.source) for s in samples)

    total = benchmark(complexity_sweep)
    assert total > 0

    values = fig3_values(case_study)
    reference = (
        "\nPaper reference: generated mean 2.40 IQR 1.11; patchitpy 2.29/1.21; "
        "chatgpt 2.84/1.33; claude-3.7 3.26/1.67; gemini 2.99/1.43.\n"
        "Reproduction note: absolute CC sits lower (leaner scenario bodies); "
        "ordering and significance verdicts match the paper."
    )
    write_artifact(artifact_dir, "fig3_complexity.txt", fig3_complexity(case_study) + reference)

    generated = values["generated"]["mean"]
    assert abs(values["patchitpy"]["mean"] - generated) / generated < 0.05
    for llm in ("chatgpt-4o", "claude-3.7", "gemini-2.0"):
        assert values[llm]["mean"] > generated
        assert values[llm]["p_vs_generated"] < 0.05
