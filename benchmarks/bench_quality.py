"""E6 — §III-C patch quality: Pylint-style scores and Wilcoxon equivalence."""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.figures import quality_summary
from repro.metrics.quality import quality_score
from repro.metrics.stats import wilcoxon_rank_sum


def test_quality_artifact(case_study, artifact_dir, benchmark):
    samples = case_study.flat_samples()

    def score_sweep():
        return sum(quality_score(s.source) for s in samples[:200])

    benchmark(score_sweep)

    text = quality_summary(case_study)
    reference = (
        "\nPaper reference: all median scores ~9/10; Wilcoxon rank-sum finds "
        "the patched code statistically equivalent to the ground truth."
    )
    write_artifact(artifact_dir, "quality_scores.txt", text + reference)

    ground = case_study.quality["ground-truth"]
    for group in ("patchitpy", "chatgpt-4o", "claude-3.7", "gemini-2.0"):
        assert not wilcoxon_rank_sum(case_study.quality[group], ground).significant()
