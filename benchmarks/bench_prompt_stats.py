"""E2 — §III-A prompt statistics: 203 prompts with the reported token
distribution (mean ≈ 21, median 15, min 3, max 63, 75 % < 35)."""

from __future__ import annotations

from conftest import write_artifact

from repro.corpus import load_prompts, prompt_token_stats


def test_prompt_stats_artifact(artifact_dir, benchmark):
    stats = benchmark(prompt_token_stats)

    lines = [
        "Prompt token statistics (§III-A)",
        f"  prompts       : {stats['count']} (paper: 203)",
        f"  mean tokens   : {stats['mean']:.1f} (paper: 21)",
        f"  median tokens : {stats['median']:.0f} (paper: 15)",
        f"  min / max     : {stats['min']} / {stats['max']} (paper: 3 / 63)",
        f"  share < 35    : {stats['share_below_35']:.0%} (paper: 75%)",
    ]
    write_artifact(artifact_dir, "prompt_stats.txt", "\n".join(lines))

    assert stats["count"] == 203
    assert stats["min"] == 3 and stats["max"] == 63
    assert 19 <= stats["mean"] <= 23
    assert stats["share_below_35"] >= 0.75


def test_prompt_loading_speed(benchmark):
    prompts = benchmark(load_prompts)
    assert len(prompts) == 203
