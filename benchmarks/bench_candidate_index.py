"""E12 — candidate-index performance: one multi-literal pass vs per-rule prefilters.

Measures the indexed engine (``PatchitPy()``, default) against the naive
per-rule prefilter path (``PatchitPy(use_index=False)``, the ablation
seam) in the two regimes that matter:

- **single-file** — repeated ``detect()`` calls over in-memory sources,
  the ``/v1/analyze`` daemon hot path;
- **project-scan** — ``ProjectScanner.scan`` over a synthetic repository
  (cold, serial, uncached), the CLI/batch path.

Each regime takes the best of several repeats, asserts the two engines
produce byte-identical findings, and records the speedup.  Artifacts:
a human-readable table (``candidate_index.txt``) and a BENCH JSON
(``candidate_index.json``) embedding the index shape (literal counts,
always-run bucket size) and the per-scan candidate/skip counters; CI
uploads the JSON and ``scripts/check_bench_regression.py`` gates on its
speedups.

``run_candidate_index_benchmark`` is importable without pytest so the
tier-1 suite can run it in smoke mode (tests/test_bench_candidate_index.py)
while the full run records the headline numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro import PatchitPy, ProjectScanner, ScanMetrics

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

_VULNERABLE_BODY = '''\
import hashlib
import pickle
import subprocess


def load_session(blob):
    return pickle.loads(blob)


def fingerprint(secret_value):
    return hashlib.md5(secret_value).hexdigest()


def run(cmd):
    return subprocess.call(cmd, shell=True)


def helper_{index}_{line}(value):
    return value * {line}
'''

_CLEAN_BODY = '''\
def add_{index}_{line}(a, b):
    """Pure helper; nothing to report."""
    return a + b


def mul_{index}_{line}(a, b):
    return a * b
'''


def _sources(files: int, sections: int) -> List[str]:
    """``files`` unique module texts, realistically clean-heavy.

    Every 8th file carries one vulnerable section; the rest is clean
    filler.  Real trees look like this — most files match no rule — and
    it is exactly the regime rule *selection* governs: on a matching
    file the regex/guard/dedupe work is identical with or without the
    index, so a finding-dense corpus would measure that shared work, not
    the selection being benchmarked.
    """
    sources = []
    for index in range(files):
        parts = [
            _CLEAN_BODY.format(index=index, line=section)
            for section in range(sections)
        ]
        if index % 8 == 0:
            parts[0] = _VULNERABLE_BODY.format(index=index, line=0)
        sources.append("".join(parts) + f"\n# uid {index}\n")
    return sources


def build_corpus(root: Path, files: int, sections: int = 12) -> None:
    """Write the synthetic repository ``_sources`` describes."""
    root.mkdir(parents=True, exist_ok=True)
    for index, text in enumerate(_sources(files, sections)):
        (root / f"module_{index:04d}.py").write_text(text)


def _best_of(repeats: int, action) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - t0)
    return best


def run_candidate_index_benchmark(
    corpus_root: Path, files: int = 120, sections: int = 10, repeats: int = 3
) -> Dict[str, float]:
    """Time indexed vs naive engines in both regimes; assert equivalence."""
    indexed = PatchitPy()
    naive = PatchitPy(use_index=False)
    indexed.warmup()  # build the index outside the timed region, like the daemon
    naive.warmup()

    sources = _sources(files, sections)

    # Equivalence first: the speedup below is only meaningful if the two
    # engines agree byte for byte on every file.
    for source in sources:
        assert [f.to_dict() for f in indexed.detect(source)] == [
            f.to_dict() for f in naive.detect(source)
        ]

    single_indexed = _best_of(
        repeats, lambda: [indexed.detect(source) for source in sources]
    )
    single_naive = _best_of(
        repeats, lambda: [naive.detect(source) for source in sources]
    )

    corpus = corpus_root / "corpus"
    build_corpus(corpus, files=files, sections=sections)
    indexed_scanner = ProjectScanner(engine=indexed)
    naive_scanner = ProjectScanner(engine=naive)

    indexed_scan = indexed_scanner.scan(corpus, jobs=1)
    naive_scan = naive_scanner.scan(corpus, jobs=1)
    assert [
        [fi.to_dict() for fi in f.findings] for f in indexed_scan.files
    ] == [[fi.to_dict() for fi in f.findings] for f in naive_scan.files]

    scan_indexed = _best_of(repeats, lambda: indexed_scanner.scan(corpus, jobs=1))
    scan_naive = _best_of(repeats, lambda: naive_scanner.scan(corpus, jobs=1))

    # One instrumented pass records how hard the index actually prunes.
    collector = ScanMetrics()
    instrumented = PatchitPy(metrics=collector)
    for source in sources:
        instrumented.detect(source)
    candidates = collector.counters["index_candidates"]
    skips = collector.counters["index_skips"]

    index_shape = indexed.rules.candidate_index().describe()
    return {
        "files": files,
        "findings": indexed_scan.total_findings,
        "single_file_indexed_s": single_indexed,
        "single_file_naive_s": single_naive,
        "single_file_speedup": single_naive / single_indexed,
        "project_scan_indexed_s": scan_indexed,
        "project_scan_naive_s": scan_naive,
        "project_scan_speedup": scan_naive / scan_indexed,
        "index_candidates": candidates,
        "index_skips": skips,
        "candidate_fraction": candidates / (candidates + skips),
        "index_rules": index_shape["rules"],
        "index_always_run": index_shape["always_run"],
        "index_exact_literals": index_shape["exact_literals"],
        "index_folded_literals": index_shape["folded_literals"],
    }


def format_report(results: Dict[str, float]) -> str:
    return (
        f"Candidate index benchmark ({results['files']:.0f} files, "
        f"{results['findings']:.0f} findings):\n"
        f"  single-file indexed : {results['single_file_indexed_s']:.3f}s\n"
        f"  single-file naive   : {results['single_file_naive_s']:.3f}s "
        f"(indexed x{results['single_file_speedup']:.2f} faster)\n"
        f"  project scan indexed: {results['project_scan_indexed_s']:.3f}s\n"
        f"  project scan naive  : {results['project_scan_naive_s']:.3f}s "
        f"(indexed x{results['project_scan_speedup']:.2f} faster)\n"
        f"  candidate fraction  : {results['candidate_fraction']:.1%} "
        f"({results['index_candidates']:.0f} run / "
        f"{results['index_skips']:.0f} skipped)\n"
        f"  index shape         : {results['index_rules']:.0f} rules, "
        f"{results['index_always_run']:.0f} always-run, "
        f"{results['index_exact_literals']:.0f} exact + "
        f"{results['index_folded_literals']:.0f} folded literals"
    )


def test_candidate_index_benchmark(tmp_path):
    """Full benchmark: records indexed-vs-naive numbers as an artifact."""
    results = run_candidate_index_benchmark(tmp_path, files=120, sections=10)
    text = format_report(results)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "candidate_index.txt"
    path.write_text(text + "\n")
    json_path = OUTPUT_DIR / "candidate_index.json"
    json_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[artifacts written: {path}, {json_path}]")
    print(text)
    # the acceptance claim: the indexed engine wins the project-scan regime
    assert results["project_scan_speedup"] > 1.0
    assert results["single_file_speedup"] > 1.0
    # and it must actually prune: most rule executions skipped up front
    assert results["candidate_fraction"] < 0.7
