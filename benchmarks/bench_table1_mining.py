"""E1 — Table I: standardization, LCS extraction, and rule synthesis."""

from __future__ import annotations

from conftest import write_artifact

from repro.mining import build_seed_corpus, extract_pattern, synthesize_rules
from repro.standardize import standardize

V1 = '''from flask import Flask, request
app = Flask(__name__)

@app.route("/comments")
def comments():
    name = request.args.get("name", "")
    return f"<p>{name}</p>"

if __name__ == "__main__":
    app.run(debug=True)
'''

V2 = '''from flask import Flask, request, make_response
appl = Flask(__name__)

@appl.route("/showName")
def name():
    username = request.args.get("username")
    return make_response(f"Hello {username}")

if __name__ == "__main__":
    appl.run(debug=True)
'''

S1 = V1.replace("{name}", "{escape(name)}").replace(
    "import Flask, request", "import Flask, request, escape"
).replace("debug=True", "debug=False, use_reloader=False")

S2 = V2.replace("{username}", "{escape(username)}").replace(
    "request, make_response", "request, make_response, escape"
).replace("debug=True", "debug=False, use_debugger=False, use_reloader=False")


def test_table1_artifact(artifact_dir, benchmark):
    pattern = benchmark(lambda: extract_pattern(V1, V2, S1, S2))

    std = standardize(V1)
    additions = [
        f"  {f.kind}: {' '.join(f.vulnerable_tokens) or '∅'} -> {' '.join(f.safe_tokens)}"
        for f in pattern.fragments
        if f.safe_tokens
    ]
    rules = synthesize_rules(pattern, "CWE-209")
    text = "\n".join(
        [
            "TABLE I — standardization + LCS + diff (reproduction)",
            "",
            "Standardized v1 (dictionary: %s):" % std.mapping,
            std.text.rstrip(),
            "",
            "LCS_v (common vulnerable pattern):",
            "  " + pattern.lcs_vulnerable_text.replace("\n", " ⏎ "),
            "",
            "LCS_s (common safe pattern):",
            "  " + pattern.lcs_safe_text.replace("\n", " ⏎ "),
            "",
            "Safe additions (blue fragments):",
            *additions,
            "",
            f"Synthesized rules: {[r.rule_id for r in rules]}",
        ]
    )
    write_artifact(artifact_dir, "table1_mining.txt", text)

    assert "escape" in {t for f in pattern.fragments for t in f.safe_tokens}
    assert rules


def test_seed_corpus_build_speed(benchmark):
    pairs = benchmark.pedantic(build_seed_corpus, rounds=2, iterations=1)
    assert len(pairs) >= 200
