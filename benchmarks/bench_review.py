"""Review-mode latency: a warm ``POST /v1/review`` must fit a bot's budget.

The review endpoint exists so a PR bot can ask "what did this change
introduce?" on every push.  That only works if the warm path — baseline
findings served from the content-addressed :class:`~repro.cache.ScanCache`,
only touched files rescanned — answers well inside an interactive budget.
The acceptance gate of the review PR is pinned here: **warm review of the
bench corpus completes in under 250 ms** (median).

Setup mirrors how a bot sees a repository: a git repo with a committed
baseline (several files, a couple of pre-existing findings), then an
uncommitted change that introduces exactly one new finding.  We measure:

- **cold review** — first ``POST /v1/review`` after server start: both
  sides of every touched file are scanned and cached;
- **warm review** — subsequent requests: every side is a cache hit, so
  the server only parses the diff and re-classifies.

Artifacts: ``review.txt`` (human table) and a BENCH JSON
(``review.json``) uploaded by CI.
"""

from __future__ import annotations

import json
import statistics
import subprocess
import time
from pathlib import Path
from typing import Dict

from repro import BackgroundServer, PatchitPyServer, ServerClient, ServerConfig

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

WARM_BUDGET_S = 0.250  # the review PR's acceptance gate

# The committed baseline: pre-existing findings the review must suppress.
BASELINE_FILES = {
    "app.py": (
        "import subprocess\n"
        "import yaml\n"
        "\n"
        "\n"
        "def load(data):\n"
        "    return yaml.load(data)\n"
        "\n"
        "\n"
        "def run(cmd):\n"
        "    return subprocess.call(cmd, shell=True)\n"
    ),
    "util.py": (
        "def helper(items):\n"
        "    return sorted(items)\n"
    ),
    "clean.py": (
        "VERSION = '1.0'\n"
        "\n"
        "\n"
        "def describe():\n"
        "    return VERSION\n"
    ),
}

# The uncommitted change: shifts app.py's findings down (still
# pre-existing) and introduces one genuinely new finding in util.py.
CHANGED_FILES = {
    "app.py": "# refreshed header\n" + BASELINE_FILES["app.py"],
    "util.py": (
        "import yaml\n"
        "\n"
        "\n"
        "def helper(items):\n"
        "    return sorted(items)\n"
        "\n"
        "\n"
        "def parse(raw):\n"
        "    return yaml.load(raw)\n"
    ),
}


def _git(root: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args],
        cwd=root,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "bench",
            "GIT_AUTHOR_EMAIL": "bench@example.invalid",
            "GIT_COMMITTER_NAME": "bench",
            "GIT_COMMITTER_EMAIL": "bench@example.invalid",
            "HOME": str(root),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def _build_corpus(root: Path) -> None:
    _git(root, "init", "-q")
    for name, text in BASELINE_FILES.items():
        (root / name).write_text(text)
    _git(root, "add", "-A")
    _git(root, "commit", "-q", "-m", "baseline")
    for name, text in CHANGED_FILES.items():
        (root / name).write_text(text)


def run_review_benchmark(
    work_dir: Path, warm_requests: int = 50
) -> Dict[str, float]:
    """Time cold vs warm ``POST /v1/review`` on the bench corpus."""
    root = work_dir / "corpus"
    root.mkdir()
    _build_corpus(root)

    server = PatchitPyServer(config=ServerConfig(port=0))
    with BackgroundServer(server) as handle:
        with ServerClient(port=handle.port) as client:
            t0 = time.perf_counter()
            first = client.review(str(root), base="HEAD")
            cold_review_s = time.perf_counter() - t0
            counts = first["counts"]
            assert counts["introduced"] == 1, first
            assert counts["pre-existing"] == 2, first

            samples = []
            for _ in range(warm_requests):
                t0 = time.perf_counter()
                payload = client.review(str(root), base="HEAD")
                samples.append(time.perf_counter() - t0)
                assert payload["counts"]["introduced"] == 1
            warm_review_s = statistics.median(samples)
            # warm requests hit the cache for every scanned side
            assert payload["cache_misses"] == 0, payload

    return {
        "warm_requests": warm_requests,
        "files_touched": len(CHANGED_FILES),
        "cold_review_s": cold_review_s,
        "warm_review_s": warm_review_s,
        "warm_budget_s": WARM_BUDGET_S,
        "warm_speedup": cold_review_s / warm_review_s,
        "introduced": counts["introduced"],
        "pre_existing": counts["pre-existing"],
    }


def format_report(results: Dict[str, float]) -> str:
    return (
        "Review-mode benchmark "
        f"({results['files_touched']:.0f} touched files, "
        f"{results['introduced']:.0f} introduced / "
        f"{results['pre_existing']:.0f} pre-existing):\n"
        f"  cold POST /v1/review: {results['cold_review_s'] * 1000:.1f}ms "
        "(scans + caches both sides)\n"
        f"  warm POST /v1/review: {results['warm_review_s'] * 1000:.2f}ms "
        f"(median of {results['warm_requests']:.0f}, "
        f"x{results['warm_speedup']:.1f} vs cold, budget "
        f"{results['warm_budget_s'] * 1000:.0f}ms)"
    )


def test_review_benchmark(tmp_path):
    """Full benchmark: records the warm-review latency as an artifact."""
    results = run_review_benchmark(tmp_path)
    text = format_report(results)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "review.txt"
    path.write_text(text + "\n")
    json_path = OUTPUT_DIR / "review.json"
    json_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[artifacts written: {path}, {json_path}]")
    print(text)
    # the acceptance gate: warm review fits an interactive bot's budget
    assert results["warm_review_s"] < WARM_BUDGET_S
    assert results["warm_speedup"] > 1.0
