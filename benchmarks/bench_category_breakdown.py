"""Category-level analysis — where the engine's recall and repair power
come from, by OWASP Top 10:2021 category."""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.breakdown import category_breakdown, render_breakdown


def test_category_breakdown(flat_samples, artifact_dir, benchmark):
    rows = benchmark.pedantic(
        lambda: category_breakdown(flat_samples), rounds=1, iterations=1
    )
    write_artifact(artifact_dir, "category_breakdown.txt", render_breakdown(rows))

    by_code = {row.category.code: row for row in rows}
    # injection and misconfiguration are pattern-friendly
    assert by_code["A03"].recall > 0.8
    assert by_code["A05"].recall > 0.9
    # SSRF detection exists but its repairs need statement-level edits
    assert by_code["A10"].repair_rate == 0.0
