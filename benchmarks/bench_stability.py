"""E13 — seed stability of the headline detection metrics."""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.stability import seed_stability


def test_seed_stability(artifact_dir, benchmark):
    result = benchmark.pedantic(
        lambda: seed_stability(seeds=(2025, 7, 1234)), rounds=1, iterations=1
    )
    write_artifact(artifact_dir, "seed_stability.txt", result.summary())
    # conclusions are seed-robust: tight spreads around the paper's values
    assert result.f1.std < 0.03
    assert result.precision.minimum > 0.90
    assert result.recall.minimum > 0.80
