"""E11 (extension) — how much of the tool does the mining pipeline
recover? Runs Fig. 2 end-to-end over the seed corpus and compares the
mined rule set's detection metrics against the curated 85-rule catalog."""

from __future__ import annotations

from conftest import write_artifact

from repro.mining import evaluate_mined_ruleset, mine_ruleset


def test_mined_vs_curated(artifact_dir, benchmark):
    result, report = benchmark.pedantic(
        evaluate_mined_ruleset, rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "Mined vs curated rule set (E11):",
            f"  pairs considered      : {report.pairs_considered}",
            f"  rules synthesized     : {report.rules_synthesized} "
            f"({report.rules_kept} kept after dedup/specificity filter)",
            f"  mined   ({result.mined_rules:3d} rules): "
            f"P={result.mined_precision:.2f} R={result.mined_recall:.2f}",
            f"  curated ({result.curated_rules:3d} rules): "
            f"P={result.curated_precision:.2f} R={result.curated_recall:.2f}",
            f"  recall recovered automatically: {result.recall_recovered:.0%}",
            "",
            "Reading: the Fig. 2 pipeline alone recovers about half of the",
            "curated catalog's recall; the guards and manual refinement the",
            "paper describes ('improvement of reg. expressions') account for",
            "the rest of the detection power and the precision gap.",
        ]
    )
    write_artifact(artifact_dir, "mined_vs_curated.txt", text)

    assert result.mined_rules >= 15
    assert result.recall_recovered >= 0.35
    assert result.curated_precision > result.mined_precision


def test_mining_speed(benchmark):
    rules = benchmark.pedantic(mine_ruleset, rounds=2, iterations=1)
    assert len(rules) >= 15
