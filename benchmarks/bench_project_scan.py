"""E11 — project-scan performance: process parallelism and the warm cache.

Measures the three regimes of :meth:`ProjectScanner.scan` on a synthetic
repository (unique per-file contents, mixed vulnerable/clean):

- **cold serial** — every file analyzed on one core, no cache;
- **cold parallel** — same work fanned out over a process pool
  (``jobs=N, processes=True``), the CPU-scaling claim;
- **warm cached** — a second scan of the unchanged tree through the
  persistent content-hash cache, which must perform *zero* detect calls;
- **instrumented serial** — the cold-serial scan again but with an
  enabled :class:`~repro.observability.ScanMetrics` collector, so the
  observability overhead is itself benchmarked (the default disabled
  collector runs the pre-observability code path, so cold-serial *is*
  the disabled-collector number);
- **traced serial** — the cold-serial scan with an enabled
  :class:`~repro.observability.TraceRecorder`, which additionally emits
  structured span events and attaches per-finding provenance; its
  overhead ratio and event count land in the BENCH JSON (the disabled
  recorder runs the pre-tracing code path, so cold-serial is also the
  disabled-trace number).

The full run writes two artifacts: the human-readable table
(``project_scan.txt``) and a BENCH JSON (``project_scan.json``) that
embeds the metrics snapshot — per-rule times, prefilter-skip counts,
cache hit/miss counters — so the perf trajectory of this benchmark is
self-documenting across PRs.

``run_project_scan_benchmark`` is importable without pytest so the tier-1
suite can run it in smoke mode (tests/test_bench_project_scan.py) while
the full benchmark run records the headline numbers as an artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

from repro import PatchitPy, ProjectScanner, ScanMetrics, TraceRecorder
from repro.observability import metrics_to_dict

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

_VULNERABLE_BODY = '''\
import hashlib
import pickle
import subprocess


def load_session(blob):
    return pickle.loads(blob)


def fingerprint(secret_value):
    return hashlib.md5(secret_value).hexdigest()


def run(cmd):
    return subprocess.call(cmd, shell=True)


def helper_{index}_{line}(value):
    return value * {line}
'''

_CLEAN_BODY = '''\
def add_{index}_{line}(a, b):
    """Pure helper; nothing to report."""
    return a + b


def mul_{index}_{line}(a, b):
    return a * b
'''


class CountingEngine(PatchitPy):
    """Engine that counts detect() calls (picklable, module level)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.detect_calls = 0

    def detect(self, source):
        self.detect_calls += 1
        return super().detect(source)


def build_corpus(root: Path, files: int, sections: int = 12) -> None:
    """Write ``files`` unique Python files (2/3 vulnerable, 1/3 clean)."""
    root.mkdir(parents=True, exist_ok=True)
    for index in range(files):
        body = _VULNERABLE_BODY if index % 3 else _CLEAN_BODY
        text = "".join(
            body.format(index=index, line=section) for section in range(sections)
        )
        (root / f"module_{index:04d}.py").write_text(text + f"\n# uid {index}\n")


def run_project_scan_benchmark(
    corpus_root: Path, files: int = 160, jobs: int = 4, sections: int = 12
) -> Dict[str, float]:
    """Build a corpus and time cold-serial / cold-parallel / warm scans."""
    corpus = corpus_root / "corpus"
    build_corpus(corpus, files=files, sections=sections)

    serial_scanner = ProjectScanner()
    t0 = time.perf_counter()
    serial = serial_scanner.scan(corpus, jobs=1)
    cold_serial = time.perf_counter() - t0

    parallel_scanner = ProjectScanner()
    t0 = time.perf_counter()
    parallel = parallel_scanner.scan(corpus, jobs=jobs, processes=True)
    cold_parallel = time.perf_counter() - t0

    assert [f.path for f in serial.files] == [f.path for f in parallel.files]
    assert [
        [fi.to_dict() for fi in f.findings] for f in serial.files
    ] == [[fi.to_dict() for fi in f.findings] for f in parallel.files]

    counting = CountingEngine()
    cached_scanner = ProjectScanner(engine=counting)
    t0 = time.perf_counter()
    cold_cached = cached_scanner.scan(corpus, use_cache=True)
    cold_cache_time = time.perf_counter() - t0
    cold_detect_calls = counting.detect_calls

    counting.detect_calls = 0
    t0 = time.perf_counter()
    warm = cached_scanner.scan(corpus, use_cache=True)
    warm_time = time.perf_counter() - t0

    assert warm.total_findings == serial.total_findings
    assert cold_cached.cache_misses == files

    collector = ScanMetrics()
    instrumented_scanner = ProjectScanner(metrics=collector)
    t0 = time.perf_counter()
    instrumented = instrumented_scanner.scan(corpus, jobs=1)
    instrumented_serial = time.perf_counter() - t0

    assert instrumented.total_findings == serial.total_findings
    assert collector.counters["detect_calls"] == files

    recorder = TraceRecorder()
    traced_scanner = ProjectScanner(trace=recorder)
    t0 = time.perf_counter()
    traced = traced_scanner.scan(corpus, jobs=1)
    traced_serial = time.perf_counter() - t0

    assert traced.total_findings == serial.total_findings
    assert recorder.events, "traced scan emitted no events"

    return {
        "files": files,
        "jobs": jobs,
        "cpus": _available_cpus(),
        "findings": serial.total_findings,
        "cold_serial_s": cold_serial,
        "cold_parallel_s": cold_parallel,
        "cold_cached_s": cold_cache_time,
        "warm_s": warm_time,
        "instrumented_serial_s": instrumented_serial,
        "traced_serial_s": traced_serial,
        "trace_events": len(recorder.events),
        "parallel_speedup": cold_serial / cold_parallel,
        "warm_speedup": cold_serial / warm_time,
        "stats_overhead": instrumented_serial / cold_serial,
        "trace_overhead": traced_serial / cold_serial,
        "cold_detect_calls": cold_detect_calls,
        "warm_detect_calls": counting.detect_calls,
        "warm_cache_hits": warm.cache_hits,
        "metrics": metrics_to_dict(collector),
    }


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def format_report(results: Dict[str, float]) -> str:
    return (
        f"Project scan benchmark ({results['files']:.0f} files, "
        f"{results['findings']:.0f} findings, jobs={results['jobs']:.0f}, "
        f"cpus={results['cpus']:.0f}):\n"
        f"  cold serial        : {results['cold_serial_s']:.3f}s\n"
        f"  cold parallel      : {results['cold_parallel_s']:.3f}s "
        f"(x{results['parallel_speedup']:.2f})\n"
        f"  cold cached        : {results['cold_cached_s']:.3f}s "
        f"({results['cold_detect_calls']:.0f} detect calls)\n"
        f"  warm cached        : {results['warm_s']:.3f}s "
        f"(x{results['warm_speedup']:.2f}, "
        f"{results['warm_detect_calls']:.0f} detect calls)\n"
        f"  instrumented serial: {results['instrumented_serial_s']:.3f}s "
        f"(x{results['stats_overhead']:.2f} of disabled-collector serial)\n"
        f"  traced serial      : {results['traced_serial_s']:.3f}s "
        f"(x{results['trace_overhead']:.2f} of disabled-trace serial, "
        f"{results['trace_events']:.0f} events)"
    )


def test_project_scan_benchmark(tmp_path):
    """Full benchmark: records cold/parallel/warm numbers as an artifact."""
    results = run_project_scan_benchmark(tmp_path, files=160, jobs=4)
    text = format_report(results)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "project_scan.txt"
    path.write_text(text + "\n")
    json_path = OUTPUT_DIR / "project_scan.json"
    json_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[artifacts written: {path}, {json_path}]")
    print(text)
    assert results["warm_detect_calls"] == 0
    assert results["warm_speedup"] > 2.0
    # the snapshot embedded in the BENCH JSON must carry per-rule data
    assert results["metrics"]["rules"], "instrumented scan recorded no rules"
    assert results["trace_events"] > results["files"]
    # Process-pool wall-clock scaling only manifests with real cores; on
    # single-CPU CI runners the parallel number is reported, not asserted.
    if results["cpus"] >= 4:
        assert results["parallel_speedup"] >= 2.0
