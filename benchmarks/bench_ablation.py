"""E8 — ablation benches over the design choices DESIGN.md calls out:
guards, import insertion, standardization, and ruleset size."""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.ablation import (
    guards_ablation,
    import_insertion_ablation,
    ruleset_size_ablation,
    standardization_ablation,
)


def test_guards_ablation(artifact_dir, benchmark):
    result = benchmark.pedantic(guards_ablation, rounds=1, iterations=1)
    lines = ["Guard ablation (veto conditions on detection rules):"]
    for label, matrix in result.items():
        lines.append(
            f"  {label:15s} P={matrix.precision:.3f} R={matrix.recall:.3f} F1={matrix.f1:.3f}"
        )
    write_artifact(artifact_dir, "ablation_guards.txt", "\n".join(lines))
    assert result["with-guards"].precision > result["without-guards"].precision


def test_import_insertion_ablation(artifact_dir, benchmark):
    result = benchmark.pedantic(import_insertion_ablation, rounds=1, iterations=1)
    text = (
        "Import-insertion ablation:\n"
        f"  patched samples needing new imports : {result.patched_samples}\n"
        f"  dangling imports WITHOUT insertion  : {result.missing_import_samples_without_insertion}\n"
        f"  dangling imports WITH insertion     : {result.missing_import_samples_with_insertion}"
    )
    write_artifact(artifact_dir, "ablation_imports.txt", text)
    assert (
        result.missing_import_samples_without_insertion
        > result.missing_import_samples_with_insertion
    )


def test_standardization_ablation(artifact_dir, benchmark):
    result = benchmark.pedantic(standardization_ablation, rounds=1, iterations=1)
    text = (
        "Standardization ablation (mean LCS coverage of seed pairs):\n"
        f"  with var# standardization : {result.mean_lcs_ratio_standardized:.3f}\n"
        f"  raw identifiers           : {result.mean_lcs_ratio_raw:.3f}\n"
        f"  improvement               : x{result.improvement:.2f} over {result.pairs} pairs"
    )
    write_artifact(artifact_dir, "ablation_standardization.txt", text)
    assert result.improvement > 1.0


def test_ruleset_size_ablation(artifact_dir, benchmark):
    result = benchmark.pedantic(ruleset_size_ablation, rounds=1, iterations=1)
    lines = ["Ruleset-size ablation (default 85 rules vs extended catalog):"]
    for label, matrix in result.items():
        lines.append(
            f"  {label:11s} P={matrix.precision:.3f} R={matrix.recall:.3f} F1={matrix.f1:.3f}"
        )
    write_artifact(artifact_dir, "ablation_ruleset.txt", "\n".join(lines))
    assert result["extended"].recall >= result["default-85"].recall
