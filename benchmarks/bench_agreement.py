"""Inter-tool agreement analysis — where the seven tools agree/disagree."""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.agreement import agreement_matrix, render_agreement
from repro.evaluation.harness import default_tools


def test_agreement_matrix(flat_samples, artifact_dir, benchmark):
    tools = default_tools()

    def measure():
        verdicts = {
            name: {s.sample_id: tool.is_vulnerable(s) for s in flat_samples}
            for name, tool in tools.items()
        }
        return agreement_matrix(verdicts, [s.sample_id for s in flat_samples])

    matrix = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_artifact(artifact_dir, "tool_agreement.txt", render_agreement(matrix))

    def kappa(a, b):
        return matrix[(min(a, b), max(a, b))].kappa

    # the static analyzers share error modes (parse failures, similar
    # rules); LLM reviewers behave more like each other than like them
    assert kappa("bandit", "codeql") > kappa("bandit", "claude-3.7")
    assert kappa("chatgpt-4o", "gemini-2.0") > kappa("chatgpt-4o", "bandit")
