"""E10 — engine performance: throughput scaling with rule count and
corpus size (the 'lightweight' claim of §II-B)."""

from __future__ import annotations

from conftest import write_artifact

from repro.core import PatchitPy
from repro.core.rules import RuleSet, default_ruleset, extended_ruleset


def _subset(rules, count):
    return RuleSet(list(rules)[:count])


def test_detection_throughput_85_rules(flat_samples, benchmark):
    engine = PatchitPy()
    subset = flat_samples[:100]

    def run():
        return sum(1 for s in subset if engine.is_vulnerable(s.source))

    benchmark(run)


def test_detection_throughput_20_rules(flat_samples, benchmark):
    engine = PatchitPy(rules=_subset(default_ruleset(), 20))
    subset = flat_samples[:100]
    benchmark(lambda: sum(1 for s in subset if engine.is_vulnerable(s.source)))


def test_detection_throughput_extended_rules(flat_samples, benchmark):
    engine = PatchitPy(rules=extended_ruleset())
    subset = flat_samples[:100]
    benchmark(lambda: sum(1 for s in subset if engine.is_vulnerable(s.source)))


def test_patch_throughput(flat_samples, benchmark):
    engine = PatchitPy()
    vulnerable = [s for s in flat_samples if s.is_vulnerable][:50]
    benchmark(lambda: [engine.patch(s.source).patched for s in vulnerable])


def test_scaling_artifact(flat_samples, artifact_dir, benchmark):
    import time

    def measure():
        rows = []
        for label, rules in (
            ("20 rules", _subset(default_ruleset(), 20)),
            ("85 rules (default)", default_ruleset()),
            ("109 rules (extended)", extended_ruleset()),
        ):
            engine = PatchitPy(rules=rules)
            started = time.perf_counter()
            for sample in flat_samples:
                engine.is_vulnerable(sample.source)
            elapsed = time.perf_counter() - started
            rows.append((label, len(flat_samples) / elapsed))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Engine throughput (samples/second, single thread):"]
    for label, rate in rows:
        lines.append(f"  {label:22s} {rate:8.0f} samples/s")
    write_artifact(artifact_dir, "engine_throughput.txt", "\n".join(lines))


def test_lsp_interactive_latency(benchmark):
    """Latency of one didChange→diagnostics cycle (the IDE loop)."""
    from repro.ide.protocol import LanguageServer

    server = LanguageServer()
    uri = "file:///bench.py"
    source = (
        "import pickle\nfrom flask import Flask, request\n\napp = Flask(__name__)\n\n"
        '@app.route("/x", methods=["POST"])\ndef x():\n'
        "    state = pickle.loads(request.data)\n"
        '    return f"<p>{state}</p>"\n'
    )
    server.did_open(uri, source)
    benchmark(lambda: server.did_change(uri, source))


def test_extension_selection_latency(benchmark):
    """Latency of one selection assessment in the VS Code-style flow."""
    from repro.ide import PatchitPyExtension, TextDocument

    source = "import hashlib\n\n" + "\n".join(
        f"def f{i}(x):\n    return hashlib.sha256(x)" for i in range(40)
    ) + "\nweak = hashlib.md5(data)\n"

    def run():
        document = TextDocument(source)
        return PatchitPyExtension().assess_selection(document)

    session = benchmark(run)
    assert session.findings


def test_prefilter_ablation(flat_samples, artifact_dir, benchmark):
    """Literal prefiltering on/off (the production-scanner optimization)."""
    import time

    from repro.core import PatchitPy, matching

    engine = PatchitPy()

    def measure():
        for sample in flat_samples[:10]:
            engine.is_vulnerable(sample.source)  # warm caches
        t0 = time.perf_counter()
        for sample in flat_samples:
            engine.is_vulnerable(sample.source)
        with_prefilter = time.perf_counter() - t0

        original = matching._prefilter_for
        matching._prefilter_for = lambda rule: None
        try:
            t0 = time.perf_counter()
            for sample in flat_samples:
                engine.is_vulnerable(sample.source)
            without_prefilter = time.perf_counter() - t0
        finally:
            matching._prefilter_for = original
        return with_prefilter, without_prefilter

    with_pf, without_pf = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        "Literal-prefilter ablation (609-sample detection sweep):\n"
        f"  with prefilter    : {with_pf:.3f}s\n"
        f"  without prefilter : {without_pf:.3f}s\n"
        f"  speedup           : x{without_pf / with_pf:.2f}"
    )
    write_artifact(artifact_dir, "prefilter_ablation.txt", text)
    assert with_pf < without_pf
