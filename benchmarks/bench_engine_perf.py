"""E10 — engine performance: throughput scaling with rule count and
corpus size (the 'lightweight' claim of §II-B), plus the warm
single-file latency benchmark for the three dispatch tiers.

``run_engine_perf_benchmark`` times the grouped tier (``PatchitPy()``,
default) against the indexed tier (``use_grouped=False``, the PR 5
path) and the naive tier (``use_index=False``) on the clean-heavy
corpus from :mod:`bench_candidate_index`, records warm per-``detect``
latency quantiles through :class:`~repro.observability.LatencyHistogram`,
asserts the three tiers produce byte-identical findings, and writes
``benchmarks/output/engine_perf.{txt,json}``; CI uploads the JSON and
``scripts/check_bench_regression.py --engine-artifact`` gates on
``grouped_vs_indexed_speedup``.  Like the candidate-index benchmark it
is importable without pytest so the tier-1 suite runs it in smoke mode
(tests/test_groupcompile.py).
"""

from __future__ import annotations

import importlib.util
import json
import time
from pathlib import Path
from typing import Dict

from repro.core import PatchitPy
from repro.core.rules import RuleSet, default_ruleset, extended_ruleset
from repro.observability import LatencyHistogram

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def _subset(rules, count):
    return RuleSet(list(rules)[:count])


def _candidate_bench():
    """The sibling candidate-index benchmark module (corpus generator).

    Loaded by path so this works both under pytest (benchmarks/ rootdir)
    and when the tier-1 suite imports this module from tests/.
    """
    path = Path(__file__).resolve().parent / "bench_candidate_index.py"
    spec = importlib.util.spec_from_file_location("bench_candidate_index", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_engine_perf_benchmark(
    files: int = 120, sections: int = 10, repeats: int = 3
) -> Dict[str, float]:
    """Warm single-file latency across the three dispatch tiers.

    Returns a BENCH dict with best-of totals, per-``detect`` latency
    quantiles (p50/p95/p99 seconds) for the grouped and indexed tiers,
    the ``grouped_vs_indexed_speedup`` headline the CI gate reads, and
    the grouped tier's cache/fold counters.  Asserts the three tiers'
    findings are byte-identical over the whole corpus first — the
    speedup is only meaningful if the tiers agree.
    """
    sources = _candidate_bench()._sources(files, sections)

    grouped = PatchitPy()
    indexed = PatchitPy(use_grouped=False)
    naive = PatchitPy(use_index=False)
    for engine in (grouped, indexed, naive):
        engine.warmup()

    findings = 0
    for source in sources:
        from_grouped = [f.to_dict() for f in grouped.detect(source)]
        assert from_grouped == [f.to_dict() for f in indexed.detect(source)]
        assert from_grouped == [f.to_dict() for f in naive.detect(source)]
        findings += len(from_grouped)

    def _timed_pass(engine, histogram=None):
        clock = time.perf_counter
        if histogram is None:
            t0 = clock()
            for source in sources:
                engine.detect(source)
            return clock() - t0
        t0 = clock()
        for source in sources:
            started = clock()
            engine.detect(source)
            histogram.observe(clock() - started)
        return clock() - t0

    def _best_of(engine, histogram=None):
        return min(_timed_pass(engine, histogram) for _ in range(repeats))

    # The equivalence sweep above already warmed every engine (plan
    # memo, candidate index, regex caches); these passes are all-warm.
    grouped_hist = LatencyHistogram()
    indexed_hist = LatencyHistogram()
    grouped_total = _best_of(grouped, grouped_hist)
    indexed_total = _best_of(indexed, indexed_hist)
    naive_total = _best_of(naive)

    cache = grouped.rules.candidate_index().grouped_stats()
    index = grouped.rules.candidate_index()
    grouped_p50, grouped_p95, grouped_p99 = grouped_hist.quantiles((0.5, 0.95, 0.99))
    indexed_p50, indexed_p95, indexed_p99 = indexed_hist.quantiles((0.5, 0.95, 0.99))
    return {
        "files": files,
        "findings": findings,
        "grouped_total_s": grouped_total,
        "indexed_total_s": indexed_total,
        "naive_total_s": naive_total,
        "grouped_vs_indexed_speedup": indexed_total / grouped_total,
        "grouped_vs_naive_speedup": naive_total / grouped_total,
        "grouped_p50_s": grouped_p50,
        "grouped_p95_s": grouped_p95,
        "grouped_p99_s": grouped_p99,
        "indexed_p50_s": indexed_p50,
        "indexed_p95_s": indexed_p95,
        "indexed_p99_s": indexed_p99,
        "grouped_cache_hits": cache["hits"],
        "grouped_cache_misses": cache["misses"],
        "plan_hits": cache["plan_hits"],
        "plan_misses": cache["plan_misses"],
        "fold_computes": index.fold_computes,
        "fold_reuses": index.fold_reuses,
    }


def format_engine_perf_report(results: Dict[str, float]) -> str:
    return (
        f"Engine warm single-file latency ({results['files']:.0f} files, "
        f"{results['findings']:.0f} findings, best-of totals):\n"
        f"  grouped tier : {results['grouped_total_s'] * 1000:7.1f}ms  "
        f"p50 {results['grouped_p50_s'] * 1e6:6.0f}us  "
        f"p95 {results['grouped_p95_s'] * 1e6:6.0f}us\n"
        f"  indexed tier : {results['indexed_total_s'] * 1000:7.1f}ms  "
        f"p50 {results['indexed_p50_s'] * 1e6:6.0f}us  "
        f"p95 {results['indexed_p95_s'] * 1e6:6.0f}us\n"
        f"  naive tier   : {results['naive_total_s'] * 1000:7.1f}ms\n"
        f"  grouped vs indexed: x{results['grouped_vs_indexed_speedup']:.2f}"
        f"   grouped vs naive: x{results['grouped_vs_naive_speedup']:.2f}\n"
        f"  grouped caches: {results['grouped_cache_misses']:.0f} compiled / "
        f"{results['grouped_cache_hits']:.0f} reused, plan memo "
        f"{results['plan_hits']:.0f} hits / {results['plan_misses']:.0f} misses, "
        f"fold {results['fold_reuses']:.0f} reuses"
    )


def test_engine_perf_benchmark():
    """Full benchmark: records the three-tier numbers as an artifact.

    The acceptance claim of the grouped-dispatch PR: the warm grouped
    tier beats the PR 5 indexed tier by at least x1.5 on the
    clean-heavy corpus.
    """
    results = run_engine_perf_benchmark(files=120, sections=10)
    text = format_engine_perf_report(results)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "engine_perf.txt"
    path.write_text(text + "\n")
    json_path = OUTPUT_DIR / "engine_perf.json"
    json_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[artifacts written: {path}, {json_path}]")
    print(text)
    assert results["grouped_vs_indexed_speedup"] >= 1.5
    assert results["grouped_vs_naive_speedup"] >= 1.5


def test_detection_throughput_85_rules(flat_samples, benchmark):
    engine = PatchitPy()
    subset = flat_samples[:100]

    def run():
        return sum(1 for s in subset if engine.is_vulnerable(s.source))

    benchmark(run)


def test_detection_throughput_20_rules(flat_samples, benchmark):
    engine = PatchitPy(rules=_subset(default_ruleset(), 20))
    subset = flat_samples[:100]
    benchmark(lambda: sum(1 for s in subset if engine.is_vulnerable(s.source)))


def test_detection_throughput_extended_rules(flat_samples, benchmark):
    engine = PatchitPy(rules=extended_ruleset())
    subset = flat_samples[:100]
    benchmark(lambda: sum(1 for s in subset if engine.is_vulnerable(s.source)))


def test_patch_throughput(flat_samples, benchmark):
    engine = PatchitPy()
    vulnerable = [s for s in flat_samples if s.is_vulnerable][:50]
    benchmark(lambda: [engine.patch(s.source).patched for s in vulnerable])


def test_scaling_artifact(flat_samples, artifact_dir, benchmark):
    from conftest import write_artifact

    def measure():
        rows = []
        for label, rules in (
            ("20 rules", _subset(default_ruleset(), 20)),
            ("85 rules (default)", default_ruleset()),
            ("109 rules (extended)", extended_ruleset()),
        ):
            engine = PatchitPy(rules=rules)
            started = time.perf_counter()
            for sample in flat_samples:
                engine.is_vulnerable(sample.source)
            elapsed = time.perf_counter() - started
            rows.append((label, len(flat_samples) / elapsed))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Engine throughput (samples/second, single thread):"]
    for label, rate in rows:
        lines.append(f"  {label:22s} {rate:8.0f} samples/s")
    write_artifact(artifact_dir, "engine_throughput.txt", "\n".join(lines))


def test_lsp_interactive_latency(benchmark):
    """Latency of one didChange→diagnostics cycle (the IDE loop)."""
    from repro.ide.protocol import LanguageServer

    server = LanguageServer()
    uri = "file:///bench.py"
    source = (
        "import pickle\nfrom flask import Flask, request\n\napp = Flask(__name__)\n\n"
        '@app.route("/x", methods=["POST"])\ndef x():\n'
        "    state = pickle.loads(request.data)\n"
        '    return f"<p>{state}</p>"\n'
    )
    server.did_open(uri, source)
    benchmark(lambda: server.did_change(uri, source))


def test_extension_selection_latency(benchmark):
    """Latency of one selection assessment in the VS Code-style flow."""
    from repro.ide import PatchitPyExtension, TextDocument

    source = "import hashlib\n\n" + "\n".join(
        f"def f{i}(x):\n    return hashlib.sha256(x)" for i in range(40)
    ) + "\nweak = hashlib.md5(data)\n"

    def run():
        document = TextDocument(source)
        return PatchitPyExtension().assess_selection(document)

    session = benchmark(run)
    assert session.findings


def test_prefilter_ablation(flat_samples, artifact_dir, benchmark):
    """Literal prefiltering on/off (the production-scanner optimization)."""
    from conftest import write_artifact

    from repro.core import PatchitPy, matching

    engine = PatchitPy()

    def measure():
        for sample in flat_samples[:10]:
            engine.is_vulnerable(sample.source)  # warm caches
        t0 = time.perf_counter()
        for sample in flat_samples:
            engine.is_vulnerable(sample.source)
        with_prefilter = time.perf_counter() - t0

        original = matching._prefilter_for
        matching._prefilter_for = lambda rule: None
        try:
            t0 = time.perf_counter()
            for sample in flat_samples:
                engine.is_vulnerable(sample.source)
            without_prefilter = time.perf_counter() - t0
        finally:
            matching._prefilter_for = original
        return with_prefilter, without_prefilter

    with_pf, without_pf = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        "Literal-prefilter ablation (609-sample detection sweep):\n"
        f"  with prefilter    : {with_pf:.3f}s\n"
        f"  without prefilter : {without_pf:.3f}s\n"
        f"  speedup           : x{without_pf / with_pf:.2f}"
    )
    write_artifact(artifact_dir, "prefilter_ablation.txt", text)
    assert with_pf < without_pf
