"""E12 — the scan server's reason to exist: warm requests vs cold CLI.

Every ``patchitpy`` CLI invocation pays interpreter start, catalog
import/compilation and cache open before the first byte of analysis;
the daemon pays them once at startup.  This benchmark quantifies the
difference on the same snippet:

- **cold CLI** — ``python -m repro.cli <file>`` as a subprocess, median
  of several runs (the per-invocation cost an IDE shell-out pays);
- **warm server** — ``POST /v1/analyze`` against a running
  :class:`~repro.server.PatchitPyServer` over a keep-alive connection,
  median of many requests after one discarded warmup call;
- **warm batch** — ``POST /v1/batch`` throughput for the same snippet,
  amortizing HTTP framing across items.

The acceptance gate of the server PR is pinned here: the warm request
must beat the cold CLI.  Artifacts: ``server.txt`` (human table) and a
BENCH JSON (``server.json``).

``run_server_benchmark`` is importable without pytest so the tier-1
suite can run it in smoke mode (tests/test_server.py exercises the
endpoints themselves; this file owns the latency claim).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict

import repro
from repro import BackgroundServer, PatchitPyServer, ServerClient, ServerConfig

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

SNIPPET = """\
import hashlib
import pickle
import subprocess


def load_session(blob):
    return pickle.loads(blob)


def fingerprint(secret_value):
    return hashlib.md5(secret_value).hexdigest()


def run(cmd):
    return subprocess.call(cmd, shell=True)
"""


def _cold_cli_seconds(target: Path, runs: int) -> float:
    """Median wall time of a full CLI invocation on ``target``."""
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    samples = []
    for _ in range(runs):
        t0 = time.perf_counter()
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", str(target)],
            capture_output=True,
            text=True,
            env=env,
        )
        samples.append(time.perf_counter() - t0)
        assert result.returncode == 1, result.stderr  # findings reported
    return statistics.median(samples)


def run_server_benchmark(
    work_dir: Path, cli_runs: int = 5, warm_requests: int = 50, batch_size: int = 32
) -> Dict[str, float]:
    """Time cold-CLI vs warm-server analysis of the same snippet."""
    target = work_dir / "generated_snippet.py"
    target.write_text(SNIPPET)

    cold_cli_s = _cold_cli_seconds(target, cli_runs)

    server = PatchitPyServer(config=ServerConfig(port=0))
    with BackgroundServer(server) as handle:
        with ServerClient(port=handle.port) as client:
            first = client.analyze(SNIPPET)  # connection + first-request warmup
            assert first["vulnerable"] is True
            samples = []
            for _ in range(warm_requests):
                t0 = time.perf_counter()
                payload = client.analyze(SNIPPET)
                samples.append(time.perf_counter() - t0)
                assert payload["vulnerable"] is True
            warm_request_s = statistics.median(samples)
            # Tail percentiles, client-observed: what an IDE plugin's
            # worst keystroke actually waits.  n=100 quantile cut points
            # give exact p50/p95/p99 ranks for any sample size.
            cuts = statistics.quantiles(samples, n=100, method="inclusive")
            warm_p50_s, warm_p95_s, warm_p99_s = cuts[49], cuts[94], cuts[98]

            t0 = time.perf_counter()
            batch = client.batch([SNIPPET] * batch_size)
            batch_wall_s = time.perf_counter() - t0
            assert batch["failed"] == 0 and batch["count"] == batch_size

            health = client.healthz()

    return {
        "cli_runs": cli_runs,
        "warm_requests": warm_requests,
        "batch_size": batch_size,
        "cold_cli_s": cold_cli_s,
        "warm_request_s": warm_request_s,
        "warm_analyze_p50_s": warm_p50_s,
        "warm_analyze_p95_s": warm_p95_s,
        "warm_analyze_p99_s": warm_p99_s,
        "warm_batch_wall_s": batch_wall_s,
        "warm_batch_per_item_s": batch_wall_s / batch_size,
        "warm_speedup": cold_cli_s / warm_request_s,
        "server_requests_total": health["requests_total"],
        "rules": health["rules"],
    }


def format_report(results: Dict[str, float]) -> str:
    return (
        f"Scan server benchmark ({results['rules']:.0f} rules):\n"
        f"  cold CLI invocation : {results['cold_cli_s'] * 1000:.1f}ms "
        f"(median of {results['cli_runs']:.0f})\n"
        f"  warm POST /v1/analyze: {results['warm_request_s'] * 1000:.2f}ms "
        f"(median of {results['warm_requests']:.0f}, "
        f"x{results['warm_speedup']:.0f} vs cold CLI)\n"
        f"  warm analyze tails  : p50 {results['warm_analyze_p50_s'] * 1000:.2f}ms / "
        f"p95 {results['warm_analyze_p95_s'] * 1000:.2f}ms / "
        f"p99 {results['warm_analyze_p99_s'] * 1000:.2f}ms\n"
        f"  warm POST /v1/batch : {results['warm_batch_per_item_s'] * 1000:.2f}"
        f"ms/item ({results['batch_size']:.0f} items in "
        f"{results['warm_batch_wall_s'] * 1000:.1f}ms)"
    )


def test_server_benchmark(tmp_path):
    """Full benchmark: records warm-vs-cold numbers as an artifact."""
    results = run_server_benchmark(tmp_path)
    text = format_report(results)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "server.txt"
    path.write_text(text + "\n")
    json_path = OUTPUT_DIR / "server.json"
    json_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[artifacts written: {path}, {json_path}]")
    print(text)
    # the acceptance gate: a warm server request beats a cold CLI run —
    # and not just at the median: the p95 tail must beat it too, which
    # is what scripts/check_bench_regression.py --server-artifact pins.
    assert results["warm_request_s"] < results["cold_cli_s"]
    assert results["warm_speedup"] > 1.0
    assert results["warm_analyze_p95_s"] < results["cold_cli_s"]
