"""E3 — §III-B generation statistics: vulnerable rates, CWE distribution,
and the simulated three-evaluator manual process."""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.manual import run_manual_evaluation
from repro.evaluation.tables import generation_stats
from repro.generators import generate_all_models


def test_generation_stats_artifact(case_study, artifact_dir, benchmark):
    benchmark.pedantic(lambda: generate_all_models(), rounds=3, iterations=1)

    text = generation_stats(case_study)
    reference = (
        "\nPaper reference: Copilot 169/203 (84%), Claude 126/203 (62%), "
        "DeepSeek 166/203 (82%); 76% overall; 63 distinct CWEs; top CWEs "
        "include CWE-502/522/434/089/200; ~3% evaluator discrepancies."
    )
    write_artifact(artifact_dir, "generation_stats.txt", text + reference)

    assert case_study.vulnerable_counts == {"copilot": 169, "claude": 126, "deepseek": 166}
    assert len(case_study.cwe_frequency) == 63


def test_manual_evaluation_speed(flat_samples, benchmark):
    result = benchmark(lambda: run_manual_evaluation(flat_samples))
    assert result.consensus_rate == 1.0
