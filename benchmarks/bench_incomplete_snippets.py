"""E9 — the §II claim: pattern matching keeps working on the incomplete
snippets that defeat AST-based analyzers."""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation.ablation import incomplete_snippet_study


def test_incomplete_snippet_study(artifact_dir, benchmark):
    rows = benchmark.pedantic(incomplete_snippet_study, rounds=1, iterations=1)
    lines = [
        "Recall on vulnerable samples, split by parseability:",
        f"  {'tool':10s} {'parseable':>10s} {'incomplete':>11s}",
    ]
    for row in rows:
        lines.append(
            f"  {row.tool:10s} {row.recall_parseable:10.2f} {row.recall_incomplete:11.2f}"
        )
    lines.append(
        "\nAST-based tools (codeql, bandit) cannot analyze the incomplete "
        "snippets at all; PatchitPy's regex rules barely notice."
    )
    write_artifact(artifact_dir, "incomplete_snippets.txt", "\n".join(lines))

    by_tool = {row.tool: row for row in rows}
    assert by_tool["codeql"].recall_incomplete == 0.0
    assert by_tool["bandit"].recall_incomplete == 0.0
    assert by_tool["patchitpy"].recall_incomplete >= 0.75
