"""Shared benchmark fixtures.

The full case study is executed once per benchmark session; each benchmark
module times its own slice of the pipeline and writes the regenerated
table/figure to ``benchmarks/output/`` so the artifacts survive pytest's
output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def case_study():
    from repro.evaluation import run_case_study

    return run_case_study()


@pytest.fixture(scope="session")
def flat_samples(case_study):
    return case_study.flat_samples()


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(directory: Path, name: str, text: str) -> None:
    path = directory / name
    path.write_text(text + "\n")
    print(f"\n[artifact written: {path}]")
    print(text)
