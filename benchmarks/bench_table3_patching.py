"""E5 — Table III: repair rates for PatchitPy and the LLM patchers.

Also reports the paper's side observation that Semgrep and Bandit only
*suggest* fixes (≈19 % / 17 % of their detections) without modifying code.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.baselines import MiniBandit, MiniSemgrep
from repro.core import PatchitPy
from repro.evaluation.tables import table3_patching


def test_table3_artifact(case_study, artifact_dir, benchmark):
    engine = PatchitPy()
    vulnerable = [s for s in case_study.flat_samples() if s.is_vulnerable][:120]

    def patch_batch():
        return sum(1 for s in vulnerable if engine.patch(s.source).applied)

    patched = benchmark(patch_batch)
    assert patched > 60

    ours = case_study.patching["patchitpy"]["all"]
    summary = (
        f"\nPatchitPy (all models): Patched[Det.]={ours.patched_detected:.2f} "
        f"Patched[Tot.]={ours.patched_total:.2f}\n"
        "Paper reference:        Patched[Det.]=0.80 Patched[Tot.]=0.70"
    )
    write_artifact(
        artifact_dir, "table3_patching.txt", table3_patching(case_study) + summary
    )


def test_suggestion_only_rates(case_study, artifact_dir, benchmark):
    samples = case_study.flat_samples()
    semgrep, bandit = MiniSemgrep(), MiniBandit()

    def measure():
        rows = {}
        for name, tool in (("semgrep", semgrep), ("bandit", bandit)):
            detected = suggested = 0
            for sample in samples:
                report = tool.analyze(sample)
                if report.is_vulnerable:
                    detected += 1
                    if report.suggestions:
                        suggested += 1
            rows[name] = suggested / detected if detected else 0.0
        return rows

    rates = benchmark.pedantic(measure, rounds=2, iterations=1)
    text = (
        "Fix-suggestion-only rates (no code modification):\n"
        f"  semgrep: {rates['semgrep']:.0%} of detections (paper: 19%)\n"
        f"  bandit : {rates['bandit']:.0%} of detections (paper: 17%)"
    )
    write_artifact(artifact_dir, "suggestion_rates.txt", text)
    assert 0.10 <= rates["semgrep"] <= 0.30
    assert 0.10 <= rates["bandit"] <= 0.25
