"""E13 — the fleet's reason to exist: shards that share their work.

A single daemon's throughput tops out at its pool; the fleet's claims
are different and this benchmark pins both:

- **throughput scaling** — the same mixed workload pushed through a
  1-worker fleet and a 2-worker fleet; ``scaling_ratio`` is the
  2-worker items/s over the 1-worker items/s.  On a many-core box this
  approaches 2.0; the CI container is 1-CPU, so the regression gate
  (``scripts/check_bench_regression.py --fleet-artifact``) only pins a
  lenient floor proving the router adds no collapse — the real claim on
  1 CPU is the second one;
- **cross-worker warm hits** — worker A scans a snippet; the benchmark
  then asks worker B (directly, on its own loopback port, bypassing the
  ring) for the same bytes and requires ``from_cache: true``: the
  shared content-addressed tier turned A's work into B's hit.
  ``cross_worker_hit`` is the hard gate — it is what makes re-hashing
  after a worker death cheap instead of a re-scan storm.

Artifacts: ``fleet.txt`` (human table) and ``fleet.json`` (the BENCH
JSON the CI gate reads).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict, List

from repro import BackgroundFleet, FleetConfig, FleetRouter, ServerClient
from repro.core.cache import hash_source

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

SNIPPETS: List[str] = [
    "import pickle\n\ndata%d = pickle.loads(blob%d)\n" % (i, i) for i in range(8)
] + [
    "import subprocess\n\nsubprocess.call(cmd%d, shell=True)\n" % i
    for i in range(8)
] + ["result%d = value%d + 1\n" % (i, i) for i in range(8)]


def _fleet_config(workers: int) -> FleetConfig:
    return FleetConfig(
        port=0,
        workers=workers,
        tenant_rate=1_000_000.0,
        tenant_burst=1_000_000.0,
        health_interval_s=0.5,
    )


def _push_workload(client: ServerClient, rounds: int) -> Dict[str, float]:
    """Drive ``rounds`` batches of the mixed workload; return timings."""
    # one discarded warmup round primes every worker's engine and caches
    warmup = client.batch(SNIPPETS)
    assert warmup["failed"] == 0
    walls = []
    items = 0
    for round_index in range(rounds):
        # unique per round so the shared cache cannot absorb the work —
        # this measures analysis throughput, not cache bandwidth
        payload = [
            source.replace("\n", "  # r%d\n" % round_index, 1)
            for source in SNIPPETS
        ]
        t0 = time.perf_counter()
        result = client.batch(payload)
        walls.append(time.perf_counter() - t0)
        assert result["failed"] == 0
        items += result["count"]
    total = sum(walls)
    return {
        "rounds": float(rounds),
        "items": float(items),
        "wall_s": total,
        "items_per_s": items / total if total else 0.0,
        "batch_median_s": statistics.median(walls),
    }


def run_fleet_benchmark(rounds: int = 4) -> Dict[str, float]:
    """Throughput at 1 and 2 workers, plus the cross-worker hit probe."""
    results: Dict[str, float] = {"rounds": float(rounds)}

    with BackgroundFleet(FleetRouter(_fleet_config(1))) as fleet:
        with ServerClient(port=fleet.port) as client:
            one = _push_workload(client, rounds)
    results["one_worker_items_per_s"] = one["items_per_s"]
    results["one_worker_batch_median_s"] = one["batch_median_s"]

    with BackgroundFleet(FleetRouter(_fleet_config(2))) as fleet:
        router = fleet.router
        with ServerClient(port=fleet.port) as client:
            two = _push_workload(client, rounds)

            # ---- cross-worker warm hit, measured directly -------------
            probe = "import pickle\n\ncross_probe = pickle.loads(wire)\n"
            owner_id = router.ring.route(hash_source(probe))
            cold = client.analyze(probe)
            assert cold["vulnerable"] is True
            assert not cold.get("from_cache", False)
            other = next(
                worker
                for worker_id, worker in router.workers.items()
                if worker_id != owner_id
            )
            # ask the NON-owner worker directly on its own port: its only
            # possible source for these bytes is the shared tier
            with ServerClient(port=other.port) as direct:
                t0 = time.perf_counter()
                sibling = direct.analyze(probe)
                results["cross_worker_lookup_s"] = time.perf_counter() - t0
            cross_hit = bool(sibling.get("from_cache", False))
            assert sibling["findings"] == cold["findings"]

    results["two_worker_items_per_s"] = two["items_per_s"]
    results["two_worker_batch_median_s"] = two["batch_median_s"]
    results["scaling_ratio"] = (
        two["items_per_s"] / one["items_per_s"] if one["items_per_s"] else 0.0
    )
    results["cross_worker_hit"] = 1.0 if cross_hit else 0.0
    results["workload_items"] = float(len(SNIPPETS))
    return results


def format_report(results: Dict[str, float]) -> str:
    return (
        "Fleet benchmark "
        f"({results['workload_items']:.0f}-item mixed workload, "
        f"{results['rounds']:.0f} rounds):\n"
        f"  1 worker : {results['one_worker_items_per_s']:.1f} items/s "
        f"(median batch {results['one_worker_batch_median_s'] * 1000:.1f}ms)\n"
        f"  2 workers: {results['two_worker_items_per_s']:.1f} items/s "
        f"(median batch {results['two_worker_batch_median_s'] * 1000:.1f}ms)\n"
        f"  scaling  : x{results['scaling_ratio']:.2f} "
        "(approaches x2 with 2+ free cores; 1-CPU CI only gates a floor)\n"
        f"  shared tier: cross-worker warm hit "
        f"{'served' if results['cross_worker_hit'] else 'MISSED'} in "
        f"{results['cross_worker_lookup_s'] * 1000:.1f}ms"
    )


def test_fleet_benchmark():
    """Full benchmark: scaling + shared-tier numbers as an artifact."""
    results = run_fleet_benchmark()
    text = format_report(results)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "fleet.txt"
    path.write_text(text + "\n")
    json_path = OUTPUT_DIR / "fleet.json"
    json_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[artifacts written: {path}, {json_path}]")
    print(text)
    # Hard gate: the shared tier works — the non-owner worker served
    # bytes it never scanned as a warm hit.
    assert results["cross_worker_hit"] == 1.0
    # Soft floor: adding a worker must not collapse throughput (the CI
    # box is 1-CPU, so near-2x is only reachable on real hardware).
    assert results["scaling_ratio"] > 0.5
