"""Lineage ablation — DevAIC (the detection-only predecessor, §II) vs
PatchitPy: what the rule refinements and the patching phase added."""

from __future__ import annotations

from conftest import write_artifact

from repro.baselines import DevAIC
from repro.metrics import from_verdicts


def test_devaic_vs_patchitpy(case_study, artifact_dir, benchmark):
    samples = case_study.flat_samples()
    devaic = DevAIC()

    def measure():
        return from_verdicts(
            (s.is_vulnerable, devaic.is_vulnerable(s)) for s in samples
        )

    dev = benchmark.pedantic(measure, rounds=2, iterations=1)
    pit = case_study.detection["patchitpy"]["all"]
    text = "\n".join(
        [
            "DevAIC (predecessor) vs PatchitPy on the 609-sample corpus:",
            f"  devaic    P={dev.precision:.2f} R={dev.recall:.2f} "
            f"F1={dev.f1:.2f} A={dev.accuracy:.2f}   (detection-only)",
            f"  patchitpy P={pit.precision:.2f} R={pit.recall:.2f} "
            f"F1={pit.f1:.2f} A={pit.accuracy:.2f}   (+ guards, context, patching)",
            "",
            "The §II-A refinements (mitigation-aware guards, file-scope",
            "prerequisites) convert the inherited recall into higher precision;",
            "the patching phase is entirely new in PatchitPy.",
        ]
    )
    write_artifact(artifact_dir, "lineage_devaic.txt", text)
    assert pit.precision > dev.precision
    assert dev.recall >= pit.recall
