"""E4 — Table II: detection metrics for PatchitPy and all six baselines.

Regenerates the paper's Table II rows (Precision/Recall/F1/Accuracy per
tool per generator) and benchmarks the engine's corpus-scale detection
throughput.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core import PatchitPy
from repro.evaluation.tables import table2_detection


def test_table2_artifact(case_study, artifact_dir, benchmark):
    engine = PatchitPy()
    samples = case_study.flat_samples()

    def detect_all():
        return sum(1 for s in samples if engine.is_vulnerable(s.source))

    flagged = benchmark(detect_all)
    assert flagged > 350

    table = table2_detection(case_study)
    headline = case_study.detection["patchitpy"]["all"]
    summary = (
        f"\nPatchitPy (all models): Precision={headline.precision:.2f} "
        f"Recall={headline.recall:.2f} F1={headline.f1:.2f} "
        f"Accuracy={headline.accuracy:.2f}\n"
        "Paper reference:        Precision=0.97 Recall=0.88 F1=0.93 Accuracy=0.89"
    )
    write_artifact(artifact_dir, "table2_detection.txt", table + summary)


def test_table2_per_tool_verdicts(case_study, benchmark):
    """Benchmark a single-sample verdict (the IDE's interactive latency)."""
    engine = PatchitPy()
    sample = case_study.flat_samples()[0]
    benchmark(lambda: engine.is_vulnerable(sample.source))
