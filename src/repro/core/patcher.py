"""Patch application: ordered span replacement plus import insertion.

Patches are applied back-to-front so earlier spans stay valid; when two
patches target overlapping spans the earlier (higher-priority, catalog
order) one wins and the other is reported as skipped rather than silently
corrupting the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.imports import ImportManager
from repro.types import Patch


@dataclass
class AppliedPatches:
    """Outcome of :func:`apply_patches`."""

    source: str
    applied: List[Patch] = field(default_factory=list)
    skipped: List[Patch] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """True when at least one patch was applied."""
        return bool(self.applied)


def apply_patches(source: str, patches: Sequence[Patch]) -> AppliedPatches:
    """Apply ``patches`` to ``source``, returning the new text and outcome."""
    accepted, skipped = _resolve_overlaps(patches)
    text = source
    for patch in sorted(accepted, key=lambda p: p.span.start, reverse=True):
        text = text[: patch.span.start] + patch.replacement + text[patch.span.end :]
    all_imports: List[str] = []
    for patch in accepted:
        for statement in patch.new_imports:
            if statement not in all_imports:
                all_imports.append(statement)
    if all_imports:
        text = ImportManager(text).insert(all_imports)
    return AppliedPatches(source=text, applied=list(accepted), skipped=list(skipped))


def _resolve_overlaps(patches: Sequence[Patch]) -> Tuple[List[Patch], List[Patch]]:
    accepted: List[Patch] = []
    skipped: List[Patch] = []
    for patch in patches:
        if any(patch.span.overlaps(existing.span) for existing in accepted):
            skipped.append(patch)
        else:
            accepted.append(patch)
    return accepted, skipped
