"""Project-scale scanning: analyze and patch whole directory trees.

The paper evaluates single generated snippets, but a tool developers adopt
must also sweep a repository.  :class:`ProjectScanner` walks a tree,
analyzes every Python file with the engine, aggregates findings per file
and per CWE, and can apply patches in place (writing ``.orig`` backups
when asked).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.engine import PatchitPy
from repro.types import Finding

DEFAULT_EXCLUDED_DIRS = frozenset(
    {".git", ".hg", ".tox", ".venv", "venv", "__pycache__", "node_modules", ".eggs", "build", "dist"}
)


@dataclass
class FileResult:
    """Analysis outcome for one file."""

    path: Path
    findings: List[Finding] = field(default_factory=list)
    patched: bool = False
    applied_patches: int = 0
    error: Optional[str] = None

    @property
    def is_vulnerable(self) -> bool:
        """True when the file produced findings."""
        return bool(self.findings)


@dataclass
class ProjectReport:
    """Aggregated outcome of one scan."""

    root: Path
    files: List[FileResult] = field(default_factory=list)

    @property
    def scanned_count(self) -> int:
        """Files analyzed without I/O errors."""
        return len([f for f in self.files if f.error is None])

    @property
    def vulnerable_files(self) -> List[FileResult]:
        """File results with at least one finding."""
        return [f for f in self.files if f.is_vulnerable]

    @property
    def total_findings(self) -> int:
        """Findings across all files."""
        return sum(len(f.findings) for f in self.files)

    def findings_by_cwe(self) -> Dict[str, int]:
        """CWE id -> finding count, most frequent first."""
        counts: Dict[str, int] = {}
        for result in self.files:
            for finding in result.findings:
                counts[finding.cwe_id] = counts.get(finding.cwe_id, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def summary(self) -> str:
        """Multi-line plain-text scan summary."""
        lines = [
            f"scanned {self.scanned_count} file(s) under {self.root}",
            f"vulnerable files: {len(self.vulnerable_files)}; findings: {self.total_findings}",
        ]
        for cwe, count in list(self.findings_by_cwe().items())[:10]:
            lines.append(f"  {cwe}: {count}")
        errors = [f for f in self.files if f.error]
        if errors:
            lines.append(f"unreadable files: {len(errors)}")
        return "\n".join(lines)


class ProjectScanner:
    """Walks a directory tree and runs the engine on every ``.py`` file."""

    def __init__(
        self,
        engine: Optional[PatchitPy] = None,
        excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
        max_file_bytes: int = 1 << 20,
    ) -> None:
        self.engine = engine if engine is not None else PatchitPy()
        self.excluded_dirs = frozenset(excluded_dirs)
        self.max_file_bytes = max_file_bytes

    # ------------------------------------------------------------ walking

    def python_files(self, root: Path) -> Iterator[Path]:
        """Yield the Python files a scan would visit, sorted per directory."""
        if root.is_file():
            yield root
            return
        for directory, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d not in self.excluded_dirs)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield Path(directory) / name

    # ------------------------------------------------------------ actions

    def scan(self, root: Path, jobs: int = 1) -> ProjectReport:
        """Analyze every file; no modification.

        ``jobs > 1`` analyzes files on a thread pool; results keep the
        deterministic walk order regardless of completion order.
        """
        report = ProjectReport(root=root)
        paths = list(self.python_files(root))
        if jobs <= 1 or len(paths) < 2:
            report.files = [self._analyze_file(path) for path in paths]
            return report
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            report.files = list(pool.map(self._analyze_file, paths))
        return report

    def patch_tree(self, root: Path, backup: bool = True) -> ProjectReport:
        """Patch every vulnerable file in place.

        With ``backup`` a ``<name>.py.orig`` copy of each modified file is
        written beside it.
        """
        report = ProjectReport(root=root)
        for path in self.python_files(root):
            result = self._analyze_file(path)
            report.files.append(result)
            if result.error or not result.findings:
                continue
            source = path.read_text()
            outcome = self.engine.patch(source, result.findings)
            if outcome.patched != source:
                if backup:
                    path.with_suffix(path.suffix + ".orig").write_text(source)
                path.write_text(outcome.patched)
                result.patched = True
                result.applied_patches = len(outcome.applied)
        return report

    # ------------------------------------------------------------ helpers

    def _analyze_file(self, path: Path) -> FileResult:
        result = FileResult(path=path)
        try:
            if path.stat().st_size > self.max_file_bytes:
                result.error = "file too large"
                return result
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as error:
            result.error = str(error)
            return result
        result.findings = self.engine.detect(source)
        return result


def scan_paths(paths: Iterable[Path], engine: Optional[PatchitPy] = None) -> ProjectReport:
    """Scan several roots into one merged report."""
    scanner = ProjectScanner(engine=engine)
    merged: Optional[ProjectReport] = None
    for root in paths:
        report = scanner.scan(root)
        if merged is None:
            merged = report
        else:
            merged.files.extend(report.files)
    if merged is None:
        raise ValueError("no paths given")
    return merged
