"""Project-scale scanning: analyze and patch whole directory trees.

The paper evaluates single generated snippets, but a tool developers adopt
must also sweep a repository.  :class:`ProjectScanner` walks a tree,
analyzes every Python file with the engine, aggregates findings per file
and per CWE, and can apply patches in place (writing ``.orig`` backups
when asked).

Two production features make repeated sweeps cheap:

- **Process parallelism** — ``scan(jobs=N, processes=True)`` fans file
  batches out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Regex matching is pure CPU, so threads are GIL-bound; processes scale
  with cores.  The scanner (engine and rules included) is pickled once
  per worker via the pool initializer, and results come back as the
  ordinary :class:`~repro.types.Finding` dataclasses.  Report order is
  always the deterministic walk order, whatever the completion order.
- **Incremental scanning** — ``scan(use_cache=True)`` consults a
  persistent :class:`~repro.core.cache.ScanCache` keyed by file content
  digest and versioned by the ruleset fingerprint, so a warm scan of an
  unchanged tree performs zero detect calls.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.cache import CACHE_DIR_NAME, ScanCache
from repro.core.engine import PatchitPy
from repro.observability.collector import (
    DEFAULT_SLOW_RULE_BUDGET_MS,
    NULL_METRICS,
    ScanMetrics,
    clock,
)
from repro.observability.trace import NULL_TRACE, TraceRecorder
from repro.types import Finding

DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        ".git",
        ".hg",
        ".tox",
        ".venv",
        "venv",
        "__pycache__",
        "node_modules",
        ".eggs",
        "build",
        "dist",
        CACHE_DIR_NAME,
    }
)


@dataclass
class FileResult:
    """Analysis outcome for one file."""

    path: Path
    findings: List[Finding] = field(default_factory=list)
    patched: bool = False
    applied_patches: int = 0
    error: Optional[str] = None
    from_cache: bool = False
    # Verifier verdicts (repro.core.verify.PatchVerdict) for every patch
    # the engine examined for this file — recorded even when all patches
    # were reverted and the file was left untouched.
    verdicts: List = field(default_factory=list)

    @property
    def is_vulnerable(self) -> bool:
        """True when the file produced findings."""
        return bool(self.findings)

    @property
    def reverted_patches(self) -> int:
        """Patches the verifier rejected and withdrew for this file."""
        return sum(1 for v in self.verdicts if v.reverted)


@dataclass
class ProjectReport:
    """Aggregated outcome of one scan.

    ``metrics`` carries the scan's merged
    :class:`~repro.observability.ScanMetrics` snapshot when the scanner
    ran with an enabled collector; with the default no-op collector it
    stays ``None`` and the report is exactly its pre-observability shape.
    """

    root: Path
    files: List[FileResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    metrics: Optional[ScanMetrics] = None

    @property
    def scanned_count(self) -> int:
        """Files analyzed without I/O errors."""
        return len([f for f in self.files if f.error is None])

    @property
    def vulnerable_files(self) -> List[FileResult]:
        """File results with at least one finding."""
        return [f for f in self.files if f.is_vulnerable]

    @property
    def total_findings(self) -> int:
        """Findings across all files."""
        return sum(len(f.findings) for f in self.files)

    @property
    def verified_patches(self) -> int:
        """Applied patches that passed every verification check."""
        return sum(
            1 for f in self.files for v in f.verdicts if v.ok and not v.reverted
        )

    @property
    def unverified_patches(self) -> int:
        """Patches the verifier rejected (reverted, not shipped)."""
        return sum(1 for f in self.files for v in f.verdicts if not v.ok)

    def verdict_counts(self) -> Dict[str, int]:
        """Verdict status -> count across all files, most frequent first."""
        counts: Dict[str, int] = {}
        for result in self.files:
            for verdict in result.verdicts:
                counts[verdict.status] = counts.get(verdict.status, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def findings_by_cwe(self) -> Dict[str, int]:
        """CWE id -> finding count, most frequent first."""
        counts: Dict[str, int] = {}
        for result in self.files:
            for finding in result.findings:
                counts[finding.cwe_id] = counts.get(finding.cwe_id, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def summary(self) -> str:
        """Multi-line plain-text scan summary."""
        lines = [
            f"scanned {self.scanned_count} file(s) under {self.root}",
            f"vulnerable files: {len(self.vulnerable_files)}; findings: {self.total_findings}",
        ]
        for cwe, count in list(self.findings_by_cwe().items())[:10]:
            lines.append(f"  {cwe}: {count}")
        errors = [f for f in self.files if f.error]
        if errors:
            lines.append(f"unreadable files: {len(errors)}")
        if self.cache_hits or self.cache_misses:
            lines.append(f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)")
        counts = self.verdict_counts()
        if counts:
            parts = ", ".join(f"{status}: {count}" for status, count in counts.items())
            lines.append(f"patch verdicts: {parts}")
            if self.unverified_patches:
                lines.append(
                    f"unverified patches reverted: {self.unverified_patches}"
                )
        return "\n".join(lines)


# One scanner per worker process, installed by the pool initializer so the
# engine (85 compiled rules) is unpickled once per worker, not per file.
_WORKER_SCANNER: Optional["ProjectScanner"] = None


def _worker_init(pickled_scanner: bytes) -> None:
    global _WORKER_SCANNER
    _WORKER_SCANNER = pickle.loads(pickled_scanner)


def _worker_analyze(path: Path) -> "_Analysis":
    assert _WORKER_SCANNER is not None, "worker initializer did not run"
    return _WORKER_SCANNER._analyze_one(path)


# (result, content digest, (mtime_ns, size), per-file metrics snapshot,
# per-file trace buffer); digest/stat are None when the file could not be
# read, the snapshot/buffer are None when the matching collector/recorder
# is disabled.
_Analysis = Tuple[
    FileResult,
    Optional[str],
    Optional[Tuple[int, int]],
    Optional[ScanMetrics],
    Optional[TraceRecorder],
]


class ProjectScanner:
    """Walks a directory tree and runs the engine on every ``.py`` file.

    ``metrics`` is the scan-level
    :class:`~repro.observability.ScanMetrics` collector.  Every file is
    analyzed against its *own* fresh snapshot collector (created only when
    the scan-level collector is enabled) and the snapshots are merged
    into ``self.metrics`` in walk order — the same fold whether the
    snapshots were produced serially, on a thread pool, or in
    ``ProcessPoolExecutor`` workers, which is what makes ``--jobs 1`` and
    ``--jobs 4`` produce identical merged totals.

    ``trace`` is the scan-level
    :class:`~repro.observability.TraceRecorder`.  It follows the same
    per-file-snapshot discipline: each file is traced into its own fresh
    recorder (created only when the scan-level recorder is enabled), the
    buffers travel back with the file results, and they are merged under
    the ``scan`` span in walk order — span ids are content-derived, so
    serial and process-pool scans of the same tree emit byte-identical
    traces modulo timing fields.

    ``slow_rule_budget_ms`` is the per-rule per-file watchdog budget:
    with an enabled metrics collector, any rule spending more than the
    budget on a single file is recorded in the collector's rule-health
    table (breach count + worst-file exemplar).  ``None`` disables the
    watchdog.
    """

    def __init__(
        self,
        engine: Optional[PatchitPy] = None,
        excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
        max_file_bytes: int = 1 << 20,
        metrics: Optional[ScanMetrics] = None,
        trace: Optional[TraceRecorder] = None,
        slow_rule_budget_ms: Optional[float] = DEFAULT_SLOW_RULE_BUDGET_MS,
    ) -> None:
        self.engine = engine if engine is not None else PatchitPy()
        self.excluded_dirs = frozenset(excluded_dirs)
        self.max_file_bytes = max_file_bytes
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.trace = trace if trace is not None else NULL_TRACE
        self.slow_rule_budget_ms = slow_rule_budget_ms

    # ------------------------------------------------------------ walking

    def python_files(self, root: Path) -> Iterator[Path]:
        """Yield the Python files a scan would visit, sorted per directory."""
        if root.is_file():
            yield root
            return
        for directory, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d not in self.excluded_dirs)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield Path(directory) / name

    # ------------------------------------------------------------ actions

    def scan(
        self,
        root: Path,
        jobs: int = 1,
        processes: bool = False,
        use_cache: bool = False,
        cache: Optional[ScanCache] = None,
    ) -> ProjectReport:
        """Analyze every file; no modification.

        ``jobs > 1`` analyzes files in parallel: on a thread pool by
        default, or — with ``processes=True`` — on a process pool that
        sidesteps the GIL for the CPU-bound regex pass.  Either way the
        report keeps the deterministic walk order.  ``use_cache=True``
        reuses (and refreshes) the persistent result cache at the scan
        root, so only changed files are re-analyzed.

        A caller that keeps a cache open across scans (the scan daemon)
        passes it via ``cache=``; it is used instead of opening one and
        is *not* closed here (saves still happen — they are cheap no-ops
        when nothing changed), and the report carries this scan's
        hit/miss deltas rather than the cache's lifetime totals.
        """
        report = ProjectReport(root=root)
        trace = self.trace
        scan_start = clock() if self.metrics.enabled else 0.0
        scan_sid = trace.begin("scan", str(root)) if trace.enabled else ""
        paths = list(self.python_files(root))
        if cache is None and use_cache:
            cache = self.open_cache(root)
        counts_before = _cache_counts(cache)

        slots: List[Optional[FileResult]] = [None] * len(paths)
        pending: List[Tuple[int, Path]] = []
        if cache is None:
            pending = list(enumerate(paths))
        else:
            for index, path in enumerate(paths):
                hit = self._cached_result(cache, path)
                if trace.enabled:
                    if hit is None:
                        outcome = "miss"
                    elif hit.error is not None:
                        outcome = "error"
                    else:
                        outcome = "hit"
                    trace.event("cache-lookup", str(path), outcome=outcome)
                if hit is None:
                    pending.append((index, path))
                else:
                    slots[index] = hit

        if pending:
            outcomes = self._analyze_batch([p for _, p in pending], jobs, processes)
            for (index, path), (result, digest, stat_key, snapshot, buffer) in zip(
                pending, outcomes
            ):
                slots[index] = result
                self.metrics.merge(snapshot)
                trace.merge(buffer, parent=scan_sid or None)
                if cache is not None and digest is not None:
                    cache.store(digest, result.findings, result.error)
                    if stat_key is not None:
                        cache.remember_stat(path, _FakeStat(*stat_key), digest)

        report.files = [slot for slot in slots if slot is not None]
        if cache is not None:
            hits, misses, _ = _cache_delta(cache, counts_before)
            report.cache_hits = hits
            report.cache_misses = misses
            cache.save()
        if trace.enabled:
            trace.end(
                scan_sid,
                files=len(report.files),
                findings=report.total_findings,
                cache_hits=report.cache_hits,
                cache_misses=report.cache_misses,
            )
        self._finish_metrics(report, cache, scan_start, counts_before)
        return report

    def _finish_metrics(
        self,
        report: ProjectReport,
        cache: Optional[ScanCache],
        started: float,
        counts_before: Tuple[int, int, int] = (0, 0, 0),
    ) -> None:
        """Fold scan-level counters into the collector and stamp the report."""
        if not self.metrics.enabled:
            return
        m = self.metrics
        m.count("files_scanned", sum(1 for f in report.files if f.error is None))
        m.count("files_from_cache", sum(1 for f in report.files if f.from_cache))
        m.count("file_errors", sum(1 for f in report.files if f.error is not None))
        if cache is not None:
            hits, misses, stale = _cache_delta(cache, counts_before)
            m.count("cache_hits", hits)
            m.count("cache_misses", misses)
            m.count("cache_stale_hints", stale)
        m.add_time("scan_time_s", clock() - started)
        report.metrics = m

    def patch_tree(
        self,
        root: Path,
        backup: bool = True,
        use_cache: bool = False,
        cache: Optional[ScanCache] = None,
    ) -> ProjectReport:
        """Patch every vulnerable file in place.

        With ``backup`` a ``<name>.py.orig`` copy of each modified file is
        written beside it.  Each file is read exactly once: the patch pass
        reuses the source that detection analyzed (no re-read between
        detect and patch, so no decode/TOCTOU window), and write failures
        are recorded on the file's result instead of aborting the tree.
        With ``use_cache=True`` unchanged files reuse cached detect
        results; ``cache=`` supplies a caller-held open cache instead
        (same contract as :meth:`scan`).
        """
        report = ProjectReport(root=root)
        m = self.metrics
        t = self.trace
        start = clock() if m.enabled else 0.0
        scan_sid = t.begin("scan", str(root)) if t.enabled else ""
        if cache is None and use_cache:
            cache = self.open_cache(root)
        counts_before = _cache_counts(cache)
        for path in self.python_files(root):
            file_start = clock() if m.enabled else 0.0
            result = FileResult(path=path)
            report.files.append(result)
            error, source, digest, stat = self._load(path)
            if error is not None:
                result.error = error
                if t.enabled:
                    t.event("file", str(path), error=error, findings=0)
                if m.enabled:
                    m.time_file(str(path), clock() - file_start)
                continue
            file_sid = t.begin("file", str(path)) if t.enabled else ""
            cached = cache.lookup(digest) if cache is not None else None
            if cached is not None and cached.error is None:
                if t.enabled:
                    t.event("cache-lookup", str(path), outcome="hit")
                result.findings = cached.findings
                result.from_cache = True
            else:
                if t.enabled and cache is not None:
                    t.event("cache-lookup", str(path), outcome="miss")
                if t.enabled:
                    result.findings = self.engine.detect(
                        source, metrics=m if m.enabled else None, trace=t
                    )
                elif m.enabled:
                    result.findings = self.engine.detect(source, metrics=m)
                else:
                    result.findings = self.engine.detect(source)
                if cache is not None:
                    cache.store(digest, result.findings)
            if not result.findings:
                if t.enabled:
                    t.end(file_sid, findings=0)
                if cache is not None and stat is not None:
                    cache.remember_stat(path, stat, digest)
                if m.enabled:
                    m.time_file(str(path), clock() - file_start)
                continue
            outcome = self.engine.patch(
                source,
                result.findings,
                metrics=m if m.enabled else None,
                trace=t if t.enabled else None,
            )
            # Verdicts are recorded before the unchanged-file short-circuit:
            # a file whose every patch was reverted stays byte-identical on
            # disk but must still report why nothing shipped.
            result.verdicts = list(outcome.verdicts)
            if t.enabled:
                t.end(
                    file_sid,
                    findings=len(result.findings),
                    applied=len(outcome.applied),
                    reverted=result.reverted_patches,
                )
            if m.enabled:
                m.time_file(str(path), clock() - file_start)
            if outcome.patched == source:
                continue
            try:
                if backup:
                    path.with_suffix(path.suffix + ".orig").write_text(source)
                path.write_text(outcome.patched)
            except OSError as write_error:
                result.error = str(write_error)
                continue
            result.patched = True
            result.applied_patches = len(outcome.applied)
            if cache is not None:
                cache.forget_path(path)
        if cache is not None:
            hits, misses, _ = _cache_delta(cache, counts_before)
            report.cache_hits = hits
            report.cache_misses = misses
            cache.save()
        if t.enabled:
            t.end(
                scan_sid,
                files=len(report.files),
                findings=report.total_findings,
                patched=sum(1 for f in report.files if f.patched),
            )
        if m.enabled:
            m.count("files_patched", sum(1 for f in report.files if f.patched))
        self._finish_metrics(report, cache, start, counts_before)
        return report

    # ------------------------------------------------------------ caching

    def open_cache(self, root: Path) -> ScanCache:
        """The persistent cache for a scan root (parent dir for file roots)."""
        base = root if root.is_dir() else root.parent
        return ScanCache(base, self.engine.rules.fingerprint())

    def _cached_result(self, cache: ScanCache, path: Path) -> Optional[FileResult]:
        """Cache-only lookup: a FileResult on a hit, ``None`` on a miss.

        Unreadable and oversized files short-circuit to error results here
        (they never reach the analysis pool); undecodable files hit the
        cache by raw content without ever being decoded.
        """
        try:
            stat = path.stat()
            if stat.st_size > self.max_file_bytes:
                return FileResult(path=path, error="file too large")
            digest = cache.stat_digest(path, stat)
            if digest is None:
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError as error:
            return FileResult(path=path, error=str(error))
        entry = cache.lookup(digest)
        if entry is None:
            return None
        cache.remember_stat(path, stat, digest)
        return FileResult(
            path=path, findings=list(entry.findings), error=entry.error, from_cache=True
        )

    # ------------------------------------------------------------ helpers

    def _analyze_batch(
        self, paths: List[Path], jobs: int, processes: bool
    ) -> List[_Analysis]:
        if jobs <= 1 or len(paths) < 2:
            return [self._analyze_one(path) for path in paths]
        if processes and self._prime_index() and self._picklable():
            from concurrent.futures import ProcessPoolExecutor

            chunksize = max(1, -(-len(paths) // (jobs * 4)))
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_worker_init,
                initargs=(pickle.dumps(self),),
            ) as pool:
                return list(pool.map(_worker_analyze, paths, chunksize=chunksize))
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(self._analyze_one, paths))

    def _prime_index(self) -> bool:
        """Warm the engine's caches before workers are forked.

        The scanner is pickled once per worker; a full ``warmup()`` here
        ships the *built* candidate index — and the grouped-alternation
        plans its probes compiled — inside that pickle, so no worker
        pays the compilation again.  Engines without ``warmup`` (custom
        subclasses) fall back to building just the index.  Always
        returns True (it participates in the ``_analyze_batch``
        condition chain purely for ordering).
        """
        warm = getattr(self.engine, "warmup", None)
        if warm is not None:
            warm()
            return True
        if getattr(self.engine, "use_index", False):
            builder = getattr(getattr(self.engine, "rules", None), "candidate_index", None)
            if builder is not None:
                builder()
        return True

    def _picklable(self) -> bool:
        """True when this scanner can be shipped to worker processes.

        Custom engines may carry unpicklable state (e.g. closure-based
        patch builders); those fall back to the thread pool rather than
        crashing the scan.
        """
        try:
            pickle.dumps(self)
            return True
        except Exception:
            return False

    def _load(
        self, path: Path
    ) -> Tuple[Optional[str], Optional[str], Optional[str], Optional[os.stat_result]]:
        """Read+hash a file: ``(error, source, digest, stat)``.

        Undecodable files still return their content digest so the error
        outcome is cacheable; oversized and unreadable files return no
        digest at all.
        """
        try:
            stat = path.stat()
            if stat.st_size > self.max_file_bytes:
                return "file too large", None, None, None
            data = path.read_bytes()
        except OSError as error:
            return str(error), None, None, None
        digest = hashlib.sha256(data).hexdigest()
        try:
            return None, data.decode("utf-8"), digest, stat
        except UnicodeDecodeError as error:
            return str(error), None, digest, stat

    def _analyze_one(self, path: Path) -> _Analysis:
        """Analyze one file into fresh metrics/trace snapshots.

        The snapshots (rather than the shared collector/recorder) are
        what makes the instrumentation safe under thread pools and
        meaningful under process pools: each file's counters and trace
        events travel with its result and are merged by the coordinating
        process in deterministic walk order.  With an enabled collector
        the slow-rule watchdog runs here, against this file's isolated
        per-rule timings.
        """
        snapshot = ScanMetrics() if self.metrics.enabled else None
        buffer = TraceRecorder() if self.trace.enabled else None
        start = clock() if snapshot is not None else 0.0
        result = FileResult(path=path)
        error, source, digest, stat = self._load(path)
        if error is not None:
            result.error = error
            if buffer is not None:
                buffer.event("file", str(path), error=error, findings=0)
            if snapshot is not None:
                snapshot.time_file(str(path), clock() - start)
            # undecodable content is still cacheable by its raw digest
            if digest is not None and stat is not None:
                return result, digest, (stat.st_mtime_ns, stat.st_size), snapshot, buffer
            return result, None, None, snapshot, buffer
        if buffer is not None:
            file_sid = buffer.begin("file", str(path))
            result.findings = self.engine.detect(
                source, metrics=snapshot, trace=buffer
            )
            buffer.end(file_sid, findings=len(result.findings))
        elif snapshot is not None:
            result.findings = self.engine.detect(source, metrics=snapshot)
        else:
            result.findings = self.engine.detect(source)
        if snapshot is not None:
            snapshot.time_file(str(path), clock() - start)
            if self.slow_rule_budget_ms is not None:
                snapshot.flag_slow_rules(str(path), self.slow_rule_budget_ms)
        assert stat is not None and digest is not None
        return result, digest, (stat.st_mtime_ns, stat.st_size), snapshot, buffer

    def _analyze_file(self, path: Path) -> FileResult:
        result, _digest, _stat, _metrics, _trace = self._analyze_one(path)
        return result


def _cache_counts(cache: Optional[ScanCache]) -> Tuple[int, int, int]:
    """Snapshot of a cache's ``(hits, misses, stale_hints)`` counters.

    A fresh per-scan cache starts at zero, so the delta against this
    snapshot equals the lifetime counters; a long-lived cache shared by
    a daemon does not, which is why reports subtract rather than read
    the counters directly.
    """
    if cache is None:
        return (0, 0, 0)
    return (cache.hits, cache.misses, cache.stale_hints)


def _cache_delta(
    cache: ScanCache, before: Tuple[int, int, int]
) -> Tuple[int, int, int]:
    """Counter movement on ``cache`` since a ``_cache_counts`` snapshot."""
    return (
        cache.hits - before[0],
        cache.misses - before[1],
        cache.stale_hints - before[2],
    )


class _FakeStat:
    """Minimal stand-in for ``os.stat_result`` built from worker output."""

    __slots__ = ("st_mtime_ns", "st_size")

    def __init__(self, mtime_ns: int, size: int) -> None:
        self.st_mtime_ns = mtime_ns
        self.st_size = size


def scan_paths(
    paths: Iterable[Path],
    engine: Optional[PatchitPy] = None,
    jobs: int = 1,
    processes: bool = False,
    use_cache: bool = False,
    metrics: Optional[ScanMetrics] = None,
    trace: Optional[TraceRecorder] = None,
    slow_rule_budget_ms: Optional[float] = DEFAULT_SLOW_RULE_BUDGET_MS,
) -> ProjectReport:
    """Scan several roots into one merged report.

    Overlapping roots (e.g. ``repo/`` and ``repo/src/``) are deduplicated
    by resolved file path, so no file is analyzed or counted twice, and
    parallelism/cache/metrics options are forwarded to each root's scan
    (the collector records the work actually performed, so a file reached
    through two roots is counted once per analysis even though it appears
    once in the report).
    """
    scanner = ProjectScanner(
        engine=engine,
        metrics=metrics,
        trace=trace,
        slow_rule_budget_ms=slow_rule_budget_ms,
    )
    merged: Optional[ProjectReport] = None
    seen: set = set()
    for root in paths:
        report = scanner.scan(root, jobs=jobs, processes=processes, use_cache=use_cache)
        fresh: List[FileResult] = []
        for result in report.files:
            try:
                key = result.path.resolve()
            except OSError:
                key = result.path.absolute()
            if key in seen:
                continue
            seen.add(key)
            fresh.append(result)
        if merged is None:
            merged = report
            merged.files = fresh
        else:
            merged.files.extend(fresh)
            merged.cache_hits += report.cache_hits
            merged.cache_misses += report.cache_misses
    if merged is None:
        raise ValueError("no paths given")
    return merged
