"""Human-readable rendering of analysis reports.

The VS Code extension surface (and the CLI) present findings as short
annotated listings; this module renders those from an
:class:`~repro.types.AnalysisReport`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cwe import get_cwe, owasp_category_for
from repro.exceptions import UnknownCWEError
from repro.types import AnalysisReport, Finding, LineIndex


def format_finding(
    finding: Finding, source: str, lines: Optional[LineIndex] = None
) -> str:
    """One-line summary: ``line 12 [CWE-089 SQL Injection] message``.

    ``lines`` lets callers rendering many findings share one
    :class:`~repro.types.LineIndex` instead of re-scanning the source
    per finding; omitted, a throwaway index preserves the old behavior.
    """
    if lines is None:
        lines = LineIndex(source)
    line = lines.line_of(finding.span.start)
    try:
        cwe_name = get_cwe(finding.cwe_id).name
    except UnknownCWEError:
        cwe_name = "Unknown"
    category = owasp_category_for(finding.cwe_id)
    category_code = category.code if category else "???"
    return (
        f"line {line:>3} [{finding.cwe_id} {cwe_name}] ({category_code}, "
        f"{finding.severity}/{finding.confidence}) {finding.message}"
    )


def render_report(report: AnalysisReport) -> str:
    """Multi-line textual report for terminals and pop-ups."""
    lines: List[str] = [f"PatchitPy report — tool: {report.tool}"]
    if report.parse_failed:
        lines.append("note: source does not parse as a full module (pattern mode)")
    if not report.findings:
        lines.append("no vulnerable patterns detected")
        return "\n".join(lines)
    lines.append(f"{len(report.findings)} finding(s):")
    line_index = LineIndex(report.source)
    for finding in report.findings:
        lines.append("  " + format_finding(finding, report.source, line_index))
    if report.patches:
        lines.append(f"{len(report.patches)} patch(es) applied:")
        for patch in report.patches:
            lines.append(f"  {patch.rule_id}: {patch.description}")
    for suggestion in report.suggestions:
        lines.append(f"  suggestion (line {suggestion.line}): {suggestion.comment}")
    return "\n".join(lines)
