"""SARIF 2.1.0 and plain-JSON export of analysis reports.

Real static analyzers (CodeQL, Semgrep, Bandit) interoperate through the
OASIS SARIF format; this module renders an :class:`AnalysisReport` as a
minimal-but-valid SARIF log — one run, one tool driver, rule metadata,
and one result per finding with a physical location — plus a flatter
plain-JSON shape for scripting.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.cwe import get_cwe, owasp_category_for
from repro.exceptions import UnknownCWEError
from repro.types import AnalysisReport, Finding, LineIndex, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS: Dict[Severity, str] = {
    Severity.LOW: "note",
    Severity.MEDIUM: "warning",
    Severity.HIGH: "error",
    Severity.CRITICAL: "error",
}


def _column_of_offset(source: str, offset: int) -> int:
    line_start = source.rfind("\n", 0, offset) + 1
    return offset - line_start + 1


def _rule_metadata(finding: Finding) -> Dict[str, object]:
    try:
        cwe_name = get_cwe(finding.cwe_id).name
    except UnknownCWEError:
        cwe_name = "Unknown weakness"
    category = owasp_category_for(finding.cwe_id)
    tags = [finding.cwe_id]
    if category is not None:
        tags.append(category.code)
    return {
        "id": finding.rule_id,
        "name": finding.rule_id.replace("-", ""),
        "shortDescription": {"text": finding.message},
        "properties": {
            "tags": tags,
            "cwe": finding.cwe_id,
            "cweName": cwe_name,
            "security-severity": {
                Severity.LOW: "3.0",
                Severity.MEDIUM: "5.0",
                Severity.HIGH: "8.0",
                Severity.CRITICAL: "9.5",
            }[finding.severity],
        },
    }


def to_sarif(
    report: AnalysisReport,
    artifact_uri: str = "target.py",
    tool_version: str = "1.0.0",
    metrics=None,
) -> Dict[str, object]:
    """Render ``report`` as a SARIF 2.1.0 log dictionary.

    Findings carrying a provenance record export it under each result's
    ``properties.provenance``, and an enabled ``metrics`` collector embeds
    its snapshot under ``runs[0].invocations[0].properties.metrics`` — so
    one SARIF file carries both the findings and the observability data
    of the scan that produced them.  Reports from a verified patch run
    additionally export every patch's verdict under
    ``runs[0].invocations[0].properties.patchVerdicts``; reports without
    verdicts keep their pre-1.5 shape byte for byte.
    """
    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    results: List[Dict[str, object]] = []
    lines = LineIndex(report.source)

    for finding in report.findings:
        if finding.rule_id not in rule_index:
            rule_index[finding.rule_id] = len(rules)
            rules.append(_rule_metadata(finding))
        start_line = lines.line_of(finding.span.start)
        properties: Dict[str, object] = {
            "cwe": finding.cwe_id,
            "confidence": str(finding.confidence),
            "fixable": finding.fixable,
        }
        if finding.provenance is not None:
            properties["provenance"] = finding.provenance.to_dict()
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": _LEVELS[finding.severity],
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": artifact_uri},
                            "region": {
                                "startLine": start_line,
                                "startColumn": _column_of_offset(
                                    report.source, finding.span.start
                                ),
                                "snippet": {"text": finding.snippet},
                            },
                        }
                    }
                ],
                "properties": properties,
            }
        )

    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": report.tool,
                "version": tool_version,
                "informationUri": "https://github.com/dessertlab/PatchitPy",
                "rules": rules,
            }
        },
        "results": results,
    }
    invocation: Dict[str, object] = {"executionSuccessful": True}
    if report.parse_failed:
        invocation["toolExecutionNotifications"] = [
            {
                "level": "note",
                "message": {
                    "text": "source does not parse as a full module; "
                    "pattern matching was applied to raw text"
                },
            }
        ]
    if metrics is not None and getattr(metrics, "enabled", False):
        invocation.setdefault("properties", {})["metrics"] = metrics.to_dict()
    if report.verdicts:
        invocation.setdefault("properties", {})["patchVerdicts"] = [
            v.to_dict() for v in report.verdicts
        ]
    if report.parse_failed or "properties" in invocation:
        run["invocations"] = [invocation]
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]}


def to_plain_json(report: AnalysisReport, artifact_uri: str = "target.py") -> Dict[str, object]:
    """Flat JSON shape for scripting pipelines.

    A ``patch_verdicts`` key appears only when the report carries
    verifier verdicts, so detection-only output keeps its prior shape.
    """
    lines = LineIndex(report.source)
    data: Dict[str, object] = {
        "tool": report.tool,
        "target": artifact_uri,
        "vulnerable": report.is_vulnerable,
        "findings": [
            {
                "rule": f.rule_id,
                "cwe": f.cwe_id,
                "message": f.message,
                "line": lines.line_of(f.span.start),
                "severity": str(f.severity),
                "confidence": str(f.confidence),
                "fixable": f.fixable,
                "snippet": f.snippet,
            }
            for f in report.findings
        ],
        # canonical Patch shape (repro.types.Patch.to_dict) — the same
        # wire form the server payload uses
        "patches_applied": [p.to_dict() for p in report.patches],
    }
    if report.verdicts:
        data["patch_verdicts"] = [v.to_dict() for v in report.verdicts]
    return data


def review_to_sarif(
    review_report,
    tool_version: str = "1.0.0",
    include_preexisting: bool = False,
    metrics=None,
) -> Dict[str, object]:
    """Render a :class:`repro.core.review.ReviewReport` as SARIF 2.1.0.

    The output is PR-annotation-ready: every result carries
    ``baselineState`` (``new`` for introduced, ``unchanged`` for
    pre-existing, ``absent`` for fixed) and is pinned to the line number
    of the side it lives on — the new side for everything an annotation
    should show.  By default only introduced findings are emitted, which
    is what a review bot posts; ``include_preexisting=True`` adds the
    suppressed pre-existing and fixed results for full-context tooling.
    """
    from repro.core.review import SARIF_BASELINE_STATES, STATUS_INTRODUCED

    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    results: List[Dict[str, object]] = []

    for item in review_report.findings:
        if item.status != STATUS_INTRODUCED and not include_preexisting:
            continue
        finding = item.finding
        if finding.rule_id not in rule_index:
            rule_index[finding.rule_id] = len(rules)
            rules.append(_rule_metadata(finding))
        properties: Dict[str, object] = {
            "cwe": finding.cwe_id,
            "confidence": str(finding.confidence),
            "fixable": finding.fixable,
            "reviewStatus": item.status,
        }
        if item.hunk is not None:
            properties["hunk"] = [item.hunk[0], item.hunk[1]]
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": _LEVELS[finding.severity],
                "message": {"text": finding.message},
                "baselineState": SARIF_BASELINE_STATES[item.status],
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": item.path},
                            "region": {
                                "startLine": item.line,
                                "snippet": {"text": finding.snippet},
                            },
                        }
                    }
                ],
                "properties": properties,
            }
        )

    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": "patchitpy-review",
                "version": tool_version,
                "informationUri": "https://github.com/dessertlab/PatchitPy",
                "rules": rules,
            }
        },
        "results": results,
    }
    invocation: Dict[str, object] = {
        "executionSuccessful": True,
        "properties": {
            "review": {
                "base": review_report.base,
                "head": review_report.head,
                "counts": review_report.counts(),
                "cache_hits": review_report.cache_hits,
                "cache_misses": review_report.cache_misses,
            }
        },
    }
    if metrics is not None and getattr(metrics, "enabled", False):
        invocation["properties"]["metrics"] = metrics.to_dict()
    run["invocations"] = [invocation]
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]}


def dumps_review_sarif(
    review_report, include_preexisting: bool = False, metrics=None
) -> str:
    """Review SARIF log as a JSON string."""
    return json.dumps(
        review_to_sarif(
            review_report,
            include_preexisting=include_preexisting,
            metrics=metrics,
        ),
        indent=2,
        sort_keys=True,
    )


def dumps_sarif(
    report: AnalysisReport, artifact_uri: str = "target.py", metrics=None
) -> str:
    """SARIF log as a JSON string."""
    return json.dumps(
        to_sarif(report, artifact_uri, metrics=metrics), indent=2, sort_keys=True
    )


def dumps_plain(report: AnalysisReport, artifact_uri: str = "target.py") -> str:
    """Plain-JSON report as a string."""
    return json.dumps(to_plain_json(report, artifact_uri), indent=2, sort_keys=True)
