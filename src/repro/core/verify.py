"""The Verifier stage: prove a rendered patch is safe before it ships.

The paper's pipeline (and our reproduction until now) is Finder → Patcher:
detect an insecure pattern, substitute the safe alternative, and hope.
AutoSec structures the same workflow as Finder → Patcher → **Verifier**,
and PatUntrack/AutoPatch both argue that the verification step is where
automated patching earns trust.  This module is that third stage: given
the original source, its findings, and the patched output, it assigns
every applied patch a verdict from a small closed taxonomy:

``verified``
    The triggering finding is gone, no new finding appeared, the patched
    file still has valid syntax, and no inserted import collides with an
    existing binding.
``regressed``
    Re-scanning the patched output shows the triggering finding still
    present, or a finding that did not exist before patching (finding
    identity is a content hash over the matched text, so findings keep
    their identity when patches above them shift their offsets).
``syntax-broken``
    The original compiled (possibly only inside a wrapper context — the
    paper's incomplete-snippet case) but the patched output compiles in
    no context at all.
``import-collision``
    A patch inserts an import whose bound name the original file already
    binds to something else (an assignment, a def/class, an alias), so
    inserting it would silently change what that name refers to.

The engine (:meth:`repro.core.engine.PatchitPy.patch`) drives this from a
bounded re-patch loop: failing patches are *banned* by finding identity
and patching is re-run without them, so an unverifiable patch is reverted
rather than shipped.

This module deliberately imports nothing from ``repro.observability`` and
is never imported by the detect hot path (``matching.py`` /
``candidates.py``) — ``scripts/check_hot_path_isolation.py`` enforces
both directions.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Callable, Counter as CounterType, Dict, List, Optional, Sequence, Tuple
from collections import Counter

from repro.core.imports import ImportManager, import_bindings
from repro.types import Finding, Patch

__all__ = [
    "PatchVerdict",
    "PatchVerifier",
    "VERDICT_IMPORT_COLLISION",
    "VERDICT_REGRESSED",
    "VERDICT_SYNTAX_BROKEN",
    "VERDICT_VERIFIED",
    "VERDICT_STATUSES",
    "binding_collisions",
    "finding_key",
    "syntax_context",
]

VERDICT_VERIFIED = "verified"
VERDICT_REGRESSED = "regressed"
VERDICT_SYNTAX_BROKEN = "syntax-broken"
VERDICT_IMPORT_COLLISION = "import-collision"

#: The closed verdict taxonomy, in decreasing severity order.
VERDICT_STATUSES = (
    VERDICT_SYNTAX_BROKEN,
    VERDICT_IMPORT_COLLISION,
    VERDICT_REGRESSED,
    VERDICT_VERIFIED,
)


# --------------------------------------------------------------- identity


def finding_key(source: str, finding: Finding) -> str:
    """Content-hash identity of a finding: stable under offset shifts.

    The identity hashes the rule id together with the matched text at the
    finding's span, *not* the span positions — so a finding keeps its
    identity when a patch applied above it moves it down the file, while
    a same-rule match on different text (e.g. one a patch introduced)
    gets a distinct identity.
    """
    end = min(finding.span.end, len(source))
    start = min(finding.span.start, end)
    matched = source[start:end]
    digest = hashlib.sha256()
    digest.update(finding.rule_id.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(matched.encode("utf-8"))
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------- syntax

#: Wrapper contexts tried, in order, before declaring a syntax failure.
#: Generated snippets frequently are function *bodies* (the paper's
#: incomplete-snippet case, §III-A): ``return``/``await`` at column zero
#: is invalid at module scope but fine inside the right wrapper.
_WRAPPER_CONTEXTS: Tuple[str, ...] = ("module", "function-body", "async-body")


def _compiles(code: str) -> bool:
    try:
        compile(code, "<patch-verify>", "exec")
        return True
    except SyntaxError:
        return False
    except (ValueError, MemoryError, RecursionError, OverflowError):
        # null bytes, pathological nesting: not valid syntax either way
        return False


def _indent(source: str) -> str:
    return "".join(
        "    " + line if line.strip() else line
        for line in source.splitlines(keepends=True)
    )


def syntax_context(source: str) -> Optional[str]:
    """The first wrapper context in which ``source`` compiles, else ``None``.

    Tries the text as a full module, then as a function body, then as an
    async function body (so bare ``return``/``yield``/``await`` snippets
    are recognized as valid incomplete code rather than syntax errors).
    """
    for context in _WRAPPER_CONTEXTS:
        if context == "module":
            candidate = source
        else:
            keyword = "async def" if context == "async-body" else "def"
            body = _indent(source)
            if not body.strip():
                continue  # nothing to wrap; the module context decides
            candidate = f"{keyword} _patchitpy_wrapper():\n{body}\n"
        if _compiles(candidate):
            return context
    return None


# ------------------------------------------------------- import collisions


def _existing_binding(source: str, name: str) -> Optional[str]:
    """How ``source`` already binds ``name``, or ``None`` if it does not.

    Looks for module-text bindings that would clash with a top-of-file
    import of ``name``: plain or annotated assignments, ``def``/``class``
    statements, loop targets, and ``as``-aliases on existing imports.
    """
    n = re.escape(name)
    checks = (
        (rf"^[ \t]*{n}\s*=(?!=)", "assignment"),
        (rf"^[ \t]*{n}\s*:[^=\n]+=(?!=)", "annotated assignment"),
        (rf"^[ \t]*def\s+{n}\s*\(", "function definition"),
        (rf"^[ \t]*class\s+{n}\b", "class definition"),
        (rf"^[ \t]*for\s+{n}\b", "loop target"),
        (rf"^[ \t]*(?:from\s+[\w.]+\s+import\s+[^\n]*|import\s+[^\n]*)\bas\s+{n}\b", "import alias"),
    )
    for pattern, how in checks:
        if re.search(pattern, source, re.MULTILINE):
            return how
    return None


def binding_collisions(source: str, statements: Sequence[str]) -> Dict[str, str]:
    """Names an import batch would bind that ``source`` binds otherwise.

    Returns ``{name: how_it_is_already_bound}``.  Statements the file
    already imports are skipped — the import manager deduplicates them,
    so nothing new would be inserted and nothing can collide.
    """
    manager = ImportManager(source)
    collisions: Dict[str, str] = {}
    for statement in statements:
        cleaned = statement.strip()
        if not cleaned or manager.has_import(cleaned):
            continue
        try:
            names = import_bindings(cleaned)
        except ValueError:
            continue
        for name in names:
            how = _existing_binding(source, name)
            if how is not None:
                collisions.setdefault(name, how)
    return collisions


# ---------------------------------------------------------------- verdicts


@dataclass
class PatchVerdict:
    """The Verifier's ruling on one applied patch.

    ``span`` is the patch's span in the source it was rendered against;
    ``trigger_key`` is the content-hash identity of the triggering
    finding (the handle the bounded re-patch loop bans on failure);
    ``reverted`` is set by the engine when the patch was withdrawn from
    the shipped output because of this verdict.
    """

    rule_id: str
    cwe_id: str
    span: Tuple[int, int]
    status: str
    detail: str = ""
    trigger_key: str = ""
    reverted: bool = False

    @property
    def ok(self) -> bool:
        """True when the patch passed every verification check."""
        return self.status == VERDICT_VERIFIED

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "cwe_id": self.cwe_id,
            "span": list(self.span),
            "status": self.status,
            "detail": self.detail,
            "trigger_key": self.trigger_key,
            "reverted": self.reverted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PatchVerdict":
        start, end = data.get("span", (0, 0))
        return cls(
            rule_id=str(data.get("rule_id", "")),
            cwe_id=str(data.get("cwe_id", "")),
            span=(int(start), int(end)),
            status=str(data.get("status", VERDICT_VERIFIED)),
            detail=str(data.get("detail", "")),
            trigger_key=str(data.get("trigger_key", "")),
            reverted=bool(data.get("reverted", False)),
        )


def _fragment_parses(fragment: str) -> bool:
    """True when a patch replacement is itself well-formed Python.

    Replacements are usually expressions (``json.loads(blob)``) but may
    be statements or multi-line blocks; accept anything that compiles as
    an expression, a statement sequence, or inside a wrapper context.
    """
    try:
        compile(fragment, "<patch-fragment>", "eval")
        return True
    except (SyntaxError, ValueError):
        pass
    return syntax_context(fragment) is not None


class PatchVerifier:
    """Re-scan, syntax-check, and import-check a patching outcome.

    ``detect`` is the detection callable used for re-scans — the engine
    passes its own uninstrumented detect so verification sees exactly the
    findings a fresh scan of the patched output would see (subclassed
    engines included).
    """

    def __init__(self, detect: Callable[[str], Sequence[Finding]]) -> None:
        self._detect = detect

    # ------------------------------------------------------------ checks

    def verify(
        self,
        original: str,
        baseline: Sequence[Finding],
        patched: str,
        applied: Sequence[Patch],
        final_findings: Optional[Sequence[Finding]] = None,
    ) -> List[PatchVerdict]:
        """One verdict per applied patch, in application order.

        ``baseline`` is the findings of ``original`` (the identity
        baseline for the gone/new analysis); ``final_findings`` reuses an
        already-computed re-scan of ``patched`` when the caller has one.
        """
        if final_findings is None:
            final_findings = self._detect(patched)
        before: CounterType[str] = Counter(finding_key(original, f) for f in baseline)
        after: CounterType[str] = Counter(finding_key(patched, f) for f in final_findings)
        introduced = {
            key: count - before.get(key, 0)
            for key, count in after.items()
            if count > before.get(key, 0)
        }
        introduced_text = {
            finding_key(patched, f): patched[f.span.start : f.span.end]
            for f in final_findings
            if finding_key(patched, f) in introduced
        }
        syntax_broken = (
            syntax_context(original) is not None and syntax_context(patched) is None
        )

        verdicts: List[PatchVerdict] = []
        unattributed_introductions = dict(introduced)
        for patch in applied:
            verdicts.append(
                self._judge(
                    original, patch, before, after, introduced_text,
                    unattributed_introductions,
                )
            )

        if syntax_broken:
            self._blame_syntax(verdicts, applied)
        if unattributed_introductions:
            # A finding appeared that no individual patch's replacement
            # explains (e.g. it matches across a splice boundary): no
            # patch can be proven innocent, so none may ship.
            rules = ", ".join(sorted(
                {f.rule_id for f in final_findings
                 if finding_key(patched, f) in unattributed_introductions}
            ))
            for verdict in verdicts:
                if verdict.status == VERDICT_VERIFIED:
                    verdict.status = VERDICT_REGRESSED
                    verdict.detail = f"patched output has unattributable new finding(s): {rules}"
        return verdicts

    def _judge(
        self,
        original: str,
        patch: Patch,
        before: CounterType[str],
        after: CounterType[str],
        introduced_text: Dict[str, str],
        unattributed: Dict[str, int],
    ) -> PatchVerdict:
        verdict = PatchVerdict(
            rule_id=patch.rule_id,
            cwe_id=patch.cwe_id,
            span=(patch.span.start, patch.span.end),
            status=VERDICT_VERIFIED,
            trigger_key=patch.trigger_key,
        )
        collisions: Dict[str, str] = {}
        if patch.new_imports:
            collisions = binding_collisions(original, patch.new_imports)
        if collisions:
            names = ", ".join(
                f"{name} ({how})" for name, how in sorted(collisions.items())
            )
            verdict.status = VERDICT_IMPORT_COLLISION
            verdict.detail = f"inserted import would shadow existing binding: {names}"
            return verdict
        key = patch.trigger_key
        if key and after.get(key, 0) > 0 and after[key] >= before.get(key, 0):
            verdict.status = VERDICT_REGRESSED
            verdict.detail = "triggering finding still present after patching"
            return verdict
        for intro_key, text in introduced_text.items():
            if intro_key in unattributed and text and text in patch.replacement:
                unattributed.pop(intro_key, None)
                verdict.status = VERDICT_REGRESSED
                verdict.detail = f"replacement introduced a new finding: `{text.strip()[:80]}`"
                return verdict
        return verdict

    def _blame_syntax(
        self, verdicts: List[PatchVerdict], applied: Sequence[Patch]
    ) -> None:
        """Attribute a whole-file syntax failure to concrete patches.

        A replacement that does not itself parse (in any wrapper context)
        is the culprit; when every replacement parses individually the
        breakage is an interaction, so every patch is held responsible —
        the safe default, since none can be proven innocent.
        """
        culprits = [
            index
            for index, patch in enumerate(applied)
            if not _fragment_parses(patch.replacement)
        ]
        targets = culprits if culprits else range(len(verdicts))
        detail = (
            "replacement is not valid Python in any wrapper context"
            if culprits
            else "patched output compiles in no wrapper context"
        )
        for index in targets:
            verdicts[index].status = VERDICT_SYNTAX_BROKEN
            verdicts[index].detail = detail
