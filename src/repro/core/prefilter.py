"""Literal prefiltering for rule matching.

Production pattern scanners (Semgrep, ripgrep-based tooling) avoid
running every regex over every file by first checking for a literal
substring the regex *must* contain.  This module derives such required
literals from a compiled pattern by walking its parse tree
(:mod:`re._parser`):

- in a concatenation, every member's requirement holds — *all* literal
  runs are required (the candidate index uses the full conjunction; the
  single-literal prefilter keeps the longest);
- in a branch (alternation), a literal is required only if *every*
  alternative requires one — take the longest common substring of the
  alternatives' literals as a conservative bound (and only if all exist);
- quantifiers with ``min == 0`` contribute nothing.

The derivation is conservative: when in doubt it returns nothing and the
engine simply runs the regex.  A property test pins the safety condition:
prefiltered matching returns exactly the same findings.

Three consumers with different appetites share the walk:

- :func:`required_literal` — the single longest case-sensitive literal,
  stored on each rule as its per-rule prefilter (``None`` for
  ``IGNORECASE`` patterns, which a case-sensitive substring check cannot
  model).
- :func:`required_literals` — every useful literal as
  :class:`LiteralRequirement` records, including *case-folded* literals
  for ``IGNORECASE`` patterns (restricted to ASCII text, where
  ``str.lower()`` models the regex engine's case-insensitivity exactly).
  The candidate index (:mod:`repro.core.candidates`) matches these in a
  single pass over each file.
- :func:`required_literal_groups` — disjunctions: for a branch whose
  every alternative guarantees a literal, one of those literals must
  appear.  This is what makes alternation-shaped rules
  (``(?:password|passwd|pwd)``) indexable at all.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

try:  # Python 3.11+: re._parser; older: sre_parse
    from re import _parser as _sre_parse  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - legacy fallback
    import sre_parse as _sre_parse  # type: ignore[no-redef]

_MIN_USEFUL = 4  # conjunction literals shorter than this filter little
_GROUP_MIN = 3  # disjunction-group members may be slightly shorter


@dataclass(frozen=True)
class LiteralRequirement:
    """One substring every match of a pattern must contain.

    ``folded`` requirements hold *case-insensitively*: ``text`` is
    already lowercased and must be checked against a lowercased copy of
    the source.  Folded requirements are only emitted for ASCII literals,
    where ``str.lower()`` agrees exactly with the regex engine's
    ``IGNORECASE`` semantics (Unicode has one-to-many case mappings —
    ``'İ'.lower()`` grows a combining dot — that a substring check cannot
    model, so non-ASCII literals are conservatively dropped).
    """

    text: str
    folded: bool = False


def _walk(parsed, groups: List[Tuple[str, ...]]) -> List[str]:
    """Literal runs guaranteed to appear, for one parsed subpattern.

    Also appends *disjunction groups* to ``groups``: for a branch whose
    every alternative guarantees a literal, any match of the branch must
    contain at least one of those literals — an OR-requirement the
    candidate index can check even when the alternatives share no common
    substring.
    """
    runs: List[str] = []
    current: List[str] = []

    def flush() -> None:
        if current:
            runs.append("".join(current))
            current.clear()

    for op, argument in parsed:
        name = str(op)
        if name == "LITERAL":
            current.append(chr(argument))
            continue
        if name == "NOT_LITERAL" or name in ("ANY", "IN", "CATEGORY"):
            flush()
            continue
        if name in ("MAX_REPEAT", "MIN_REPEAT"):
            minimum, _maximum, sub = argument
            flush()
            if minimum >= 1:
                runs.extend(_walk(sub, groups))
            continue
        if name == "SUBPATTERN":
            sub = argument[-1]
            flush()
            runs.extend(_walk(sub, groups))
            continue
        if name == "BRANCH":
            # A literal run directly before the branch is contiguous with
            # whichever alternative matches — sre_parse factors shared
            # prefixes out ("password|passwd|pwd" parses as "p" +
            # "assword|asswd|wd"), so gluing it back onto literal-leading
            # alternatives recovers the full discriminating literals.
            prefix = "".join(current)
            flush()
            _, alternatives = argument
            candidates: List[str] = []
            for alternative in alternatives:
                # nested groups inside an alternative are not guaranteed
                # to be traversed, so they go to a throwaway sink
                options = _walk(alternative, [])
                lead = _leading_run(alternative)
                if prefix and lead:
                    options.append(prefix + lead)
                longest = _longest(options)
                if longest is None:
                    candidates = []
                    break
                candidates.append(longest)
            if candidates:
                groups.append(tuple(candidates))
                # the only *single* text guaranteed across every
                # alternative is a common substring of their literals
                common = candidates[0]
                for candidate in candidates[1:]:
                    common = _longest_common_substring(common, candidate)
                    if not common:
                        break
                if common:
                    runs.append(common)
            continue
        if name in ("AT", "ASSERT", "ASSERT_NOT", "GROUPREF", "GROUPREF_EXISTS"):
            flush()
            continue
        flush()
    flush()
    return [r for r in runs if r]


def _literals_of(parsed) -> List[str]:
    """Guaranteed literal runs only (disjunction groups discarded)."""
    return _walk(parsed, [])


def _leading_run(parsed) -> str:
    """The literal run a subpattern starts with ('' when it doesn't)."""
    chars: List[str] = []
    for op, argument in parsed:
        if str(op) != "LITERAL":
            break
        chars.append(chr(argument))
    return "".join(chars)


def _longest(literals: List[str]) -> Optional[str]:
    if not literals:
        return None
    return max(literals, key=len)


def _longest_common_substring(a: str, b: str) -> str:
    """Longest contiguous substring shared by ``a`` and ``b``.

    Standard O(len(a)·len(b)) dynamic program over match-run lengths
    (the previous implementation probed every substring of ``a`` against
    ``b`` and went roughly cubic on adversarial inputs).  Ties resolve to
    the earliest occurrence in ``a``, matching the old behavior.
    """
    if not a or not b:
        return ""
    previous = [0] * (len(b) + 1)
    best_length = 0
    best_end = 0
    for i, char_a in enumerate(a, start=1):
        current = [0] * (len(b) + 1)
        for j, char_b in enumerate(b, start=1):
            if char_a == char_b:
                length = previous[j - 1] + 1
                current[j] = length
                if length > best_length:
                    best_length = length
                    best_end = i
        previous = current
    return a[best_end - best_length : best_end]


def _parse(pattern: "re.Pattern[str]"):
    """The pattern's parse tree, or ``None`` for unmodelled patterns."""
    if pattern.flags & re.LOCALE:
        return None
    try:
        return _sre_parse.parse(pattern.pattern, pattern.flags & ~re.UNICODE)
    except Exception:
        return None


def required_literal(pattern: "re.Pattern[str]") -> Optional[str]:
    """The longest literal every match of ``pattern`` must contain.

    Returns ``None`` when no sufficiently long guaranteed literal exists
    or when the pattern uses flags/constructs the walker does not model
    (conservatively: IGNORECASE disables the *case-sensitive* prefilter;
    see :func:`required_literals` for the case-folded variant the
    candidate index uses).
    """
    if pattern.flags & re.IGNORECASE:
        return None
    parsed = _parse(pattern)
    if parsed is None:
        return None
    literal = _longest(_literals_of(parsed))
    if literal is None or len(literal) < _MIN_USEFUL:
        return None
    return literal


def required_literals(pattern: "re.Pattern[str]") -> Tuple[LiteralRequirement, ...]:
    """Every useful literal each match of ``pattern`` must contain.

    Unlike :func:`required_literal` this returns the full conjunction —
    a match must contain *all* of the returned literals — and it covers
    ``IGNORECASE`` patterns by emitting lowercased ``folded``
    requirements for ASCII literal runs.  Literals that are substrings
    of a longer sibling are dropped (their presence is implied), as are
    runs shorter than the usefulness floor.
    """
    parsed = _parse(pattern)
    if parsed is None:
        return ()
    folded = bool(pattern.flags & re.IGNORECASE)
    runs = [r for r in _literals_of(parsed) if len(r) >= _MIN_USEFUL]
    if folded:
        runs = [r.lower() for r in runs if r.isascii()]
    # Deduplicate and drop substring-redundant runs, longest first so a
    # kept literal can only be shadowed by an already-kept longer one.
    kept: List[str] = []
    for run in sorted(set(runs), key=lambda r: (-len(r), r)):
        if not any(run in longer for longer in kept):
            kept.append(run)
    return tuple(LiteralRequirement(text=run, folded=folded) for run in kept)


def required_literal_groups(
    pattern: "re.Pattern[str]",
) -> Tuple[Tuple[LiteralRequirement, ...], ...]:
    """Disjunction groups: each group lists literals of which *one* must appear.

    Derived from branches on the pattern's guaranteed path whose every
    alternative carries a literal: a match necessarily takes one
    alternative and therefore contains that alternative's literal.  This
    covers alternation-shaped rules (``(?:password|passwd|pwd)``,
    ``os\\.(?:execl|execv|spawnl)``) that the single-substring
    conjunction cannot: their alternatives share no useful common
    substring, so without groups they would run on every file.

    A group is dropped whole when any member falls below the usefulness
    floor or, for ``IGNORECASE`` patterns, is non-ASCII (the fold would
    be unsound for that member, making the OR-check unable to vouch for
    its matches).
    """
    parsed = _parse(pattern)
    if parsed is None:
        return ()
    folded = bool(pattern.flags & re.IGNORECASE)
    raw_groups: List[Tuple[str, ...]] = []
    _walk(parsed, raw_groups)
    groups: List[Tuple[LiteralRequirement, ...]] = []
    for group in raw_groups:
        members = list(group)
        if any(len(member) < _GROUP_MIN for member in members):
            continue
        if folded:
            if not all(member.isascii() for member in members):
                continue
            members = [member.lower() for member in members]
        ordered = sorted(set(members), key=lambda m: (-len(m), m))
        groups.append(
            tuple(LiteralRequirement(text=member, folded=folded) for member in ordered)
        )
    return tuple(groups)
