"""Literal prefiltering for rule matching.

Production pattern scanners (Semgrep, ripgrep-based tooling) avoid
running every regex over every file by first checking for a literal
substring the regex *must* contain.  This module derives such a required
literal from a compiled pattern by walking its parse tree
(:mod:`re._parser`):

- in a concatenation, every member's requirement holds — take the longest
  literal run;
- in a branch (alternation), a literal is required only if *every*
  alternative requires one — take the shortest of the alternatives'
  longest literals as a conservative bound (and only if all exist);
- quantifiers with ``min == 0`` contribute nothing.

The derivation is conservative: when in doubt it returns ``None`` and the
engine simply runs the regex.  A property test pins the safety condition:
prefiltered matching returns exactly the same findings.
"""

from __future__ import annotations

import re
from typing import List, Optional

try:  # Python 3.11+: re._parser; older: sre_parse
    from re import _parser as _sre_parse  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - legacy fallback
    import sre_parse as _sre_parse  # type: ignore[no-redef]

_MIN_USEFUL = 4  # literals shorter than this filter little


def _literals_of(parsed) -> List[str]:
    """Literal runs guaranteed to appear, for one parsed subpattern."""
    runs: List[str] = []
    current: List[str] = []

    def flush() -> None:
        if current:
            runs.append("".join(current))
            current.clear()

    for op, argument in parsed:
        name = str(op)
        if name == "LITERAL":
            current.append(chr(argument))
            continue
        if name == "NOT_LITERAL" or name in ("ANY", "IN", "CATEGORY"):
            flush()
            continue
        if name in ("MAX_REPEAT", "MIN_REPEAT"):
            minimum, _maximum, sub = argument
            flush()
            if minimum >= 1:
                runs.extend(_literals_of(sub))
            continue
        if name == "SUBPATTERN":
            sub = argument[-1]
            flush()
            runs.extend(_literals_of(sub))
            continue
        if name == "BRANCH":
            flush()
            _, alternatives = argument
            candidates: List[str] = []
            for alternative in alternatives:
                longest = _longest(_literals_of(alternative))
                if longest is None:
                    candidates = []
                    break
                candidates.append(longest)
            if candidates:
                # the only text guaranteed across every alternative is a
                # common substring of all the alternatives' literals
                common = candidates[0]
                for candidate in candidates[1:]:
                    common = _longest_common_substring(common, candidate)
                    if not common:
                        break
                if common:
                    runs.append(common)
            continue
        if name in ("AT", "ASSERT", "ASSERT_NOT", "GROUPREF", "GROUPREF_EXISTS"):
            flush()
            continue
        flush()
    flush()
    return [r for r in runs if r]


def _longest(literals: List[str]) -> Optional[str]:
    if not literals:
        return None
    return max(literals, key=len)


def _longest_common_substring(a: str, b: str) -> str:
    """Longest contiguous substring shared by ``a`` and ``b``."""
    best = ""
    for i in range(len(a)):
        for j in range(i + len(best) + 1, len(a) + 1):
            if a[i:j] in b:
                best = a[i:j]
            else:
                break
    return best


def required_literal(pattern: "re.Pattern[str]") -> Optional[str]:
    """The longest literal every match of ``pattern`` must contain.

    Returns ``None`` when no sufficiently long guaranteed literal exists
    or when the pattern uses flags/constructs the walker does not model
    (conservatively: IGNORECASE disables prefiltering).
    """
    if pattern.flags & re.IGNORECASE:
        return None
    try:
        parsed = _sre_parse.parse(pattern.pattern, pattern.flags & ~re.UNICODE)
    except Exception:
        return None
    literal = _longest(_literals_of(parsed))
    if literal is None or len(literal) < _MIN_USEFUL:
        return None
    return literal
