"""Diff-aware review: scan the commit, not the repo.

The highest-traffic workload for a production scanner is pre-commit /
PR-time review, where the latency budget is sub-second and only what the
*change* introduced matters — most findings in a mature tree are
pre-existing, and a review bot that repeats them on every commit is
noise.  This module composes two existing primitives into that mode:

- **content-hash finding identity** (:func:`repro.core.verify.finding_key`,
  PR 6) — a finding keeps its identity when code inserted above it shifts
  its offsets, so baseline suppression survives unrelated edits;
- **the SHA-256 scan cache** (:class:`repro.core.cache.ScanCache`, PR 1)
  — both sides of a review are served per content digest, so a repo whose
  baseline scan is warm reviews in milliseconds.

A review takes a unified diff (stdin/file, reverse-applied to the
worktree to reconstruct the baseline) or two git revisions, computes the
touched line ranges per file, scans only the touched files — baseline
and head side — and classifies every finding:

``introduced``
    Present at the head, absent from the baseline (by finding identity).
    These are the findings a review reports.
``pre-existing``
    The same ``finding_key`` already existed at the base revision.
    Suppressed by default: the change did not cause them.
``fixed``
    A baseline finding whose identity is gone at the head.

The result is a :class:`ReviewReport` carrying per-hunk attribution; it
renders to PR-annotation-ready SARIF via
:func:`repro.core.sarif.review_to_sarif` (results pinned to new-side
line numbers, ``baselineState`` set) and serializes through
``to_dict``/``from_dict`` so it survives the server JSON boundary.

This module is review *orchestration* — like :mod:`repro.core.project`
it may import the observability layer, but it must never be imported by
the hot detect path (``matching.py`` / ``candidates.py``);
``scripts/check_hot_path_isolation.py`` enforces that.
"""

from __future__ import annotations

import re
import subprocess
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import ScanCache, hash_source
from repro.core.engine import PatchitPy, PatchResult
from repro.core.verify import finding_key
from repro.exceptions import ReproError
from repro.observability.collector import NULL_METRICS, ScanMetrics, clock
from repro.observability.trace import NULL_TRACE, TraceRecorder
from repro.types import Finding, LineIndex

__all__ = [
    "FileDiff",
    "Hunk",
    "ReviewError",
    "ReviewFinding",
    "ReviewReport",
    "ReviewedFile",
    "STATUS_FIXED",
    "STATUS_INTRODUCED",
    "STATUS_PRE_EXISTING",
    "REVIEW_STATUSES",
    "parse_unified_diff",
    "patch_introduced",
    "reverse_apply",
    "review",
]

STATUS_INTRODUCED = "introduced"
STATUS_PRE_EXISTING = "pre-existing"
STATUS_FIXED = "fixed"

#: The closed classification taxonomy of a review.
REVIEW_STATUSES = (STATUS_INTRODUCED, STATUS_PRE_EXISTING, STATUS_FIXED)

#: SARIF 2.1.0 ``baselineState`` value per review status.
SARIF_BASELINE_STATES = {
    STATUS_INTRODUCED: "new",
    STATUS_PRE_EXISTING: "unchanged",
    STATUS_FIXED: "absent",
}


class ReviewError(ReproError):
    """A review could not run (bad diff, unknown revision, no git repo)."""


# ------------------------------------------------------------ diff parsing


@dataclass
class Hunk:
    """One ``@@`` hunk: line coordinates plus both sides' body lines.

    ``old_start``/``new_start`` are 1-based as printed in the hunk header;
    a zero count means the hunk touches no line on that side (pure
    insertion or deletion) and the start names the line *after which* the
    change sits.  Body lines keep their trailing newline, so
    :func:`reverse_apply` can splice them back verbatim.
    """

    old_start: int
    old_count: int
    new_start: int
    new_count: int
    old_lines: List[str] = field(default_factory=list)
    new_lines: List[str] = field(default_factory=list)

    @property
    def new_range(self) -> Tuple[int, int]:
        """Inclusive 1-based new-side line range the hunk covers."""
        if self.new_count == 0:
            return (self.new_start, self.new_start)
        return (self.new_start, self.new_start + self.new_count - 1)

    @property
    def old_range(self) -> Tuple[int, int]:
        """Inclusive 1-based old-side line range the hunk covers."""
        if self.old_count == 0:
            return (self.old_start, self.old_start)
        return (self.old_start, self.old_start + self.old_count - 1)


@dataclass
class FileDiff:
    """All hunks touching one file.  ``None`` paths mean added/deleted."""

    old_path: Optional[str]
    new_path: Optional[str]
    hunks: List[Hunk] = field(default_factory=list)
    binary: bool = False

    @property
    def path(self) -> str:
        """The display path: new side when present, else the old side."""
        return self.new_path or self.old_path or "<unknown>"

    @property
    def change(self) -> str:
        """``added`` / ``deleted`` / ``renamed`` / ``modified``."""
        if self.old_path is None:
            return "added"
        if self.new_path is None:
            return "deleted"
        if self.old_path != self.new_path:
            return "renamed"
        return "modified"

    @property
    def new_ranges(self) -> List[Tuple[int, int]]:
        """New-side inclusive line ranges, one per hunk."""
        return [hunk.new_range for hunk in self.hunks]


_HUNK_RE = re.compile(r"^@@ -(\d+)(?:,(\d+))? \+(\d+)(?:,(\d+))? @@")


def _clean_diff_path(raw: str) -> Optional[str]:
    """Normalize a ``---``/``+++`` header path (strip prefix/timestamp)."""
    text = raw.rstrip("\n")
    # git quotes paths with special characters; tabs separate timestamps
    # in POSIX diffs.  Either way the path is the first field.
    text = text.split("\t", 1)[0].strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        text = text[1:-1]
    if text == "/dev/null":
        return None
    if text.startswith(("a/", "b/")):
        text = text[2:]
    return text or None


def parse_unified_diff(text: str) -> List[FileDiff]:
    """Parse a unified diff into per-file hunk lists.

    Accepts both ``git diff`` output (``diff --git`` headers, ``a/``/
    ``b/`` prefixes, rename and binary markers) and plain ``diff -u``
    output.  Raises :class:`ReviewError` when a hunk body line cannot be
    attributed (a malformed or truncated diff).
    """
    files: List[FileDiff] = []
    current: Optional[FileDiff] = None
    hunk: Optional[Hunk] = None
    pending_old: Optional[str] = None
    saw_old_header = False
    remaining_old = remaining_new = 0
    # which side(s) the previous body line landed on, for the
    # "\ No newline at end of file" marker
    last_sides: Tuple[List[str], ...] = ()

    for line in text.splitlines(keepends=True):
        if hunk is not None and remaining_old <= 0 and remaining_new <= 0:
            # the hunk's counted lines are consumed; only a no-newline
            # marker may still belong to it
            if not line.startswith("\\"):
                hunk = None
        if line.startswith("diff "):
            current = None
            hunk = None
            pending_old = None
            saw_old_header = False
            continue
        if line.startswith("Binary files ") and files:
            files[-1].binary = True
            continue
        if line.startswith("--- ") and hunk is None:
            pending_old = _clean_diff_path(line[4:])
            saw_old_header = True
            continue
        if line.startswith("+++ ") and saw_old_header:
            current = FileDiff(old_path=pending_old, new_path=_clean_diff_path(line[4:]))
            files.append(current)
            hunk = None
            pending_old = None
            saw_old_header = False
            continue
        match = _HUNK_RE.match(line)
        if match and current is not None:
            hunk = Hunk(
                old_start=int(match.group(1)),
                old_count=int(match.group(2)) if match.group(2) is not None else 1,
                new_start=int(match.group(3)),
                new_count=int(match.group(4)) if match.group(4) is not None else 1,
            )
            current.hunks.append(hunk)
            remaining_old = hunk.old_count
            remaining_new = hunk.new_count
            last_sides = ()
            continue
        if hunk is None or current is None:
            continue  # header noise between files (index lines, modes)
        if line.startswith("\\"):
            # "\ No newline at end of file": the previous body line has
            # no trailing newline on whichever side(s) it landed.
            for side in last_sides:
                if side and side[-1].endswith("\n"):
                    side[-1] = side[-1][:-1]
            continue
        if line.startswith("-"):
            hunk.old_lines.append(line[1:])
            remaining_old -= 1
            last_sides = (hunk.old_lines,)
        elif line.startswith("+"):
            hunk.new_lines.append(line[1:])
            remaining_new -= 1
            last_sides = (hunk.new_lines,)
        elif line.startswith(" ") or line in ("\n", "\r\n"):
            body = line[1:] if line.startswith(" ") else line
            hunk.old_lines.append(body)
            hunk.new_lines.append(body)
            remaining_old -= 1
            remaining_new -= 1
            last_sides = (hunk.old_lines, hunk.new_lines)
        else:
            # A non-prefixed line while inside a hunk: the hunk is over
            # (some diffs omit trailing context); treat as inter-file noise.
            hunk = None
    return files


def reverse_apply(new_text: str, hunks: Sequence[Hunk]) -> str:
    """Reconstruct the baseline text by reverse-applying ``hunks``.

    This is how pure-diff reviews (no git, just a patch on stdin) obtain
    the baseline to scan: each hunk's new-side region in ``new_text`` is
    replaced by its old-side lines.  Raises :class:`ReviewError` when a
    hunk's new-side lines do not match ``new_text`` — the diff does not
    belong to this file content.
    """
    new_lines = new_text.splitlines(keepends=True)
    out: List[str] = []
    cursor = 0
    for hunk in sorted(hunks, key=lambda h: h.new_start):
        # a zero-count new side names the line *after which* the removed
        # text sat, so the splice point is after that line
        start = hunk.new_start - 1 if hunk.new_count else hunk.new_start
        if start < cursor or start > len(new_lines):
            raise ReviewError(
                f"hunk @@ +{hunk.new_start},{hunk.new_count} @@ is out of "
                f"order or beyond the file ({len(new_lines)} lines)"
            )
        region = new_lines[start : start + hunk.new_count]
        if region != hunk.new_lines:
            raise ReviewError(
                f"hunk @@ +{hunk.new_start},{hunk.new_count} @@ does not "
                "match the file content — the diff was not produced from "
                "this version"
            )
        out.extend(new_lines[cursor:start])
        out.extend(hunk.old_lines)
        cursor = start + hunk.new_count
    out.extend(new_lines[cursor:])
    return "".join(out)


# ------------------------------------------------------------- git plumbing


def _git(root: Path, *args: str) -> str:
    try:
        result = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True,
            text=True,
        )
    except OSError as error:
        raise ReviewError(f"cannot run git: {error}")
    if result.returncode != 0:
        command = "git " + " ".join(args)
        raise ReviewError(f"{command} failed: {result.stderr.strip()}")
    return result.stdout


def _git_toplevel(root: Path) -> Path:
    return Path(_git(root, "rev-parse", "--show-toplevel").strip())


def _git_show(root: Path, revision: str, path: str) -> Optional[str]:
    """File content at a revision, or ``None`` when absent there."""
    try:
        result = subprocess.run(
            ["git", "-C", str(root), "show", f"{revision}:{path}"],
            capture_output=True,
        )
    except OSError as error:
        raise ReviewError(f"cannot run git: {error}")
    if result.returncode != 0:
        return None
    try:
        return result.stdout.decode("utf-8")
    except UnicodeDecodeError:
        return None


# ----------------------------------------------------------------- results


@dataclass
class ReviewFinding:
    """One classified finding of a review.

    ``finding`` is anchored to the side it was detected on: the head
    source for ``introduced``/``pre-existing``, the baseline source for
    ``fixed``.  ``line`` is the 1-based line on that side (the new side
    for everything a PR annotation shows); ``hunk`` is the new-side line
    range of the hunk the finding falls inside, when one does.
    """

    path: str
    status: str
    finding: Finding
    line: int
    key: str
    hunk: Optional[Tuple[int, int]] = None

    def to_dict(self) -> dict:
        data = {
            "path": self.path,
            "status": self.status,
            "finding": self.finding.to_dict(),
            "line": self.line,
            "key": self.key,
        }
        if self.hunk is not None:
            data["hunk"] = [self.hunk[0], self.hunk[1]]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ReviewFinding":
        raw_hunk = data.get("hunk")
        return cls(
            path=str(data["path"]),
            status=str(data["status"]),
            finding=Finding.from_dict(data["finding"]),
            line=int(data["line"]),
            key=str(data.get("key", "")),
            hunk=(int(raw_hunk[0]), int(raw_hunk[1])) if raw_hunk else None,
        )


@dataclass
class ReviewedFile:
    """One touched file of a review: what changed and what was scanned."""

    path: str
    change: str  # added / deleted / renamed / modified
    hunks: List[Tuple[int, int]] = field(default_factory=list)
    error: Optional[str] = None
    from_cache: bool = False  # both scanned sides were cache hits

    def to_dict(self) -> dict:
        data: dict = {
            "path": self.path,
            "change": self.change,
            "hunks": [[start, end] for start, end in self.hunks],
            "from_cache": self.from_cache,
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ReviewedFile":
        return cls(
            path=str(data["path"]),
            change=str(data.get("change", "modified")),
            hunks=[(int(s), int(e)) for s, e in data.get("hunks", ())],
            error=data.get("error"),
            from_cache=bool(data.get("from_cache", False)),
        )


@dataclass
class ReviewReport:
    """Outcome of one diff-aware review.

    ``findings`` carries *every* classified finding — introduced,
    pre-existing and fixed; renderers suppress the pre-existing ones by
    default.  ``sources`` keeps the ``(baseline, head)`` text of each
    reviewed file for this process only (it is deliberately not
    serialized — :func:`patch_introduced` needs it, the JSON boundary
    does not).
    """

    root: str
    base: str
    head: str
    files: List[ReviewedFile] = field(default_factory=list)
    findings: List[ReviewFinding] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    metrics: Optional[ScanMetrics] = None
    sources: Dict[str, Tuple[Optional[str], Optional[str]]] = field(
        default_factory=dict, repr=False
    )

    @property
    def introduced(self) -> List[ReviewFinding]:
        """Findings the change introduced — what a review reports."""
        return [f for f in self.findings if f.status == STATUS_INTRODUCED]

    @property
    def pre_existing(self) -> List[ReviewFinding]:
        """Baseline findings still present — suppressed by default."""
        return [f for f in self.findings if f.status == STATUS_PRE_EXISTING]

    @property
    def fixed(self) -> List[ReviewFinding]:
        """Baseline findings the change removed."""
        return [f for f in self.findings if f.status == STATUS_FIXED]

    @property
    def clean(self) -> bool:
        """True when the change introduced nothing."""
        return not self.introduced

    def counts(self) -> Dict[str, int]:
        """Status -> finding count, in taxonomy order."""
        counter = Counter(f.status for f in self.findings)
        return {status: counter.get(status, 0) for status in REVIEW_STATUSES}

    def summary(self) -> str:
        """Multi-line plain-text review summary."""
        counts = self.counts()
        lines = [
            f"reviewed {len(self.files)} changed file(s) "
            f"({self.base} -> {self.head}) under {self.root}",
            f"introduced: {counts[STATUS_INTRODUCED]}; "
            f"pre-existing (suppressed): {counts[STATUS_PRE_EXISTING]}; "
            f"fixed: {counts[STATUS_FIXED]}",
        ]
        errors = [f for f in self.files if f.error]
        if errors:
            lines.append(f"unreadable files: {len(errors)}")
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON shape the server returns and the CLI ``--format json`` prints.

        Round-trips through :meth:`from_dict`; ``sources`` and ``metrics``
        stay process-local (metrics travel through their own exporters).
        """
        return {
            "root": self.root,
            "base": self.base,
            "head": self.head,
            "files": [f.to_dict() for f in self.files],
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReviewReport":
        """Inverse of :meth:`to_dict` (raises on malformed input)."""
        return cls(
            root=str(data.get("root", ".")),
            base=str(data.get("base", "")),
            head=str(data.get("head", "")),
            files=[ReviewedFile.from_dict(item) for item in data.get("files", ())],
            findings=[
                ReviewFinding.from_dict(item) for item in data.get("findings", ())
            ],
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
        )


# -------------------------------------------------------------- the review


def _is_python(path: Optional[str]) -> bool:
    return path is not None and path.endswith(".py")


def _attribute_hunk(
    line: int, ranges: Sequence[Tuple[int, int]]
) -> Optional[Tuple[int, int]]:
    for start, end in ranges:
        if start <= line <= end:
            return (start, end)
    return None


class _Reviewer:
    """One review run: holds the engine, cache, and observability handles."""

    def __init__(
        self,
        engine: PatchitPy,
        cache: Optional[ScanCache],
        metrics: ScanMetrics,
        trace: TraceRecorder,
    ) -> None:
        self.engine = engine
        self.cache = cache
        self.metrics = metrics
        self.trace = trace

    def _scan_side(self, source: Optional[str]) -> Tuple[List[Finding], bool]:
        """Findings for one side of a file; ``(findings, from_cache)``.

        Served from the scan cache by content digest when possible — this
        is what makes a warm-baseline review cost hashes, not detects.
        """
        if source is None:
            return [], True
        digest = hash_source(source) if self.cache is not None else ""
        if self.cache is not None:
            entry = self.cache.lookup(digest)
            if entry is not None and entry.error is None:
                return list(entry.findings), True
        m = self.metrics
        t = self.trace
        if t.enabled:
            findings = self.engine.detect(
                source, metrics=m if m.enabled else None, trace=t
            )
        elif m.enabled:
            findings = self.engine.detect(source, metrics=m)
        else:
            findings = self.engine.detect(source)
        if self.cache is not None:
            self.cache.store(digest, findings)
        return findings, False

    def review_file(
        self,
        diff: FileDiff,
        old_source: Optional[str],
        new_source: Optional[str],
    ) -> Tuple[ReviewedFile, List[ReviewFinding]]:
        """Scan both sides of one file and classify every finding."""
        reviewed = ReviewedFile(
            path=diff.path, change=diff.change, hunks=diff.new_ranges
        )
        base_findings, base_cached = self._scan_side(old_source)
        head_findings, head_cached = self._scan_side(new_source)
        reviewed.from_cache = base_cached and head_cached

        base_keys = [finding_key(old_source or "", f) for f in base_findings]
        head_keys = [finding_key(new_source or "", f) for f in head_findings]
        classified: List[ReviewFinding] = []

        # Head side: a finding whose identity existed at the baseline is
        # pre-existing; identity counts are consumed so N+1 occurrences of
        # the same text against N baseline ones leave exactly one introduced.
        remaining = Counter(base_keys)
        head_lines = LineIndex(new_source or "")
        for finding, key in zip(head_findings, head_keys):
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                status = STATUS_PRE_EXISTING
            else:
                status = STATUS_INTRODUCED
            line = head_lines.line_of(min(finding.span.start, len(new_source or "")))
            classified.append(
                ReviewFinding(
                    path=diff.path,
                    status=status,
                    finding=finding,
                    line=line,
                    key=key,
                    hunk=_attribute_hunk(line, reviewed.hunks),
                )
            )

        # Baseline side: identities with no surviving head occurrence are
        # fixed (anchored to the old source; no new-side line exists).
        available = Counter(head_keys)
        base_lines = LineIndex(old_source or "")
        for finding, key in zip(base_findings, base_keys):
            if available.get(key, 0) > 0:
                available[key] -= 1
                continue
            line = base_lines.line_of(min(finding.span.start, len(old_source or "")))
            classified.append(
                ReviewFinding(
                    path=diff.path,
                    status=STATUS_FIXED,
                    finding=finding,
                    line=line,
                    key=key,
                    hunk=_attribute_hunk(
                        line, [hunk.old_range for hunk in diff.hunks]
                    ),
                )
            )
        if self.trace.enabled:
            statuses = Counter(f.status for f in classified)
            self.trace.event(
                "review-file",
                diff.path,
                change=diff.change,
                introduced=statuses.get(STATUS_INTRODUCED, 0),
                pre_existing=statuses.get(STATUS_PRE_EXISTING, 0),
                fixed=statuses.get(STATUS_FIXED, 0),
                from_cache=reviewed.from_cache,
            )
        return reviewed, classified


def review(
    root: Path = Path("."),
    *,
    base: Optional[str] = None,
    head: Optional[str] = None,
    diff_text: Optional[str] = None,
    engine: Optional[PatchitPy] = None,
    use_cache: bool = True,
    cache: Optional[ScanCache] = None,
    metrics: Optional[ScanMetrics] = None,
    trace: Optional[TraceRecorder] = None,
) -> ReviewReport:
    """Review a change: scan only touched files, report only what it adds.

    Exactly one input mode must be selected:

    - ``diff_text`` — a unified diff against the current worktree under
      ``root``; the baseline is reconstructed by reverse-applying each
      file's hunks, so no version control is needed at all.
    - ``base`` (optionally with ``head``) — git revisions.  With ``head``
      omitted the head side is the worktree, i.e. ``patchitpy review
      HEAD`` answers "what would this commit add?".

    Both sides of every touched ``.py`` file are scanned through the
    persistent :class:`ScanCache` at ``root`` (``use_cache=False`` opts
    out; a caller-held open ``cache=`` is used instead of opening one and
    is not closed here — the daemon's contract).  Classification is by
    content-hash finding identity, so findings that merely shifted lines
    stay ``pre-existing`` and only genuinely new matches are
    ``introduced``.
    """
    if diff_text is None and base is None:
        raise ReviewError("pass a unified diff (diff_text=) or a base revision")
    if diff_text is not None and base is not None:
        raise ReviewError("pass either diff_text= or git revisions, not both")

    engine = engine if engine is not None else PatchitPy()
    m = metrics if metrics is not None else NULL_METRICS
    t = trace if trace is not None else NULL_TRACE
    started = clock() if m.enabled else 0.0

    root = Path(root)
    if diff_text is not None:
        diffs = parse_unified_diff(diff_text)
        base_label, head_label = "diff", "worktree"
    else:
        root = _git_toplevel(root)
        assert base is not None
        if head is None:
            raw = _git(root, "diff", "--no-color", "--no-ext-diff", base, "--")
            base_label, head_label = base, "worktree"
        else:
            raw = _git(
                root, "diff", "--no-color", "--no-ext-diff", f"{base}..{head}", "--"
            )
            base_label, head_label = base, head
        diffs = parse_unified_diff(raw)

    opened_cache = False
    if cache is None and use_cache:
        cache = ScanCache(root, engine.rules.fingerprint())
        opened_cache = True
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0

    report = ReviewReport(root=str(root), base=base_label, head=head_label)
    reviewer = _Reviewer(engine, cache, m, t)
    scan_sid = t.begin("review", str(root)) if t.enabled else ""

    for diff in diffs:
        if diff.binary or not (_is_python(diff.old_path) or _is_python(diff.new_path)):
            continue
        try:
            old_source, new_source = _load_sides(
                root, diff, base=base, head=head, from_diff=diff_text is not None
            )
        except (ReviewError, OSError, UnicodeDecodeError) as error:
            report.files.append(
                ReviewedFile(
                    path=diff.path,
                    change=diff.change,
                    hunks=diff.new_ranges,
                    error=str(error),
                )
            )
            continue
        reviewed, classified = reviewer.review_file(diff, old_source, new_source)
        report.files.append(reviewed)
        report.findings.extend(classified)
        report.sources[diff.path] = (old_source, new_source)

    if cache is not None:
        report.cache_hits = cache.hits - hits_before
        report.cache_misses = cache.misses - misses_before
        if opened_cache:
            cache.close()
        else:
            cache.save()
    if t.enabled:
        counts = report.counts()
        t.end(
            scan_sid,
            files=len(report.files),
            introduced=counts[STATUS_INTRODUCED],
            pre_existing=counts[STATUS_PRE_EXISTING],
            fixed=counts[STATUS_FIXED],
        )
    if m.enabled:
        counts = report.counts()
        m.count("review_calls")
        m.count("review_files", len(report.files))
        m.count("review_introduced", counts[STATUS_INTRODUCED])
        m.count("review_pre_existing", counts[STATUS_PRE_EXISTING])
        m.count("review_fixed", counts[STATUS_FIXED])
        m.count("review_cache_hits", report.cache_hits)
        m.count("review_cache_misses", report.cache_misses)
        elapsed = clock() - started
        m.add_time("review_time_s", elapsed)
        m.observe("phase_seconds/review", elapsed)
        report.metrics = m
    return report


def _load_sides(
    root: Path,
    diff: FileDiff,
    base: Optional[str],
    head: Optional[str],
    from_diff: bool,
) -> Tuple[Optional[str], Optional[str]]:
    """The ``(baseline, head)`` text of one touched file."""
    if from_diff:
        if diff.new_path is None:
            # deleted file: the whole old content is in the hunks
            return reverse_apply("", diff.hunks), None
        new_source = (root / diff.new_path).read_text()
        if diff.old_path is None:
            return None, new_source
        return reverse_apply(new_source, diff.hunks), new_source
    assert base is not None
    old_source = (
        _git_show(root, base, diff.old_path) if diff.old_path is not None else None
    )
    if diff.new_path is None:
        new_source = None
    elif head is not None:
        new_source = _git_show(root, head, diff.new_path)
    else:
        target = root / diff.new_path
        new_source = target.read_text() if target.exists() else None
    return old_source, new_source


# ------------------------------------------------------------ patching


def patch_introduced(
    report: ReviewReport,
    engine: Optional[PatchitPy] = None,
    verify: Optional[bool] = None,
) -> Dict[str, PatchResult]:
    """Patch (and verify) *only* the introduced findings, per file.

    Pre-existing findings are left alone — a review must not rewrite code
    the change did not touch.  Returns ``{path: PatchResult}`` for every
    file with at least one introduced finding; with verification on (the
    engine default) each result carries the verifier's verdicts, and
    unverifiable patches are reverted rather than shipped.

    Requires the report's in-process ``sources`` (a report deserialized
    from JSON cannot be patched — re-run the review locally).
    """
    engine = engine if engine is not None else PatchitPy()
    results: Dict[str, PatchResult] = {}
    grouped: Dict[str, List[ReviewFinding]] = {}
    for item in report.introduced:
        grouped.setdefault(item.path, []).append(item)
    for path, items in grouped.items():
        sides = report.sources.get(path)
        if sides is None or sides[1] is None:
            raise ReviewError(
                f"no head source retained for {path}; patch_introduced needs "
                "the in-process report of a local review"
            )
        # Pre-existing identities are excluded from patching (the change
        # did not cause them), and the verifier judges against the *full*
        # head finding set so a deliberately unpatched pre-existing
        # finding is not mistaken for a regression.
        pre_existing_keys = frozenset(
            f.key
            for f in report.findings
            if f.path == path and f.status == STATUS_PRE_EXISTING
        )
        head_findings = [
            f.finding
            for f in report.findings
            if f.path == path and f.status != STATUS_FIXED
        ]
        results[path] = engine.patch(
            sides[1],
            [item.finding for item in items],
            verify=verify,
            exclude=pre_existing_keys,
            verify_baseline=head_findings,
        )
    return results
