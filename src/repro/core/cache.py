"""Persistent scan-result cache: content-hash keyed, ruleset-versioned.

Re-scanning a repository is the dominant workload of a production scanner
(IDE save loops, CI runs, pre-commit hooks), and most files do not change
between runs.  :class:`ScanCache` makes repeat sweeps incremental: detect
results are stored per *content digest* (SHA-256 of the file bytes) in a
JSON store under ``.patchitpy-cache/`` at the scan root, so an unchanged
file costs one hash instead of an 85-rule regex pass — and a renamed or
copied file still hits, because the key is the content, not the path.

Invalidation is by construction:

- **file edits** change the digest, so stale entries are simply never
  looked up again (and a bounded-size store evicts them eventually);
- **rule changes** change the ruleset fingerprint
  (:meth:`~repro.core.rules.base.RuleSet.fingerprint`); a store written
  under a different fingerprint is discarded wholesale on load;
- **schema changes** bump :data:`CACHE_SCHEMA_VERSION` with the same
  wholesale-discard behavior.

A secondary ``stat hints`` table maps absolute paths to
``(mtime_ns, size, digest)`` so warm scans of untouched files skip even
the read+hash — the mtime fast path every production scanner ships.  The
hint is only trusted when both mtime and size match; the authoritative
key remains the content digest.

The cache degrades gracefully: corrupt or unreadable stores load as
empty, and save failures (read-only trees) are swallowed — a scan never
fails because of its cache.

The store is safe to share between concurrent readers/writers *within
one process*: every public operation takes the instance lock, which is
what lets the scan daemon hold one cache open across overlapping HTTP
requests where the CLI opened one per run.  :meth:`ScanCache.close` is
idempotent (it persists once and turns every later mutation into a
no-op), so belt-and-braces shutdown paths can close the same cache from
several places without double-writing.

Findings round-trip through :meth:`~repro.types.Finding.to_dict`, which
includes any attached provenance record — so a traced scan's audit
trails survive into warm scans, and ``--explain`` on a fully-cached scan
still names every guard verdict without re-matching.  Findings stored
without provenance (untraced scans) keep the pre-1.2 entry shape.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.types import Finding

CACHE_DIR_NAME = ".patchitpy-cache"
CACHE_FILE_NAME = "scan-cache.json"
CACHE_SCHEMA_VERSION = 1

# Entries beyond this are dropped (oldest-inserted first) at save time so
# the store cannot grow without bound on long-lived checkouts.
DEFAULT_MAX_ENTRIES = 50_000


def hash_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw file bytes — the cache key."""
    return hashlib.sha256(data).hexdigest()


def hash_source(source: str) -> str:
    """Digest of a decoded source string (UTF-8 re-encoded)."""
    return hash_bytes(source.encode("utf-8"))


@dataclass(frozen=True)
class CachedResult:
    """The stored outcome of analyzing one file content."""

    findings: List[Finding]
    error: Optional[str] = None


class ScanCache:
    """Content-addressed store of per-file detect results.

    Parameters
    ----------
    root:
        Directory holding the ``.patchitpy-cache/`` store (normally the
        scan root).
    fingerprint:
        The active ruleset fingerprint; a persisted store written under a
        different fingerprint is ignored and overwritten on save.
    """

    def __init__(
        self,
        root: Path,
        fingerprint: str,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stale_hints = 0
        self._entries: Dict[str, dict] = {}
        self._stat_hints: Dict[str, dict] = {}
        self._dirty = False
        self._closed = False
        # Reentrant: save() runs under the lock and close() calls save().
        self._lock = threading.RLock()
        self._load()

    # ------------------------------------------------------------- paths

    @property
    def cache_dir(self) -> Path:
        return self.root / CACHE_DIR_NAME

    @property
    def cache_file(self) -> Path:
        return self.cache_dir / CACHE_FILE_NAME

    # ------------------------------------------------------------ lookup

    def lookup(self, digest: str) -> Optional[CachedResult]:
        """Stored result for a content digest, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
        findings = [Finding.from_dict(item) for item in entry.get("findings", ())]
        return CachedResult(findings=findings, error=entry.get("error"))

    def store(
        self,
        digest: str,
        findings: Sequence[Finding],
        error: Optional[str] = None,
    ) -> None:
        """Record the analysis outcome for a content digest."""
        entry = {
            "findings": [finding.to_dict() for finding in findings],
            "error": error,
        }
        with self._lock:
            if self._closed:
                return
            self._entries[digest] = entry
            self._dirty = True

    # --------------------------------------------------- stat fast path

    def stat_digest(self, path: Path, stat: os.stat_result) -> Optional[str]:
        """Digest recorded for ``path`` if its mtime+size are unchanged.

        A hint whose mtime or size no longer matches counts as *stale*
        (``self.stale_hints``): the file changed on disk, so the caller
        falls back to the read-and-hash path.
        """
        with self._lock:
            hint = self._stat_hints.get(str(path.absolute()))
            if hint is None:
                return None
            if (
                hint.get("mtime_ns") != stat.st_mtime_ns
                or hint.get("size") != stat.st_size
            ):
                self.stale_hints += 1
                return None
            return hint.get("digest")

    def remember_stat(self, path: Path, stat: os.stat_result, digest: str) -> None:
        """Record the mtime/size → digest hint for a path."""
        hint = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "digest": digest,
        }
        with self._lock:
            if self._closed:
                return
            self._stat_hints[str(path.absolute())] = hint
            self._dirty = True

    def forget_path(self, path: Path) -> None:
        """Drop the stat hint for a path (e.g. after patching it)."""
        with self._lock:
            if self._stat_hints.pop(str(path.absolute()), None) is not None:
                self._dirty = True

    # ------------------------------------------------------- persistence

    def _load(self) -> None:
        try:
            raw = json.loads(self.cache_file.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("schema") != CACHE_SCHEMA_VERSION:
            return
        if raw.get("fingerprint") != self.fingerprint:
            return  # ruleset changed: every stored verdict is suspect
        entries = raw.get("entries")
        hints = raw.get("stat_hints")
        if isinstance(entries, dict):
            self._entries = entries
        if isinstance(hints, dict):
            self._stat_hints = hints

    def save(self) -> bool:
        """Persist the store atomically; returns False when skipped/failed."""
        with self._lock:
            if not self._dirty:
                return False
            if len(self._entries) > self.max_entries:
                overflow = len(self._entries) - self.max_entries
                for digest in list(self._entries)[:overflow]:
                    del self._entries[digest]
            payload = {
                "schema": CACHE_SCHEMA_VERSION,
                "fingerprint": self.fingerprint,
                "entries": self._entries,
                "stat_hints": self._stat_hints,
            }
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                tmp = self.cache_file.with_suffix(".json.tmp")
                tmp.write_text(
                    json.dumps(payload, separators=(",", ":")), encoding="utf-8"
                )
                os.replace(tmp, self.cache_file)
            except OSError:
                return False
            self._dirty = False
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # --------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> bool:
        """Persist pending writes and retire the store; idempotent.

        The first call saves (when dirty) and marks the cache closed;
        every later call — and every later :meth:`store`/
        :meth:`remember_stat`/:meth:`save` — is a no-op, so multiple
        shutdown paths (request handler, drain hook, ``atexit``) can all
        close the same instance safely.  Lookups keep working read-only.
        Returns True when this call performed the persisting save.
        """
        with self._lock:
            if self._closed:
                return False
            saved = self.save()
            self._closed = True
            return saved

    def __enter__(self) -> "ScanCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @classmethod
    def clear(cls, root: Path) -> bool:
        """Delete the persisted store under ``root``; True if one existed."""
        directory = Path(root) / CACHE_DIR_NAME
        if not directory.is_dir():
            return False
        shutil.rmtree(directory, ignore_errors=True)
        return True
