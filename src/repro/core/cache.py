"""Persistent scan-result cache: content-hash keyed, ruleset-versioned.

Re-scanning a repository is the dominant workload of a production scanner
(IDE save loops, CI runs, pre-commit hooks), and most files do not change
between runs.  :class:`ScanCache` makes repeat sweeps incremental: detect
results are stored per *content digest* (SHA-256 of the file bytes) in a
JSON store under ``.patchitpy-cache/`` at the scan root, so an unchanged
file costs one hash instead of an 85-rule regex pass — and a renamed or
copied file still hits, because the key is the content, not the path.

Invalidation is by construction:

- **file edits** change the digest, so stale entries are simply never
  looked up again (and a bounded-size store evicts them eventually);
- **rule changes** change the ruleset fingerprint
  (:meth:`~repro.core.rules.base.RuleSet.fingerprint`); a store written
  under a different fingerprint is discarded wholesale on load;
- **schema changes** bump :data:`CACHE_SCHEMA_VERSION` with the same
  wholesale-discard behavior.

A secondary ``stat hints`` table maps absolute paths to
``(mtime_ns, size, digest)`` so warm scans of untouched files skip even
the read+hash — the mtime fast path every production scanner ships.  The
hint is only trusted when both mtime and size match; the authoritative
key remains the content digest.

The cache degrades gracefully: corrupt or unreadable stores load as
empty, and save failures (read-only trees) are swallowed — a scan never
fails because of its cache.

The store is safe to share between concurrent readers/writers *within
one process*: every public operation takes the instance lock, which is
what lets the scan daemon hold one cache open across overlapping HTTP
requests where the CLI opened one per run.  :meth:`ScanCache.close` is
idempotent (it persists once and turns every later mutation into a
no-op), so belt-and-braces shutdown paths can close the same cache from
several places without double-writing.

**Concurrent-open contract (cross-process).**  Two processes may open
the same cache root at once; the store must never be corrupted by it.
Two guarantees hold in *every* mode:

- each process stages its snapshot in a per-PID temp file and publishes
  it with ``os.replace``, so a reader never observes a half-written
  index — the worst outcome of an unsynchronized concurrent save is
  last-writer-wins, losing the other process's *new* entries but never
  producing an unparseable store;
- loads of a corrupt, foreign-schema, or foreign-fingerprint store
  degrade to an empty table, never to an exception.

Opening with ``shared=True`` upgrades last-writer-wins to a real shared
tier (the fleet's cross-worker result cache, ``docs/fleet.md``):

- :meth:`save` becomes a read-merge-write transaction serialized by an
  ``fcntl.flock`` exclusive lock on ``scan-cache.lock`` — the
  single-writer guard — so concurrent savers union their entries
  instead of clobbering each other (in-memory entries win over disk on
  digest collision, which is harmless: same digest + same fingerprint
  means the same verdict);
- :meth:`lookup` misses consult the store file's ``(mtime_ns, size)``
  and re-read it when another process has published since our last
  load, so worker B serves a warm hit for bytes worker A scanned
  moments ago without any network protocol between them.

On platforms without ``fcntl`` (Windows) the flock guard degrades to
the atomic-replace contract above: never corrupt, possibly lossy.

Findings round-trip through :meth:`~repro.types.Finding.to_dict`, which
includes any attached provenance record — so a traced scan's audit
trails survive into warm scans, and ``--explain`` on a fully-cached scan
still names every guard verdict without re-matching.  Findings stored
without provenance (untraced scans) keep the pre-1.2 entry shape.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # POSIX single-writer guard for the shared tier
    import fcntl
except ImportError:  # pragma: no cover - Windows: atomic replace only
    fcntl = None  # type: ignore[assignment]

from repro.types import Finding

CACHE_DIR_NAME = ".patchitpy-cache"
CACHE_FILE_NAME = "scan-cache.json"
CACHE_LOCK_NAME = "scan-cache.lock"
CACHE_SCHEMA_VERSION = 1

# Entries beyond this are dropped (oldest-inserted first) at save time so
# the store cannot grow without bound on long-lived checkouts.
DEFAULT_MAX_ENTRIES = 50_000


def hash_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw file bytes — the cache key."""
    return hashlib.sha256(data).hexdigest()


def hash_source(source: str) -> str:
    """Digest of a decoded source string (UTF-8 re-encoded)."""
    return hash_bytes(source.encode("utf-8"))


@dataclass(frozen=True)
class CachedResult:
    """The stored outcome of analyzing one file content."""

    findings: List[Finding]
    error: Optional[str] = None


class ScanCache:
    """Content-addressed store of per-file detect results.

    Parameters
    ----------
    root:
        Directory holding the ``.patchitpy-cache/`` store (normally the
        scan root).
    fingerprint:
        The active ruleset fingerprint; a persisted store written under a
        different fingerprint is ignored and overwritten on save.
    shared:
        Opt into the cross-process shared tier: saves become flock-guarded
        read-merge-write transactions and lookup misses re-read a store
        another process has published since our last load (see the module
        docstring's concurrent-open contract).
    """

    def __init__(
        self,
        root: Path,
        fingerprint: str,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        shared: bool = False,
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.max_entries = max_entries
        self.shared = shared
        self.hits = 0
        self.misses = 0
        self.stale_hints = 0
        self.refreshes = 0
        self._entries: Dict[str, dict] = {}
        self._stat_hints: Dict[str, dict] = {}
        #: ``(mtime_ns, size)`` of the store file as of our last read —
        #: the shared tier's cheap "has anyone published?" probe.
        self._store_state: Optional[Tuple[int, int]] = None
        self._dirty = False
        self._closed = False
        # Reentrant: save() runs under the lock and close() calls save().
        self._lock = threading.RLock()
        self._load()

    # ------------------------------------------------------------- paths

    @property
    def cache_dir(self) -> Path:
        return self.root / CACHE_DIR_NAME

    @property
    def cache_file(self) -> Path:
        return self.cache_dir / CACHE_FILE_NAME

    @property
    def lock_file(self) -> Path:
        return self.cache_dir / CACHE_LOCK_NAME

    # ------------------------------------------------------------ lookup

    def lookup(self, digest: str) -> Optional[CachedResult]:
        """Stored result for a content digest, or ``None`` on a miss.

        In shared mode a miss first checks whether another process has
        published a newer store and, if so, folds it in and retries —
        the cross-worker warm-hit path.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None and self.shared and self.refresh():
                entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
        findings = [Finding.from_dict(item) for item in entry.get("findings", ())]
        return CachedResult(findings=findings, error=entry.get("error"))

    def store(
        self,
        digest: str,
        findings: Sequence[Finding],
        error: Optional[str] = None,
    ) -> None:
        """Record the analysis outcome for a content digest."""
        entry = {
            "findings": [finding.to_dict() for finding in findings],
            "error": error,
        }
        with self._lock:
            if self._closed:
                return
            self._entries[digest] = entry
            self._dirty = True

    # --------------------------------------------------- stat fast path

    def stat_digest(self, path: Path, stat: os.stat_result) -> Optional[str]:
        """Digest recorded for ``path`` if its mtime+size are unchanged.

        A hint whose mtime or size no longer matches counts as *stale*
        (``self.stale_hints``): the file changed on disk, so the caller
        falls back to the read-and-hash path.
        """
        with self._lock:
            hint = self._stat_hints.get(str(path.absolute()))
            if hint is None:
                return None
            if (
                hint.get("mtime_ns") != stat.st_mtime_ns
                or hint.get("size") != stat.st_size
            ):
                self.stale_hints += 1
                return None
            return hint.get("digest")

    def remember_stat(self, path: Path, stat: os.stat_result, digest: str) -> None:
        """Record the mtime/size → digest hint for a path."""
        hint = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "digest": digest,
        }
        with self._lock:
            if self._closed:
                return
            self._stat_hints[str(path.absolute())] = hint
            self._dirty = True

    def forget_path(self, path: Path) -> None:
        """Drop the stat hint for a path (e.g. after patching it)."""
        with self._lock:
            if self._stat_hints.pop(str(path.absolute()), None) is not None:
                self._dirty = True

    # ------------------------------------------------------- persistence

    def _store_stat(self) -> Optional[Tuple[int, int]]:
        """``(mtime_ns, size)`` of the store file, or ``None`` if absent."""
        try:
            stat = os.stat(self.cache_file)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _read_store(self) -> Tuple[Dict[str, dict], Dict[str, dict]]:
        """Parse the persisted store into ``(entries, stat_hints)``.

        Corruption, a foreign schema, or a foreign ruleset fingerprint
        all degrade to empty tables — a cache must never raise.
        """
        try:
            raw = json.loads(self.cache_file.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}, {}
        if not isinstance(raw, dict):
            return {}, {}
        if raw.get("schema") != CACHE_SCHEMA_VERSION:
            return {}, {}
        if raw.get("fingerprint") != self.fingerprint:
            return {}, {}  # ruleset changed: every stored verdict is suspect
        entries = raw.get("entries")
        hints = raw.get("stat_hints")
        return (
            entries if isinstance(entries, dict) else {},
            hints if isinstance(hints, dict) else {},
        )

    def _load(self) -> None:
        self._store_state = self._store_stat()
        entries, hints = self._read_store()
        if entries:
            self._entries = entries
        if hints:
            self._stat_hints = hints

    def _merge_disk(self) -> None:
        """Fold the on-disk store into memory; in-memory entries win.

        The preference is safe, not just convenient: a digest collision
        under one fingerprint means both sides hold the same verdict, and
        our copy may additionally be dirty (not yet persisted).
        """
        disk_entries, disk_hints = self._read_store()
        for digest, entry in disk_entries.items():
            self._entries.setdefault(digest, entry)
        for path, hint in disk_hints.items():
            self._stat_hints.setdefault(path, hint)

    def refresh(self) -> bool:
        """Shared tier: pick up entries another process has published.

        Compares the store file's ``(mtime_ns, size)`` against what we
        last read and re-reads on change.  Returns True when a newer
        store was folded in.  No-op outside shared mode.
        """
        if not self.shared:
            return False
        with self._lock:
            current = self._store_stat()
            if current == self._store_state:
                return False
            self._merge_disk()
            self._store_state = current
            self.refreshes += 1
            return True

    @contextlib.contextmanager
    def _writer_lock(self) -> Iterator[None]:
        """The flock single-writer guard (shared mode on POSIX only)."""
        if not self.shared or fcntl is None:
            yield
            return
        with open(self.lock_file, "a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def save(self) -> bool:
        """Persist the store atomically; returns False when skipped/failed.

        Shared mode turns this into a read-merge-write transaction under
        the flock single-writer guard, so two processes saving the same
        root union their entries instead of clobbering each other.  The
        staged snapshot always goes through a per-PID temp file plus
        ``os.replace``, so even unsynchronized writers (default mode, or
        platforms without ``fcntl``) can only lose entries, never corrupt
        the index.
        """
        with self._lock:
            if not self._dirty:
                return False
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                with self._writer_lock():
                    if self.shared:
                        # Re-read under the exclusive lock: another writer
                        # may have published since our last refresh.
                        self._merge_disk()
                    if len(self._entries) > self.max_entries:
                        overflow = len(self._entries) - self.max_entries
                        for digest in list(self._entries)[:overflow]:
                            del self._entries[digest]
                    payload = {
                        "schema": CACHE_SCHEMA_VERSION,
                        "fingerprint": self.fingerprint,
                        "entries": self._entries,
                        "stat_hints": self._stat_hints,
                    }
                    tmp = self.cache_file.with_suffix(f".json.tmp{os.getpid()}")
                    tmp.write_text(
                        json.dumps(payload, separators=(",", ":")), encoding="utf-8"
                    )
                    os.replace(tmp, self.cache_file)
                    self._store_state = self._store_stat()
            except OSError:
                return False
            self._dirty = False
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # --------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> bool:
        """Persist pending writes and retire the store; idempotent.

        The first call saves (when dirty) and marks the cache closed;
        every later call — and every later :meth:`store`/
        :meth:`remember_stat`/:meth:`save` — is a no-op, so multiple
        shutdown paths (request handler, drain hook, ``atexit``) can all
        close the same instance safely.  Lookups keep working read-only.
        Returns True when this call performed the persisting save.
        """
        with self._lock:
            if self._closed:
                return False
            saved = self.save()
            self._closed = True
            return saved

    def __enter__(self) -> "ScanCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @classmethod
    def clear(cls, root: Path) -> bool:
        """Delete the persisted store under ``root``; True if one existed."""
        directory = Path(root) / CACHE_DIR_NAME
        if not directory.is_dir():
            return False
        shutil.rmtree(directory, ignore_errors=True)
        return True
