"""Standalone HTML report rendering for project scans.

Security scanners ship shareable HTML reports; this renderer turns a
:class:`~repro.core.project.ProjectReport` into a single self-contained
page (inline CSS, no external assets): summary tiles, a per-CWE
breakdown, and a per-file finding table with severity badges.
"""

from __future__ import annotations

import html
from typing import List

from repro.core.project import ProjectReport
from repro.cwe import get_cwe, owasp_category_for
from repro.exceptions import UnknownCWEError
from repro.types import Severity

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.tiles { display: flex; gap: 1rem; }
.tile { border: 1px solid #d8d8e4; border-radius: 8px; padding: 0.8rem 1.2rem; }
.tile .num { font-size: 1.6rem; font-weight: 700; }
.tile .label { font-size: 0.8rem; color: #5a5a72; }
table { border-collapse: collapse; width: 100%; margin-top: 0.5rem; }
th, td { text-align: left; padding: 0.35rem 0.6rem; border-bottom: 1px solid #ececf4;
         font-size: 0.85rem; vertical-align: top; }
th { color: #5a5a72; font-weight: 600; }
code { background: #f4f4fa; padding: 0.1rem 0.3rem; border-radius: 4px; }
.badge { display: inline-block; border-radius: 4px; padding: 0.05rem 0.45rem;
         font-size: 0.75rem; font-weight: 600; color: #fff; }
.badge.low { background: #8a8aa0; } .badge.medium { background: #c78a00; }
.badge.high { background: #c74e00; } .badge.critical { background: #b00020; }
.clean { color: #2e7d32; }
details.prov { margin: 0; } details.prov summary { cursor: pointer;
         color: #5a5a72; font-size: 0.8rem; }
details.prov ul { margin: 0.3rem 0 0.3rem 1rem; padding: 0;
         list-style: none; font-size: 0.8rem; }
.veto { color: #b00020; font-weight: 600; }
.pass { color: #2e7d32; }
"""


def _provenance_details(provenance) -> str:
    """The collapsible "why it fired" block for one finding row."""
    items: List[str] = []
    if provenance.prefilter is None:
        items.append("<li>prefilter: none</li>")
    else:
        items.append(
            f"<li>prefilter: <code>{html.escape(provenance.prefilter)}</code></li>"
        )
    if provenance.prerequisites:
        verdict = "satisfied" if provenance.prerequisites_passed else "unsatisfied"
        items.append(
            f"<li>prerequisites: {provenance.prerequisites} ({verdict})</li>"
        )
    for decision in provenance.guards:
        css = "veto" if decision.vetoed else "pass"
        verdict = "veto" if decision.vetoed else "pass"
        items.append(
            f'<li><span class="{css}">[{verdict}]</span> ({html.escape(decision.scope)}) '
            f"{html.escape(decision.description)}</li>"
        )
    if provenance.patch is not None:
        items.append(
            f"<li>patch: <code>{html.escape(provenance.patch.replacement[:80])}</code></li>"
        )
        if provenance.patch.imports:
            imports = ", ".join(provenance.patch.imports)
            items.append(f"<li>imports: <code>{html.escape(imports)}</code></li>")
        if provenance.patch.verdict:
            css = "pass" if provenance.patch.verdict == "verified" else "veto"
            detail = (
                f" — {html.escape(provenance.patch.verdict_detail)}"
                if provenance.patch.verdict_detail
                else ""
            )
            items.append(
                f'<li>verdict: <span class="{css}">'
                f"{html.escape(provenance.patch.verdict)}</span>{detail}</li>"
            )
    return (
        '<details class="prov"><summary>provenance</summary><ul>'
        + "".join(items)
        + "</ul></details>"
    )


def _severity_badge(severity: Severity) -> str:
    return f'<span class="badge {severity.value}">{severity.value}</span>'


def _cwe_link(cwe_id: str) -> str:
    number = int(cwe_id.split("-")[1])
    try:
        name = get_cwe(cwe_id).name
    except UnknownCWEError:
        name = cwe_id
    return (
        f'<a href="https://cwe.mitre.org/data/definitions/{number}.html">'
        f"{html.escape(cwe_id)}</a> {html.escape(name)}"
    )


def render_html_report(report: ProjectReport, title: str = "PatchitPy scan report") -> str:
    """Render the report as a complete HTML document."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>root: <code>{html.escape(str(report.root))}</code></p>",
        '<div class="tiles">',
        f'<div class="tile"><div class="num">{report.scanned_count}</div>'
        '<div class="label">files scanned</div></div>',
        f'<div class="tile"><div class="num">{len(report.vulnerable_files)}</div>'
        '<div class="label">vulnerable files</div></div>',
        f'<div class="tile"><div class="num">{report.total_findings}</div>'
        '<div class="label">findings</div></div>',
        "</div>",
    ]

    verdict_counts = report.verdict_counts()
    if verdict_counts:
        parts.append(
            "<h2>Patch verdicts</h2><table><tr><th>verdict</th><th>count</th></tr>"
        )
        for status, count in verdict_counts.items():
            css = "pass" if status == "verified" else "veto"
            parts.append(
                f'<tr><td><span class="{css}">{html.escape(status)}</span></td>'
                f"<td>{count}</td></tr>"
            )
        parts.append("</table>")
        if report.unverified_patches:
            parts.append(
                f"<p>{report.unverified_patches} patch(es) failed verification "
                "and were reverted — their edits did not ship.</p>"
            )

    by_cwe = report.findings_by_cwe()
    if by_cwe:
        parts.append("<h2>Findings by CWE</h2><table><tr><th>CWE</th><th>count</th></tr>")
        for cwe_id, count in by_cwe.items():
            category = owasp_category_for(cwe_id)
            category_text = f" <small>({category.code})</small>" if category else ""
            parts.append(
                f"<tr><td>{_cwe_link(cwe_id)}{category_text}</td><td>{count}</td></tr>"
            )
        parts.append("</table>")

    parts.append("<h2>Files</h2>")
    if not report.vulnerable_files:
        parts.append('<p class="clean">No vulnerable patterns detected.</p>')
    for result in report.vulnerable_files:
        parts.append(f"<h3><code>{html.escape(str(result.path))}</code></h3>")
        parts.append(
            "<table><tr><th>rule</th><th>CWE</th><th>severity</th>"
            "<th>message</th><th>snippet</th></tr>"
        )
        for finding in result.findings:
            message = html.escape(finding.message)
            provenance = getattr(finding, "provenance", None)
            if provenance is not None:
                message += _provenance_details(provenance)
            parts.append(
                "<tr>"
                f"<td><code>{html.escape(finding.rule_id)}</code></td>"
                f"<td>{_cwe_link(finding.cwe_id)}</td>"
                f"<td>{_severity_badge(finding.severity)}</td>"
                f"<td>{message}</td>"
                f"<td><code>{html.escape(finding.snippet[:80])}</code></td>"
                "</tr>"
            )
        parts.append("</table>")

    health = getattr(report.metrics, "rule_health", None) if report.metrics else None
    if health:
        parts.append(
            "<h2>Rule health</h2>"
            "<table><tr><th>rule</th><th>budget breaches</th>"
            "<th>worst file</th><th>worst ms</th>"
            "<th>verified</th><th>unverified</th><th>exemplar</th></tr>"
        )
        for rule_id in sorted(health):
            entry = health[rule_id]
            verdicts = getattr(entry, "verdicts", {})
            unverified = entry.unverified() if hasattr(entry, "unverified") else 0
            exemplar = getattr(entry, "failing_exemplar", "")
            parts.append(
                "<tr>"
                f"<td><code>{html.escape(rule_id)}</code></td>"
                f"<td>{entry.breaches}</td>"
                f"<td><code>{html.escape(entry.worst_file)}</code></td>"
                f"<td>{entry.worst_ms:.1f}</td>"
                f"<td>{verdicts.get('verified', 0)}</td>"
                f"<td>{unverified}</td>"
                f"<td><code>{html.escape(exemplar[:120])}</code></td>"
                "</tr>"
            )
        parts.append("</table>")

    errors = [f for f in report.files if f.error]
    if errors:
        parts.append("<h2>Skipped files</h2><ul>")
        for result in errors:
            parts.append(
                f"<li><code>{html.escape(str(result.path))}</code> — "
                f"{html.escape(result.error)}</li>"
            )
        parts.append("</ul>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(report: ProjectReport, path: str, title: str = "PatchitPy scan report") -> str:
    """Write the HTML report to ``path``; returns the document."""
    document = render_html_report(report, title)
    with open(path, "w") as handle:
        handle.write(document)
    return document
