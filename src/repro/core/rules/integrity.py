"""A08:2021 Software and Data Integrity Failures rules — deserialization.

Rule ids use the ``PIT-A08-##`` scheme.  CWE-502 is the most frequent
weakness in the paper's generated corpus, so this category carries several
rule variants for the different deserialization APIs.
"""

from __future__ import annotations

from repro.core.rules.base import PatchTemplate, rule
from repro.core.rules.helpers import yaml_safe_load_fix
from repro.types import Confidence, Severity


def build_rules() -> list:
    """All A08 Software and Data Integrity Failures rules."""
    return [
        # ---------------- pickle family (CWE-502) ----------------
        rule(
            "PIT-A08-01",
            "CWE-502",
            "pickle.loads() deserializes untrusted bytes",
            r"pickle\.loads\(\s*(?P<arg>[^()]*(?:\([^()]*\))?[^()]*)\)",
            severity=Severity.CRITICAL,
            not_on_line=(r"#\s*trusted",),
            patch=PatchTemplate(
                replacement=r"json.loads(\g<arg>)",
                imports=("import json",),
                description="Deserialize with JSON instead of pickle",
            ),
        ),
        rule(
            "PIT-A08-02",
            "CWE-502",
            "pickle.load() deserializes an untrusted stream",
            r"pickle\.load\(\s*(?P<arg>[^()]*(?:\([^()]*\))?[^()]*)\)",
            severity=Severity.CRITICAL,
            not_on_line=(r"#\s*trusted",),
            patch=PatchTemplate(
                replacement=r"json.load(\g<arg>)",
                imports=("import json",),
                description="Deserialize with JSON instead of pickle",
            ),
        ),
        rule(
            "PIT-A08-03",
            "CWE-502",
            "cPickle/dill/_pickle deserialization of untrusted data",
            r"(?:cPickle|dill|_pickle)\.loads?\(",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-A08-04",
            "CWE-502",
            "marshal deserialization of untrusted data",
            r"marshal\.loads?\(",
            severity=Severity.HIGH,
        ),
        rule(
            "PIT-A08-05",
            "CWE-502",
            "jsonpickle.decode() reconstructs arbitrary objects",
            r"jsonpickle\.decode\(\s*(?P<arg>[^()]+)\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r"json.loads(\g<arg>)",
                imports=("import json",),
                description="Decode plain JSON instead of jsonpickle",
            ),
        ),
        # ---------------- YAML (CWE-502) ----------------
        rule(
            "PIT-A08-06",
            "CWE-502",
            "yaml.load() without a safe loader",
            r"yaml\.load\(\s*(?P<args>[^()]*(?:\([^()]*\)[^()]*)*)\)",
            severity=Severity.HIGH,
            not_if=(r"SafeLoader",),
            patch=PatchTemplate(
                builder=yaml_safe_load_fix,
                imports=("import yaml",),
                description="Use yaml.safe_load",
            ),
        ),
        rule(
            "PIT-A08-07",
            "CWE-502",
            "yaml.full_load()/unsafe_load() on untrusted input",
            r"yaml\.(?:full_load|unsafe_load)\(\s*(?P<args>[^()]*)\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=yaml_safe_load_fix,
                imports=("import yaml",),
                description="Use yaml.safe_load",
            ),
        ),
        # ---------------- shelve / model files (CWE-502) ----------------
        rule(
            "PIT-A08-08",
            "CWE-502",
            "shelve opens an untrusted database (pickle-backed)",
            r"shelve\.open\(\s*[^()]*request(?:[^()]|\([^()]*\))*\)",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
        ),
        rule(
            "PIT-A08-09",
            "CWE-502",
            "Model file loaded with a pickle-based loader",
            r"(?:torch|joblib)\.load\(",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        ),
        # ---------------- Unverified code/content (CWE-494/829/426) ----------------
        rule(
            "PIT-A08-10",
            "CWE-494",
            "Downloaded content executed without an integrity check",
            r"exec\(\s*(?:requests\.get\([^()]*\)|urllib\.request\.urlopen\([^()]*\))\.(?:text|read\(\))",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-A08-11",
            "CWE-829",
            "Remote script piped into an interpreter/installer",
            r"os\.system\(\s*['\"][^'\"]*(?:curl|wget)[^'\"]*\|\s*(?:sh|bash|python)",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-A08-12",
            "CWE-426",
            "Module search path extended with a world-writable directory",
            r"sys\.path\.(?:append|insert)\(\s*(?:0\s*,\s*)?['\"](?:/tmp|\.|)['\"]\s*\)",
            severity=Severity.MEDIUM,
        ),
    ]
