"""A06:2021 Vulnerable and Outdated Components rules — obsolete modules.

Rule ids use the ``PIT-A06-##`` scheme.
"""

from __future__ import annotations

from repro.core.rules.base import PatchTemplate, rule
from repro.types import Confidence, Severity


def build_rules() -> list:
    """All A06 Vulnerable and Outdated Components rules, in catalog order."""
    return [
        rule(
            "PIT-A06-01",
            "CWE-477",
            "Cleartext Telnet client used",
            r"telnetlib\.Telnet\(",
            severity=Severity.HIGH,
        ),
        rule(
            "PIT-A06-02",
            "CWE-477",
            "Cleartext FTP client used",
            r"ftplib\.FTP\(",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement="ftplib.FTP_TLS(",
                imports=("import ftplib",),
                description="Use FTP over TLS",
            ),
        ),
        rule(
            "PIT-A06-03",
            "CWE-477",
            "Obsolete os.tempnam()/os.tmpnam() used",
            r"os\.(?:tempnam|tmpnam)\(\s*\)",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement="tempfile.mkstemp()[1]",
                imports=("import tempfile",),
                description="Create temporary files atomically",
            ),
        ),
        rule(
            "PIT-A06-04",
            "CWE-1104",
            "Deprecated SSL wrap_socket API used",
            r"ssl\.wrap_socket\(",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        ),
        rule(
            "PIT-A06-05",
            "CWE-477",
            "Legacy urllib.urlopen-style API used",
            r"urllib\.urlopen\(",
            severity=Severity.LOW,
            patch=PatchTemplate(
                replacement="urllib.request.urlopen(",
                imports=("import urllib.request",),
                description="Use the supported urllib.request API",
            ),
        ),
    ]
