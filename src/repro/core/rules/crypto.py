"""A02:2021 Cryptographic Failures rules — weak hashes, ciphers, TLS, RNG.

Rule ids use the ``PIT-A02-##`` scheme.
"""

from __future__ import annotations

from repro.core.rules.base import PatchTemplate, rule
from repro.types import Confidence, Severity


def build_rules() -> list:
    """All A02 Cryptographic Failures rules, in catalog order."""
    return [
        # ---------------- Weak hash algorithms (CWE-327/328) ----------------
        rule(
            "PIT-A02-01",
            "CWE-328",
            "MD5 used as a cryptographic hash",
            r"hashlib\.md5\(",
            severity=Severity.HIGH,
            not_on_line=(r"usedforsecurity\s*=\s*False",),
            patch=PatchTemplate(
                replacement="hashlib.sha256(",
                imports=("import hashlib",),
                description="Replace MD5 with SHA-256",
            ),
        ),
        rule(
            "PIT-A02-02",
            "CWE-328",
            "SHA-1 used as a cryptographic hash",
            r"hashlib\.sha1\(",
            severity=Severity.HIGH,
            not_on_line=(r"usedforsecurity\s*=\s*False",),
            patch=PatchTemplate(
                replacement="hashlib.sha256(",
                imports=("import hashlib",),
                description="Replace SHA-1 with SHA-256",
            ),
        ),
        rule(
            "PIT-A02-03",
            "CWE-328",
            "Weak algorithm requested through hashlib.new()",
            r"hashlib\.new\(\s*(?P<q>['\"])(?:md5|md4|sha1?|sha)(?P=q)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r"hashlib.new(\g<q>sha256\g<q>",
                imports=("import hashlib",),
                description="Request SHA-256 from hashlib.new",
            ),
        ),
        rule(
            "PIT-A02-04",
            "CWE-916",
            "Password hashed with a fast unsalted digest",
            r"hashlib\.(?:sha256|sha512|blake2b)\(\s*(?P<pwd>\w*(?:password|passwd|pwd)\w*(?:\.encode\(\s*(?:['\"][\w-]+['\"])?\s*\))?)\s*\)(?:\.hexdigest\(\))?",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
            patch=PatchTemplate(
                replacement=r"hashlib.pbkdf2_hmac('sha256', \g<pwd>, os.urandom(16), 310000)",
                imports=("import hashlib", "import os"),
                description="Derive the hash with salted PBKDF2",
            ),
        ),
        rule(
            "PIT-A02-05",
            "CWE-759",
            "crypt.crypt() used without a strong KDF",
            r"crypt\.crypt\(\s*(?P<pwd>[^(),]+)\s*(?:,\s*[^()]+)?\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r"hashlib.pbkdf2_hmac('sha256', str(\g<pwd>).encode(), os.urandom(16), 310000).hex()",
                imports=("import hashlib", "import os"),
                description="Replace crypt with salted PBKDF2",
            ),
        ),
        # ---------------- Broken ciphers and modes (CWE-327/329) ----------------
        rule(
            "PIT-A02-06",
            "CWE-327",
            "Broken symmetric cipher (DES/3DES/RC4/Blowfish)",
            r"\b(?:DES3?|ARC4|ARC2|Blowfish|XOR)\.new\(",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-A02-07",
            "CWE-327",
            "AES used in ECB mode",
            r"AES\.MODE_ECB",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement="AES.MODE_GCM",
                description="Use authenticated GCM mode instead of ECB",
            ),
        ),
        rule(
            "PIT-A02-08",
            "CWE-329",
            "Static initialization vector passed to a CBC cipher",
            r"AES\.new\(\s*(?P<key>[^,()]+),\s*AES\.MODE_CBC\s*,\s*(?P<iv>b?['\"][^'\"]*['\"])\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r"AES.new(\g<key>, AES.MODE_CBC, os.urandom(16))",
                imports=("import os",),
                description="Generate a fresh random IV per encryption",
            ),
        ),
        # ---------------- Weak randomness (CWE-330/338/335) ----------------
        rule(
            "PIT-A02-09",
            "CWE-338",
            "random.choice() used to build a security token",
            r"random\.choice\(",
            severity=Severity.MEDIUM,
            not_in_file=(r"import\s+secrets",),
            patch=PatchTemplate(
                replacement="secrets.choice(",
                imports=("import secrets",),
                description="Draw characters from the secrets module",
            ),
        ),
        rule(
            "PIT-A02-10",
            "CWE-330",
            "Non-cryptographic PRNG used for secrets",
            r"random\.(?:random|randint|randrange|getrandbits|randbytes)\(",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
            not_in_file=(r"import\s+secrets",),
            not_on_line=(r"#\s*simulation|#\s*sampling",),
        ),
        rule(
            "PIT-A02-11",
            "CWE-335",
            "PRNG seeded with a constant",
            r"random\.seed\(\s*(?:\d+|['\"][^'\"]*['\"])\s*\)",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement="random.seed()",
                description="Seed from the operating system entropy pool",
            ),
        ),
        # ---------------- TLS misuse (CWE-295/326/319) ----------------
        rule(
            "PIT-A02-12",
            "CWE-295",
            "requests called with certificate verification disabled",
            r"verify\s*=\s*False",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement="verify=True",
                description="Re-enable TLS certificate verification",
            ),
        ),
        rule(
            "PIT-A02-13",
            "CWE-295",
            "Unverified SSL context created",
            r"ssl\._create_unverified_context\(\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement="ssl.create_default_context()",
                imports=("import ssl",),
                description="Use the verifying default SSL context",
            ),
        ),
        rule(
            "PIT-A02-14",
            "CWE-295",
            "Hostname checking disabled on an SSL context",
            r"\.check_hostname\s*=\s*False",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=".check_hostname = True",
                description="Re-enable hostname verification",
            ),
        ),
        rule(
            "PIT-A02-15",
            "CWE-326",
            "Obsolete SSL/TLS protocol version selected",
            r"ssl\.PROTOCOL_(?:SSLv2|SSLv3|SSLv23|TLSv1(?:_1)?)\b",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement="ssl.PROTOCOL_TLS_CLIENT",
                imports=("import ssl",),
                description="Negotiate modern TLS via PROTOCOL_TLS_CLIENT",
            ),
        ),
        rule(
            "PIT-A02-16",
            "CWE-319",
            "Credentials posted over cleartext HTTP",
            r"requests\.(?:post|put)\(\s*f?(?P<q>['\"])http://(?:(?!(?P=q)).)*(?P=q)\s*,[^)]*(?:password|token|secret|credential)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=_https_upgrade,
                description="Switch the endpoint to HTTPS",
            ),
        ),
        rule(
            "PIT-A02-17",
            "CWE-321",
            "Hard-coded cryptographic key material",
            r"(?P<name>\b\w*(?:aes_key|encryption_key|signing_key|private_key|crypto_key)\w*)\s*=\s*b?['\"][^'\"]{8,}['\"]",
            severity=Severity.HIGH,
            not_on_line=(r"os\.environ|getenv|urandom|token_bytes",),
            patch=PatchTemplate(
                replacement=r'\g<name> = os.environ["\g<name>".upper()].encode()',
                imports=("import os",),
                description="Load key material from the environment",
            ),
        ),
        rule(
            "PIT-A02-18",
            "CWE-261",
            "Password protected only by reversible base64 encoding",
            r"base64\.b64encode\(\s*\w*(?:password|passwd|pwd)\w*",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
        ),
    ]


def _https_upgrade(match):
    """Rewrite the matched call's URL scheme from http:// to https://."""
    return match.group(0).replace("http://", "https://", 1), ()
