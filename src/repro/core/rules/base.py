"""Rule and patch-template model for the PatchitPy engine.

A :class:`DetectionRule` is a compiled regular expression plus metadata
(CWE, OWASP category, severity) and optional *guards* — secondary patterns
that veto a match (for instance when the flagged line already applies the
mitigation, or carries a ``# nosec`` waiver).  A rule may carry a
:class:`PatchTemplate`; rules without one are detection-only, which is one
of the reasons the paper's repair rate sits below 100 %.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.prefilter import required_literal
from repro.cwe import OwaspCategory, normalize_cwe_id, owasp_category_for
from repro.exceptions import DuplicateRuleError, RuleError
from repro.types import Confidence, Severity

# A patch builder receives the regex match and returns the replacement text
# plus any import statements the replacement requires.
PatchBuilder = Callable[["re.Match[str]"], Tuple[str, Tuple[str, ...]]]


@dataclass(frozen=True)
class PatchTemplate:
    """How to rewrite a matched vulnerable pattern into its safe form.

    Exactly one of ``replacement`` (a ``re.Match.expand`` template, so
    ``\\g<name>`` backrefs work) or ``builder`` (a callable for patches
    that need computation, e.g. parameterizing an f-string SQL query) must
    be provided.
    """

    replacement: Optional[str] = None
    builder: Optional[PatchBuilder] = None
    imports: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if (self.replacement is None) == (self.builder is None):
            raise RuleError("PatchTemplate needs exactly one of replacement/builder")

    def render(self, match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
        """Produce ``(replacement_text, imports)`` for a concrete match."""
        if self.builder is not None:
            text, extra_imports = self.builder(match)
            return text, tuple(self.imports) + tuple(extra_imports)
        return match.expand(self.replacement), tuple(self.imports)


@dataclass(frozen=True)
class Guard:
    """A veto condition evaluated against a candidate match."""

    pattern: "re.Pattern[str]"
    scope: str = "match"  # "match" (the matched text), "line", or "file"
    description: str = ""

    def vetoes(
        self, source: str, match: "re.Match[str]", lines=None
    ) -> bool:
        """True when the guard suppresses this match.

        ``lines`` optionally passes the caller's shared
        :class:`~repro.types.LineIndex` for ``source`` so line-scope
        guards reuse one line table across every rule and match of a
        scan instead of re-deriving the line per veto check.
        """
        if self.scope == "match":
            return bool(self.pattern.search(match.group(0)))
        if self.scope == "line":
            if lines is not None:
                line = lines.line_text(match.start())
            else:
                line = _line_containing(source, match.start())
            return bool(self.pattern.search(line))
        if self.scope == "file":
            return bool(self.pattern.search(source))
        raise RuleError(f"unknown guard scope: {self.scope}")


def _line_containing(source: str, offset: int) -> str:
    start = source.rfind("\n", 0, offset) + 1
    end = source.find("\n", offset)
    if end == -1:
        end = len(source)
    return source[start:end]


_NOSEC_GUARD = Guard(pattern=re.compile(r"#\s*nosec"), scope="line", description="# nosec waiver")


@dataclass(frozen=True)
class DetectionRule:
    """One PatchitPy detection rule (optionally with patching logic).

    ``prerequisites`` are file-scope patterns that must *all* be present
    for the rule to apply — e.g. an XSS rule only fires in files that
    import a web framework.  ``guards`` veto individual matches.
    """

    rule_id: str
    cwe_id: str
    description: str
    pattern: "re.Pattern[str]"
    severity: Severity = Severity.MEDIUM
    confidence: Confidence = Confidence.HIGH
    patch: Optional[PatchTemplate] = None
    guards: Tuple[Guard, ...] = ()
    prerequisites: Tuple["re.Pattern[str]", ...] = ()
    message: str = ""
    # Literal prefilter (the longest substring every match must contain),
    # derived once at construction.  Storing it on the rule keeps matching
    # free of shared mutable caches and survives pickling into worker
    # processes, unlike the previous module-global id()-keyed cache.
    prefilter: Optional[str] = field(default=None, compare=False, repr=False)

    def applies_to(self, source: str) -> bool:
        """True when every file-scope prerequisite is satisfied."""
        return all(pattern.search(source) for pattern in self.prerequisites)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cwe_id", normalize_cwe_id(self.cwe_id))
        if not self.rule_id:
            raise RuleError("rule_id must be non-empty")
        object.__setattr__(self, "prefilter", required_literal(self.pattern))

    @property
    def owasp(self) -> Optional[OwaspCategory]:
        """OWASP Top 10:2021 category of the rule's CWE."""
        return owasp_category_for(self.cwe_id)

    @property
    def patchable(self) -> bool:
        """True when the rule carries a patch template."""
        return self.patch is not None

    def all_guards(self) -> Tuple[Guard, ...]:
        """Rule guards plus the implicit ``# nosec`` waiver guard."""
        return self.guards + (_NOSEC_GUARD,)


def rule(
    rule_id: str,
    cwe_id: str,
    description: str,
    pattern: str,
    *,
    severity: Severity = Severity.MEDIUM,
    confidence: Confidence = Confidence.HIGH,
    patch: Optional[PatchTemplate] = None,
    not_if: Sequence[str] = (),
    not_on_line: Sequence[str] = (),
    not_in_file: Sequence[str] = (),
    require_in_file: Sequence[str] = (),
    flags: int = 0,
    message: str = "",
) -> DetectionRule:
    """Terse constructor used by the rule catalog modules."""
    guards: List[Guard] = []
    for expr in not_if:
        guards.append(Guard(re.compile(expr, flags), scope="match"))
    for expr in not_on_line:
        guards.append(Guard(re.compile(expr, flags), scope="line"))
    for expr in not_in_file:
        guards.append(Guard(re.compile(expr, flags), scope="file"))
    return DetectionRule(
        rule_id=rule_id,
        cwe_id=cwe_id,
        description=description,
        pattern=re.compile(pattern, flags),
        severity=severity,
        confidence=confidence,
        patch=patch,
        guards=tuple(guards),
        prerequisites=tuple(re.compile(expr, flags) for expr in require_in_file),
        message=message or description,
    )


class RuleSet:
    """An ordered, id-unique collection of detection rules."""

    def __init__(self, rules: Iterable[DetectionRule] = ()) -> None:
        self._rules: List[DetectionRule] = []
        self._by_id: Dict[str, DetectionRule] = {}
        self._index = None
        for item in rules:
            self.add(item)

    def add(self, item: DetectionRule) -> None:
        """Register one rule (duplicate ids raise)."""
        if item.rule_id in self._by_id:
            raise DuplicateRuleError(f"duplicate rule id: {item.rule_id}")
        self._by_id[item.rule_id] = item
        self._rules.append(item)
        self._index = None  # membership changed: rebuild on next lookup

    def candidate_index(self):
        """The set's candidate index, built on first use and cached.

        One multi-literal pass over a source through this index yields
        the exact candidate rule subset (see
        :mod:`repro.core.candidates`).  Adding rules invalidates the
        cache; a built index is plain data, so it travels with the set
        through pickling into worker processes.
        """
        if self._index is None:
            from repro.core.candidates import RuleIndex

            self._index = RuleIndex(self._rules)
        return self._index

    def extend(self, items: Iterable[DetectionRule]) -> None:
        """Register several rules."""
        for item in items:
            self.add(item)

    def get(self, rule_id: str) -> DetectionRule:
        """Fetch a rule by id (raises RuleError)."""
        try:
            return self._by_id[rule_id]
        except KeyError:
            raise RuleError(f"unknown rule id: {rule_id}") from None

    def by_cwe(self, cwe_id: str) -> List[DetectionRule]:
        """Rules labelled with the (normalized) CWE id."""
        normalized = normalize_cwe_id(cwe_id)
        return [r for r in self._rules if r.cwe_id == normalized]

    def by_owasp(self, category: OwaspCategory) -> List[DetectionRule]:
        """Rules whose CWE maps to the category."""
        return [r for r in self._rules if r.owasp is category]

    def cwes(self) -> Tuple[str, ...]:
        """Sorted distinct CWE ids across the set."""
        return tuple(sorted({r.cwe_id for r in self._rules}))

    def patchable(self) -> "RuleSet":
        return RuleSet(r for r in self._rules if r.patchable)

    def without(self, *rule_ids: str) -> "RuleSet":
        """Copy of the set without the given rule ids."""
        dropped = set(rule_ids)
        return RuleSet(r for r in self._rules if r.rule_id not in dropped)

    def subset(self, predicate: Callable[[DetectionRule], bool]) -> "RuleSet":
        """Copy of the set filtered by a predicate."""
        return RuleSet(r for r in self._rules if predicate(r))

    def fingerprint(self) -> str:
        """Stable SHA-256 digest of the rules' observable behavior.

        Two rule sets share a fingerprint exactly when they would produce
        the same findings and patches: rule order, ids, patterns, guards,
        prerequisites, severities and patch presence all contribute.  The
        persistent scan cache uses this to invalidate stored results when
        the catalog changes.
        """
        digest = hashlib.sha256()
        for item in self._rules:
            descriptor = (
                item.rule_id,
                item.cwe_id,
                item.pattern.pattern,
                item.pattern.flags,
                str(item.severity),
                str(item.confidence),
                item.patchable,
                item.message,
                tuple((g.pattern.pattern, g.pattern.flags, g.scope) for g in item.guards),
                tuple((p.pattern, p.flags) for p in item.prerequisites),
            )
            digest.update(repr(descriptor).encode("utf-8"))
        return digest.hexdigest()

    def __iter__(self) -> Iterator[DetectionRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._by_id
