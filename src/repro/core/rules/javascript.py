"""JavaScript rule pack — the paper's "support other programming
languages" future work, realized.

Because the engine is AST-free, porting to a new language is a rule-pack
exercise: these rules cover the JavaScript/Node.js analogues of the
Python catalog's highest-traffic weaknesses (injection, XSS sinks, weak
crypto, TLS bypass, hardcoded secrets, traversal).  They are *not* part
of the Python rule sets; obtain them with
:func:`javascript_ruleset` and run them through a regular
:class:`~repro.core.engine.PatchitPy` instance.
"""

from __future__ import annotations

import re
from typing import List

from repro.core.rules.base import DetectionRule, PatchTemplate, RuleSet, rule
from repro.types import Confidence, Severity

# template literal with at least one interpolation
_TEMPLATE_INTERP = r"`[^`]*\$\{[^}]+\}[^`]*`"


def _parameterize_sql_template(match: "re.Match[str]"):
    """``query(`... ${x}`)`` → ``query('... $1', [x])`` (pg style)."""
    call = match.group("call")
    body = match.group("body")
    params: List[str] = []

    def to_placeholder(field: "re.Match[str]") -> str:
        params.append(field.group(1).strip())
        return f"${len(params)}"

    new_body = re.sub(r"\$\{([^}]+)\}", to_placeholder, body)
    new_body = new_body.replace("'$", "$").replace(f"${len(params)}'", f"${len(params)}")
    args = ", ".join(params)
    return f"{call}('{new_body}', [{args}])", ()


def _env_credential_js(match: "re.Match[str]"):
    """``const apiKey = "..."`` → ``const apiKey = process.env.API_KEY``."""
    name = match.group("name")
    env = re.sub(r"(?<!^)(?=[A-Z])", "_", name).upper()
    return f"const {name} = process.env.{env}", ()


def _harden_cookie_options(match: "re.Match[str]"):
    """Append ``httpOnly/secure/sameSite`` options to a ``res.cookie`` call."""
    return (
        match.group(0)[:-1] + ", { httpOnly: true, secure: true, sameSite: 'lax' })",
        (),
    )


def build_rules() -> List[DetectionRule]:
    """All JavaScript rules, in catalog order."""
    return [
        rule(
            "PIT-JS-01",
            "CWE-089",
            "SQL query built with a template literal is passed to query()",
            r"(?P<call>\b[\w.]*\.query)\(\s*`(?P<body>[^`]*\$\{[^}]+\}[^`]*)`\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=_parameterize_sql_template,
                description="Parameterize the query with $n placeholders",
            ),
        ),
        rule(
            "PIT-JS-02",
            "CWE-078",
            "Shell command interpolated into child_process.exec()",
            r"(?:child_process\.)?\bexecS?y?n?c?\(\s*" + _TEMPLATE_INTERP,
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-JS-03",
            "CWE-095",
            "eval() of dynamic content",
            r"(?<![\w.])eval\(\s*(?!['\"`][^'\"`]*['\"`]\s*\))",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-JS-04",
            "CWE-094",
            "new Function() constructs code from data",
            r"new\s+Function\(",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-JS-05",
            "CWE-079",
            "Dynamic value assigned to innerHTML",
            r"(?P<target>[\w.\[\]']+)\.innerHTML\s*=\s*(?P<expr>(?!['\"`][^$])[^;\n]+)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r"\g<target>.textContent = \g<expr>",
                description="Render as text instead of HTML",
            ),
        ),
        rule(
            "PIT-JS-06",
            "CWE-079",
            "document.write() of dynamic content",
            r"document\.write\(\s*(?!['\"`][^$])",
            severity=Severity.HIGH,
        ),
        rule(
            "PIT-JS-07",
            "CWE-338",
            "Math.random() used to build a security token",
            r"Math\.random\(\)",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
            require_in_file=(r"token|session|secret|password|reset|apiKey",),
            not_in_file=(r"crypto\.randomBytes|crypto\.randomUUID",),
        ),
        rule(
            "PIT-JS-08",
            "CWE-798",
            "Hard-coded credential assigned to a variable",
            r"(?:const|let|var)\s+(?P<name>\w{0,30}(?:[Pp]assword|[Ss]ecret|[Aa]pi[_]?[Kk]ey|[Tt]oken)\w{0,30})\s*=\s*['\"][^'\"]{4,}['\"]",
            severity=Severity.HIGH,
            not_on_line=(r"process\.env",),
            patch=PatchTemplate(
                builder=_env_credential_js,
                description="Load the credential from the environment",
            ),
        ),
        rule(
            "PIT-JS-09",
            "CWE-295",
            "TLS certificate validation disabled",
            r"rejectUnauthorized\s*:\s*false",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement="rejectUnauthorized: true",
                description="Re-enable TLS certificate validation",
            ),
        ),
        rule(
            "PIT-JS-10",
            "CWE-295",
            "TLS verification disabled process-wide",
            r"NODE_TLS_REJECT_UNAUTHORIZED['\"]?\s*\]?\s*=\s*['\"]0['\"]",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-JS-11",
            "CWE-328",
            "Weak hash algorithm requested from crypto",
            r"createHash\(\s*(?P<q>['\"])(?:md5|sha1)(?P=q)",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement=r"createHash(\g<q>sha256\g<q>",
                description="Request SHA-256 instead",
            ),
        ),
        rule(
            "PIT-JS-12",
            "CWE-022",
            "File served from a request-controlled path",
            r"(?:sendFile|createReadStream|readFile(?:Sync)?)\(\s*[^)\n]*req\.(?:query|params|body)",
            severity=Severity.HIGH,
            not_if=(r"basename\(",),
        ),
        rule(
            "PIT-JS-13",
            "CWE-601",
            "Redirect target taken directly from the request",
            r"res\.redirect\(\s*req\.(?:query|params|body)",
            severity=Severity.MEDIUM,
        ),
        rule(
            "PIT-JS-14",
            "CWE-502",
            "Untrusted data passed to node-serialize unserialize()",
            r"(?<![\w.])unserialize\(",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-JS-15",
            "CWE-614",
            "Cookie set without secure/httpOnly options",
            r"res\.cookie\(\s*['\"][^'\"]+['\"]\s*,\s*[^,()\n]*(?:\([^()]*\)[^,()\n]*)*\)",
            severity=Severity.MEDIUM,
            not_if=(r"httpOnly|secure",),
            patch=PatchTemplate(
                builder=_harden_cookie_options,
                description="Set httpOnly/secure/sameSite on the cookie",
            ),
        ),
        rule(
            "PIT-JS-16",
            "CWE-016",
            "CORS configured to allow any origin",
            r"Access-Control-Allow-Origin['\"]\s*,\s*['\"]\*['\"]",
            severity=Severity.MEDIUM,
        ),
        rule(
            "PIT-JS-17",
            "CWE-347",
            "JWT accepted with the 'none' algorithm",
            r"algorithms?\s*:\s*\[?\s*['\"]none['\"]",
            severity=Severity.CRITICAL,
        ),
        rule(
            "PIT-JS-18",
            "CWE-918",
            "Outbound request to a request-controlled URL",
            r"(?:fetch|axios(?:\.get|\.post)?|request)\(\s*req\.(?:query|params|body)",
            severity=Severity.HIGH,
        ),
    ]


def javascript_ruleset() -> RuleSet:
    """The JavaScript rule pack as an executable rule set."""
    return RuleSet(build_rules())
