"""A09:2021 Security Logging and Monitoring Failures rules.

Rule ids use the ``PIT-A09-##`` scheme.
"""

from __future__ import annotations

import re

from repro.core.rules.base import PatchTemplate, rule
from repro.types import Confidence, Severity


def build_rules() -> list:
    """All A09 Security Logging and Monitoring Failures rules."""
    return [
        rule(
            "PIT-A09-01",
            "CWE-532",
            "Secret value interpolated into a log message",
            r"(?P<call>\b(?:logging|logger|log)\.(?:info|warning|error|debug|critical))\(\s*(?P<q>f['\"])(?P<body>[^'\"\n]*\{\s*\w*(?:password|passwd|secret|token|api_key|ssn|credit)\w*[^}]*\}[^'\"\n]*)['\"]\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=_redact_sensitive_fields,
                description="Redact secrets from log output",
            ),
        ),
        rule(
            "PIT-A09-02",
            "CWE-778",
            "Exception swallowed silently (except/pass)",
            r"except(?:\s+\w+(?:\s+as\s+\w+)?)?\s*:\s*\n(?:[ \t]*#[^\n]*\n)*(?P<indent>[ \t]+)pass\b",
            severity=Severity.LOW,
            patch=PatchTemplate(
                replacement="except Exception:\n\\g<indent>logging.exception(\"Unhandled exception\")",
                imports=("import logging",),
                description="Record the swallowed exception",
            ),
        ),
        rule(
            "PIT-A09-03",
            "CWE-778",
            "Authentication routine performs no security logging",
            r"def\s+(?:login|authenticate|verify_user|check_credentials)\w*\(",
            severity=Severity.LOW,
            confidence=Confidence.LOW,
            not_in_file=(r"logging\.|logger\.|audit",),
        ),
        rule(
            "PIT-A09-04",
            "CWE-223",
            "Failed access attempt discarded without recording the actor",
            r"return\s+(?:False|None)\s*#\s*(?:invalid|denied|unauthorized)",
            severity=Severity.LOW,
            confidence=Confidence.LOW,
        ),
    ]


_SENSITIVE_FIELD_RE = re.compile(
    r"\{\s*(\w*(?:password|passwd|secret|token|api_key|ssn|credit)\w*[^}]*)\}"
)


def _redact_sensitive_fields(match):
    """Replace sensitive f-string fields with a redaction marker."""
    text = match.group(0)
    return _SENSITIVE_FIELD_RE.sub("[REDACTED]", text), ()
