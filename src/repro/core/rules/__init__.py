"""Rule catalog for the PatchitPy engine (85 default rules, §II-A)."""

from repro.core.rules.base import DetectionRule, Guard, PatchTemplate, RuleSet, rule
from repro.core.rules.registry import (
    EXTENDED_ONLY,
    default_ruleset,
    extended_ruleset,
    full_catalog,
)

__all__ = [
    "DetectionRule",
    "EXTENDED_ONLY",
    "Guard",
    "PatchTemplate",
    "RuleSet",
    "default_ruleset",
    "extended_ruleset",
    "full_catalog",
    "rule",
]
