"""A03:2021 Injection rules — SQL, command, XSS, LDAP, XPath, log, CSV.

Rule ids use the ``PIT-A03-##`` scheme.  Patterns match raw source text so
that a triggered rule's span can be patched in place; guards veto matches
that already carry the mitigation (e.g. ``escape(...)`` around an
interpolated field).
"""

from __future__ import annotations

from repro.core.rules.base import PatchTemplate, rule
from repro.core.rules.helpers import (
    logging_fstring_to_lazy,
    parameterize_sql_concat,
    parameterize_sql_format,
    parameterize_sql_fstring,
    parameterize_sql_percent,
    shell_false_fix,
    wrap_fstring_fields,
    xpath_parameterize,
)
from repro.types import Confidence, Severity

# The database handle spelling varies across generated code.
_EXEC = r"(?P<call>\b[A-Za-z_][\w.]*\.execute(?:many|script)?)"
_REQUEST_SOURCE = r"request\.(?:args|form|values|cookies|headers|json|data|files)"


def build_rules() -> list:
    """All A03 Injection rules, in catalog order."""
    rules = [
        # ---------------- SQL injection (CWE-089) ----------------
        rule(
            "PIT-A03-01",
            "CWE-089",
            "SQL query built with an f-string is passed to execute()",
            _EXEC + r"\(\s*f(?P<q>['\"])(?P<sql>(?:(?!(?P=q)).)*\{[^{}]+\}(?:(?!(?P=q)).)*)(?P=q)\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=parameterize_sql_fstring,
                description="Parameterize the query with '?' placeholders",
            ),
        ),
        rule(
            "PIT-A03-02",
            "CWE-089",
            "SQL query built with %-interpolation is passed to execute()",
            _EXEC
            + r"\(\s*(?P<q>['\"])(?P<sql>(?:(?!(?P=q)).)*%[sdif](?:(?!(?P=q)).)*)(?P=q)\s*%\s*(?P<operand>\([^()]*\)|[A-Za-z_][\w.\[\]'\"()]*)\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=parameterize_sql_percent,
                description="Parameterize the query with '?' placeholders",
            ),
        ),
        rule(
            "PIT-A03-03",
            "CWE-089",
            "SQL query built with str.format() is passed to execute()",
            _EXEC
            + r"\(\s*(?P<q>['\"])(?P<sql>(?:(?!(?P=q)).)*\{[^{}]*\}(?:(?!(?P=q)).)*)(?P=q)\s*\.format\(\s*(?P<args>[^()]*)\)\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=parameterize_sql_format,
                description="Parameterize the query with '?' placeholders",
            ),
        ),
        rule(
            "PIT-A03-04",
            "CWE-089",
            "SQL query concatenated with a variable is passed to execute()",
            _EXEC
            + r"\(\s*(?P<q>['\"])(?P<sql>(?:(?!(?P=q)).)+)(?P=q)\s*\+\s*(?P<expr>[A-Za-z_][\w.\[\]]*(?:\([^()]*\))?)\s*(?:\+\s*(?P<qq>['\"])(?P<suffix>(?:(?!(?P=qq)).)*)(?P=qq)\s*)?\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=parameterize_sql_concat,
                description="Parameterize the query with '?' placeholders",
            ),
        ),
        rule(
            "PIT-A03-05",
            "CWE-089",
            "SQLAlchemy text()/raw SQL composed with f-string interpolation",
            r"\btext\(\s*f(?P<q>['\"])(?:(?!(?P=q)).)*\{[^{}]+\}(?:(?!(?P=q)).)*(?P=q)\s*\)",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
        ),
        rule(
            "PIT-A03-06",
            "CWE-564",
            "ORM filter/where built from string concatenation",
            r"\.(?:filter|where)\(\s*(?:f['\"][^'\"]*\{|['\"][^'\"]*['\"]\s*\+)",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        ),
        # ---------------- OS command injection (CWE-078) ----------------
        rule(
            "PIT-A03-07",
            "CWE-078",
            "os.system() executes a shell command built from data",
            r"os\.system\(\s*(?P<cmd>f['\"](?:[^'\"\\]|\\.)*['\"]|[A-Za-z_][\w.\[\]]*|['\"][^'\"]*['\"]\s*\+[^)]+)\s*\)",
            severity=Severity.CRITICAL,
            patch=PatchTemplate(
                replacement=r"subprocess.run(shlex.split(\g<cmd>), check=False)",
                imports=("import subprocess", "import shlex"),
                description="Run the command without a shell via subprocess",
            ),
        ),
        rule(
            "PIT-A03-08",
            "CWE-078",
            "subprocess invoked with shell=True",
            r"subprocess\.(?:run|call|check_output|check_call|Popen)\([^()]*(?:\([^()]*\)[^()]*)*shell\s*=\s*True[^()]*\)",
            severity=Severity.CRITICAL,
            patch=PatchTemplate(
                builder=shell_false_fix,
                imports=("import subprocess",),
                description="Split the command into argv and disable the shell",
            ),
        ),
        rule(
            "PIT-A03-09",
            "CWE-078",
            "os.popen() pipes a command through the shell",
            r"os\.popen\(\s*(?P<cmd>[^()]+)\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=(
                    r"subprocess.run(shlex.split(\g<cmd>), capture_output=True, "
                    r"text=True, check=False).stdout"
                ),
                imports=("import subprocess", "import shlex"),
                description="Capture output via subprocess without a shell",
            ),
        ),
        rule(
            "PIT-A03-10",
            "CWE-078",
            "os.exec*/os.spawn* launched with non-constant arguments",
            r"os\.(?:execl|execle|execlp|execv|execve|execvp|spawnl|spawnv)\([^)]*\)",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
        ),
        # ---------------- Code injection (CWE-094/095) ----------------
        rule(
            "PIT-A03-11",
            "CWE-095",
            "eval() on a dynamic expression",
            r"(?<![\w.])eval\(\s*(?P<expr>[^()]*(?:\([^()]*\)[^()]*)*)\)",
            severity=Severity.CRITICAL,
            not_on_line=(r"literal_eval",),
            patch=PatchTemplate(
                replacement=r"ast.literal_eval(\g<expr>)",
                imports=("import ast",),
                description="Evaluate literals only via ast.literal_eval",
            ),
        ),
        rule(
            "PIT-A03-12",
            "CWE-094",
            "exec() on dynamically constructed code",
            r"(?<![\w.])exec\(\s*[^)]*\)",
            severity=Severity.CRITICAL,
        ),
        # ---------------- Cross-site scripting (CWE-079/080) ----------------
        rule(
            "PIT-A03-13",
            "CWE-079",
            "User-controlled value interpolated into an HTML response f-string",
            r"return\s+f(?P<q>['\"])(?:(?!(?P=q)).)*\{(?!\s*escape\()[^{}]+\}(?:(?!(?P=q)).)*(?P=q)",
            severity=Severity.HIGH,
            require_in_file=(r"flask|django|app\.route|request\.",),
            not_if=(r"\{\s*escape\(",),
            message="Escape user input before rendering it in HTML",
            patch=PatchTemplate(
                builder=wrap_fstring_fields("escape"),
                imports=("from flask import escape",),
                description="Escape interpolated values with flask.escape",
            ),
        ),
        rule(
            "PIT-A03-14",
            "CWE-079",
            "User-controlled value interpolated into make_response()",
            r"make_response\(\s*f(?P<q>['\"])(?:(?!(?P=q)).)*\{(?!\s*escape\()[^{}]+\}(?:(?!(?P=q)).)*(?P=q)\s*\)",
            severity=Severity.HIGH,
            not_if=(r"\{\s*escape\(",),
            patch=PatchTemplate(
                builder=wrap_fstring_fields("escape"),
                imports=("from flask import escape",),
                description="Escape interpolated values with flask.escape",
            ),
        ),
        rule(
            "PIT-A03-15",
            "CWE-080",
            "HTML response concatenates request input directly",
            r"return\s+(?P<pre>['\"][^'\"\n]*['\"])\s*\+\s*(?P<expr>" + _REQUEST_SOURCE + r"(?:\.get)?\([^()]*\))",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r"return \g<pre> + escape(\g<expr>)",
                imports=("from flask import escape",),
                description="Escape the concatenated request value",
            ),
        ),
        rule(
            "PIT-A03-16",
            "CWE-079",
            "render_template_string() on dynamic template content",
            r"render_template_string\(\s*(?:f['\"]|[A-Za-z_][\w.]*\s*[,)])",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
        ),
        rule(
            "PIT-A03-17",
            "CWE-079",
            "Markup()/mark_safe() wraps unsanitized data",
            r"(?:\bMarkup|\bmark_safe)\(\s*(?:f['\"]|[A-Za-z_][\w.]*\s*\))",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        ),
        # ---------------- LDAP / XPath / XML (CWE-090/643/091) ----------------
        rule(
            "PIT-A03-18",
            "CWE-090",
            "LDAP search filter interpolates user data",
            r"(?P<call>\b[\w.]*\.search(?:_s|_ext_s)?)\(\s*(?P<pre>[^)]*?)f(?P<q>['\"])(?P<body>(?:(?!(?P=q)).)*\{[^{}]+\}(?:(?!(?P=q)).)*)(?P=q)",
            severity=Severity.HIGH,
            not_if=(r"escape_filter_chars",),
            patch=PatchTemplate(
                builder=wrap_fstring_fields(
                    "escape_filter_chars",
                ),
                imports=("from ldap.filter import escape_filter_chars",),
                description="Escape LDAP filter special characters",
            ),
        ),
        rule(
            "PIT-A03-19",
            "CWE-643",
            "XPath query interpolates user data",
            r"(?P<call>\b[\w.]*\.xpath)\(\s*f(?P<q>['\"])(?P<body>(?:(?!(?P=q)).)*\{[^{}]+\}(?:(?!(?P=q)).)*)(?P=q)\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                builder=xpath_parameterize,
                description="Use XPath variables instead of interpolation",
            ),
        ),
        rule(
            "PIT-A03-20",
            "CWE-091",
            "XML document assembled by string interpolation of user data",
            r"(?:<\?xml|<[A-Za-z][\w-]*>).*\{[^{}]+\}|f['\"]<[A-Za-z][\w-]*>\{[^{}]+\}",
            severity=Severity.MEDIUM,
            confidence=Confidence.LOW,
        ),
        # ---------------- Log forging / CSV / input validation ----------------
        rule(
            "PIT-A03-21",
            "CWE-117",
            "User-controlled value interpolated into a log message",
            r"(?P<call>\b(?:logging|logger|log)\.(?:info|warning|error|debug|critical))\(\s*f(?P<q>['\"])(?P<body>(?:(?!(?P=q)).)*\{[^{}]+\}(?:(?!(?P=q)).)*)(?P=q)\s*\)",
            severity=Severity.MEDIUM,
            not_in_file=(),
            patch=PatchTemplate(
                builder=logging_fstring_to_lazy,
                description="Log lazily with CR/LF stripped from arguments",
            ),
        ),
        rule(
            "PIT-A03-22",
            "CWE-1236",
            "CSV row written from request data without formula neutralization",
            r"\.writerow\(\s*\[?[^)\]]*" + _REQUEST_SOURCE + r"[^)\]]*\]?\s*\)",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        ),
        rule(
            "PIT-A03-23",
            "CWE-020",
            "Numeric conversion of request input without validation handling",
            r"(?:int|float)\(\s*" + _REQUEST_SOURCE + r"(?:\.get)?\([^()]*\)\s*\)",
            severity=Severity.LOW,
            confidence=Confidence.MEDIUM,
        ),
    ]
    return rules
