"""Patch builders shared by the rule catalog.

Several safe alternatives cannot be expressed as a static replacement
template because they must *recompute* part of the matched code — e.g.
turning the interpolated fields of an f-string SQL query into ``?``
placeholders with a parameter tuple.  The builders here implement those
transformations; each takes the rule's regex match and returns
``(replacement_text, extra_imports)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

_FIELD_RE = re.compile(r"\{([^{}]+)\}")
_PERCENT_PLACEHOLDER_RE = re.compile(r"%[sdif]")
_FORMAT_SLOT_RE = re.compile(r"\{[^{}]*\}")


def _strip_format_spec(expression: str) -> str:
    """Drop ``:spec`` / ``!conv`` suffixes from an f-string field."""
    depth = 0
    for i, ch in enumerate(expression):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch in ":!" and depth == 0:
            return expression[:i].strip()
    return expression.strip()


def parameterize_sql_fstring(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``cur.execute(f"... {x}")`` → ``cur.execute("... ?", (x,))``.

    Expects named groups ``call`` (the ``<obj>.execute`` prefix), ``q``
    (the quote character) and ``sql`` (the f-string body).
    """
    call = match.group("call")
    quote = match.group("q")
    body = match.group("sql")
    params: List[str] = []

    def to_placeholder(field: "re.Match[str]") -> str:
        params.append(_strip_format_spec(field.group(1)))
        return "?"

    new_body = _FIELD_RE.sub(to_placeholder, body)
    new_body = _dequote_placeholders(new_body)
    args = ", ".join(params)
    tuple_text = f"({args},)" if len(params) == 1 else f"({args})"
    return f"{call}({quote}{new_body}{quote}, {tuple_text})", ()


def parameterize_sql_percent(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``execute("... %s" % (x,))`` → ``execute("... ?", (x,))``."""
    call = match.group("call")
    quote = match.group("q")
    body = match.group("sql")
    operand = match.group("operand").strip()
    new_body = _dequote_placeholders(_PERCENT_PLACEHOLDER_RE.sub("?", body))
    if not (operand.startswith("(") and operand.endswith(")")):
        operand = f"({operand},)"
    return f"{call}({quote}{new_body}{quote}, {operand})", ()


def parameterize_sql_format(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``execute("... {}".format(x))`` → ``execute("... ?", (x,))``."""
    call = match.group("call")
    quote = match.group("q")
    body = match.group("sql")
    args = match.group("args").strip()
    new_body = _dequote_placeholders(_FORMAT_SLOT_RE.sub("?", body))
    if not args:
        args_tuple = "()"
    else:
        args_tuple = f"({args},)" if "," not in args else f"({args})"
    return f"{call}({quote}{new_body}{quote}, {args_tuple})", ()


def parameterize_sql_concat(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``execute("..." + x)`` → ``execute("... ?", (x,))``.

    Handles the common two-segment shape (literal + expression, optionally
    followed by a closing literal).  The quote characters adjacent to the
    concatenation are stripped from the literal.
    """
    call = match.group("call")
    quote = match.group("q")
    prefix = match.group("sql")
    expr = match.group("expr").strip()
    suffix = match.group("suffix") or ""
    prefix = prefix.rstrip("'\" ")
    suffix = suffix.lstrip("'\" ")
    new_body = f"{prefix}?{suffix}"
    return f"{call}({quote}{new_body}{quote}, ({expr},))", ()


def _dequote_placeholders(body: str) -> str:
    """Remove SQL quotes that wrapped an interpolation (``'?'`` → ``?``)."""
    return body.replace("'?'", "?").replace('"?"', "?")


def shell_false_fix(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """Rewrite ``subprocess.X(cmd, shell=True)`` to a list argv without shell.

    The first argument is wrapped in ``shlex.split`` unless it is already a
    list literal, and ``shell=True`` becomes ``shell=False``.
    """
    text = match.group(0)
    text = re.sub(r"shell\s*=\s*True", "shell=False", text)
    arg_match = re.search(r"\(\s*(?P<arg>f?['\"][^'\"]*['\"]|[A-Za-z_][\w.]*)\s*(?=[,)])", text)
    if arg_match and not arg_match.group("arg").startswith("["):
        arg = arg_match.group("arg")
        text = text[: arg_match.start()] + f"(shlex.split({arg})" + text[arg_match.end() :]
        return text, ("import shlex",)
    return text, ()


@dataclass(frozen=True)
class _WrapFstringFields:
    """Picklable builder produced by :func:`wrap_fstring_fields`."""

    wrapper: str
    imports: Tuple[str, ...] = ()

    def __call__(self, match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
        text = match.group(0)

        def wrap(field: "re.Match[str]") -> str:
            inner = _strip_format_spec(field.group(1))
            if inner.startswith(f"{self.wrapper}("):
                return field.group(0)
            return "{" + f"{self.wrapper}({inner})" + "}"

        return _FIELD_RE.sub(wrap, text), self.imports


def wrap_fstring_fields(wrapper: str, imports: Tuple[str, ...] = ()):
    """Builder factory: wrap every ``{field}`` of a matched f-string.

    ``wrapper`` is a callable name, e.g. ``"escape"`` turning ``{name}``
    into ``{escape(name)}``.  Fields already wrapped are left alone.  The
    returned builder is a module-level class instance (not a closure) so
    rules using it pickle into scan worker processes.
    """
    return _WrapFstringFields(wrapper, tuple(imports))


@dataclass(frozen=True)
class _AddCallKwargs:
    """Picklable builder produced by :func:`add_call_kwargs`."""

    pairs: Tuple[Tuple[str, str], ...]

    def __call__(self, match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
        text = match.group(0)
        if not text.endswith(")"):
            return text, ()
        additions = [
            f"{name}={value}"
            for name, value in self.pairs
            if f"{name}=" not in text.replace(" ", "")
        ]
        if not additions:
            return text, ()
        inner = text[:-1].rstrip()
        separator = ", " if not inner.endswith("(") else ""
        return inner + separator + ", ".join(additions) + ")", ()


def add_call_kwargs(*pairs: Tuple[str, str]):
    """Builder factory: append missing keyword arguments to a matched call.

    The match must cover the full call up to and including its closing
    parenthesis; each ``(name, value)`` pair is appended unless ``name=``
    already appears in the call.  Returns a picklable module-level class
    instance rather than a closure.
    """
    return _AddCallKwargs(tuple(pairs))


def env_var_credential(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``PASSWORD = "hunter2"`` → ``PASSWORD = os.environ.get("PASSWORD", "")``."""
    name = match.group("name")
    env_name = re.sub(r"[^A-Za-z0-9]+", "_", name).upper()
    return f'{name} = os.environ.get("{env_name}", "")', ("import os",)


def logging_fstring_to_lazy(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``logger.info(f"got {user}")`` → ``logger.info("got %s", sanitized)``.

    User-controlled fields are passed as lazy ``%s`` arguments with CR/LF
    stripped, neutralizing log forging (CWE-117).
    """
    call = match.group("call")
    quote = match.group("q")
    body = match.group("body")
    params: List[str] = []

    def to_percent(field: "re.Match[str]") -> str:
        params.append(_strip_format_spec(field.group(1)))
        return "%s"

    new_body = _FIELD_RE.sub(to_percent, body)
    sanitized = ", ".join(f"str({p}).replace('\\n', '').replace('\\r', '')" for p in params)
    return f"{call}({quote}{new_body}{quote}, {sanitized})", ()


def xpath_parameterize(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``tree.xpath(f"//u[@n='{v}']")`` → ``tree.xpath("//u[@n=$p0]", p0=v)``."""
    call = match.group("call")
    quote = match.group("q")
    body = match.group("body")
    params: List[str] = []

    def to_var(field: "re.Match[str]") -> str:
        name = f"p{len(params)}"
        params.append(_strip_format_spec(field.group(1)))
        return f"${name}"

    new_body = _FIELD_RE.sub(to_var, body)
    new_body = new_body.replace("'$", "$").replace("$p0'", "$p0")
    new_body = re.sub(r"['\"](\$p\d+)['\"]?", r"\1", new_body)
    kwargs = ", ".join(f"p{i}={expr}" for i, expr in enumerate(params))
    return f"{call}({quote}{new_body}{quote}, {kwargs})", ()


def yaml_safe_load_fix(match: "re.Match[str]") -> Tuple[str, Tuple[str, ...]]:
    """``yaml.load(x[, Loader=...])`` → ``yaml.safe_load(x)``."""
    args = match.group("args")
    first = re.split(r",\s*(?:Loader\s*=|yaml\.)", args)[0].strip()
    return f"yaml.safe_load({first})", ()
