"""A05:2021 Security Misconfiguration rules — XML, cookies, bindings.

Rule ids use the ``PIT-A05-##`` scheme.
"""

from __future__ import annotations

from repro.core.rules.base import PatchTemplate, rule
from repro.core.rules.helpers import add_call_kwargs
from repro.types import Confidence, Severity


def build_rules() -> list:
    """All A05 Security Misconfiguration rules, in catalog order."""
    return [
        # ---------------- XML external entities (CWE-611/776) ----------------
        rule(
            "PIT-A05-01",
            "CWE-611",
            "lxml parses XML with entity resolution enabled",
            r"etree\.(?:parse|fromstring|XML)\(\s*(?P<arg>[^()]+)\)",
            severity=Severity.HIGH,
            not_if=(r"resolve_entities\s*=\s*False", r"parser\s*="),
            not_in_file=(r"defusedxml", r"import\s+xml\.etree"),
            patch=PatchTemplate(
                builder=add_call_kwargs(
                    ("parser", "etree.XMLParser(resolve_entities=False, no_network=True)")
                ),
                description="Disable entity resolution in the parser",
            ),
        ),
        rule(
            "PIT-A05-02",
            "CWE-611",
            "xml.etree parses untrusted XML without defusedxml",
            r"(?:ElementTree|ET)\.(?:parse|fromstring)\(",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
            not_in_file=(r"defusedxml",),
            patch=PatchTemplate(
                builder=_defused_swap,
                imports=("import defusedxml.ElementTree",),
                description="Parse through defusedxml.ElementTree",
            ),
        ),
        rule(
            "PIT-A05-03",
            "CWE-776",
            "SAX parser enables external general entities",
            r"setFeature\(\s*(?:xml\.sax\.)?handler\.feature_external_ges\s*,\s*True\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement="setFeature(handler.feature_external_ges, False)",
                description="Disable external general entities",
            ),
        ),
        rule(
            "PIT-A05-04",
            "CWE-776",
            "minidom/pulldom parses untrusted XML",
            r"(?:minidom|pulldom)\.parse(?:String)?\(",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
            not_in_file=(r"defusedxml",),
        ),
        # ---------------- Cookie attributes (CWE-614/1004/1275) ----------------
        rule(
            "PIT-A05-05",
            "CWE-614",
            "Cookie set without the Secure attribute",
            r"\.set_cookie\([^()]*(?:\([^()]*\)[^()]*)*\)",
            severity=Severity.MEDIUM,
            not_if=(r"secure\s*=\s*True",),
            patch=PatchTemplate(
                builder=add_call_kwargs(
                    ("secure", "True"), ("httponly", "True"), ("samesite", '"Lax"')
                ),
                description="Set Secure, HttpOnly, and SameSite on the cookie",
            ),
        ),
        rule(
            "PIT-A05-06",
            "CWE-1004",
            "Cookie set without the HttpOnly attribute",
            r"\.set_cookie\([^()]*(?:\([^()]*\)[^()]*)*\)",
            severity=Severity.MEDIUM,
            not_if=(r"httponly\s*=\s*True",),
        ),
        rule(
            "PIT-A05-07",
            "CWE-1275",
            "Cookie set without a SameSite attribute",
            r"\.set_cookie\([^()]*(?:\([^()]*\)[^()]*)*\)",
            severity=Severity.LOW,
            not_if=(r"samesite\s*=",),
        ),
        rule(
            "PIT-A05-08",
            "CWE-614",
            "Session cookie configured as insecure",
            r"SESSION_COOKIE_SECURE['\"]?\s*\]?\s*=\s*False",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                builder=_session_cookie_secure_fix,
                description="Mark the session cookie Secure",
            ),
        ),
        # ---------------- Service exposure (CWE-016) ----------------
        rule(
            "PIT-A05-09",
            "CWE-016",
            "Development server bound to all interfaces",
            r"host\s*=\s*['\"]0\.0\.0\.0['\"]",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement='host="127.0.0.1"',
                description="Bind the server to localhost",
            ),
        ),
        rule(
            "PIT-A05-10",
            "CWE-016",
            "CORS configured to allow any origin",
            r"(?:Access-Control-Allow-Origin['\"]\s*\]?\s*=\s*['\"]\*['\"]|CORS\([^)]*origins\s*=\s*['\"]\*['\"])",
            severity=Severity.MEDIUM,
        ),
        rule(
            "PIT-A05-11",
            "CWE-016",
            "Wildcard ALLOWED_HOSTS configuration",
            r"ALLOWED_HOSTS\s*=\s*\[\s*['\"]\*['\"]\s*\]",
            severity=Severity.MEDIUM,
        ),
    ]


def _defused_swap(match):
    """Swap an xml.etree parse call over to defusedxml."""
    text = match.group(0)
    prefix = "ElementTree" if text.startswith("ElementTree") else "ET"
    return text.replace(prefix + ".", "defusedxml.ElementTree.", 1), ()


def _session_cookie_secure_fix(match):
    """Flip a SESSION_COOKIE_SECURE assignment to True."""
    return match.group(0).replace("False", "True"), ()
