"""A04:2021 Insecure Design rules — debug leaks, credentials, resources.

Rule ids use the ``PIT-A04-##`` scheme.
"""

from __future__ import annotations

import re

from repro.core.rules.base import PatchTemplate, rule
from repro.core.rules.helpers import add_call_kwargs
from repro.types import Confidence, Severity


def build_rules() -> list:
    """All A04 Insecure Design rules, in catalog order."""
    return [
        # ---------------- Debug information exposure (CWE-209) ----------------
        rule(
            "PIT-A04-01",
            "CWE-209",
            "Flask application runs with debug mode enabled",
            r"\.run\((?P<pre>[^()]*)debug\s*=\s*True(?P<post>[^()]*)\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r".run(\g<pre>debug=False, use_debugger=False, use_reloader=False\g<post>)",
                description="Disable debug mode, debugger, and reloader",
            ),
        ),
        rule(
            "PIT-A04-02",
            "CWE-209",
            "Exception text returned to the client",
            r"return\s+(?:str\(\s*(?:e|err|error|exc)\s*\)|f['\"][^'\"\n]*\{\s*(?:str\(\s*)?(?:e|err|error|exc)\s*\)?\s*\}[^'\"\n]*['\"])(?:\s*,\s*\d{3})?",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement='return "An internal error has occurred.", 500',
                description="Return a generic error message",
            ),
        ),
        rule(
            "PIT-A04-03",
            "CWE-209",
            "Traceback sent in an HTTP response",
            r"return\s+[^\n]*traceback\.format_exc\(\)[^\n]*",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement='return "An internal error has occurred.", 500',
                description="Return a generic error message",
            ),
        ),
        rule(
            "PIT-A04-04",
            "CWE-209",
            "Django-style DEBUG flag enabled",
            r"^DEBUG\s*=\s*True\s*$",
            severity=Severity.MEDIUM,
            flags=re.MULTILINE,
            patch=PatchTemplate(
                replacement="DEBUG = False",
                description="Disable framework debug mode",
            ),
        ),
        # ---------------- Credential handling (CWE-256/522) ----------------
        rule(
            "PIT-A04-05",
            "CWE-256",
            "Plaintext password written to persistent storage",
            r"\.write\(\s*f?['\"]?[^)\n]*password[^)\n]*\)",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
            not_on_line=(r"hash|pbkdf2|bcrypt|scrypt",),
        ),
        rule(
            "PIT-A04-06",
            "CWE-522",
            "Credentials stored in a client-side cookie",
            r"set_cookie\(\s*['\"](?:password|token|auth|session_secret)['\"]",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
        ),
        rule(
            "PIT-A04-07",
            "CWE-522",
            "Password persisted without key derivation",
            r"INSERT\s+INTO\s+\w*users?\w*[^\n]*password",
            severity=Severity.MEDIUM,
            confidence=Confidence.LOW,
            not_in_file=(r"pbkdf2|bcrypt|scrypt|generate_password_hash",),
            flags=re.IGNORECASE,
        ),
        # ---------------- Resource limits (CWE-400/770) ----------------
        rule(
            "PIT-A04-08",
            "CWE-400",
            "Outbound HTTP request issued without a timeout",
            r"requests\.(?:get|post|put|delete|head|patch)\((?:[^()]|\((?:[^()]|\([^()]*\))*\))*\)",
            severity=Severity.LOW,
            confidence=Confidence.MEDIUM,
            not_if=(r"timeout\s*=",),
            patch=PatchTemplate(
                builder=add_call_kwargs(("timeout", "10")),
                description="Bound the request with a timeout",
            ),
        ),
        rule(
            "PIT-A04-09",
            "CWE-770",
            "Request body read without a size limit",
            r"request\.(?:get_data|stream\.read|data)\(\s*\)",
            severity=Severity.LOW,
            confidence=Confidence.LOW,
            not_if=(r"MAX_CONTENT_LENGTH",),
            not_in_file=(r"MAX_CONTENT_LENGTH",),
        ),
    ]
