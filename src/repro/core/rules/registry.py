"""Rule catalog assembly.

``default_ruleset()`` returns the 85 detection rules the paper reports
(§II-A: "The tool executes 85 detection rules").  The catalog additionally
contains experimental rules beyond the paper's set; ``extended_ruleset()``
includes those too and backs the rule-count ablation benchmark.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.rules import (
    access,
    authn,
    crypto,
    injection,
    insecure_design,
    integrity,
    logging_monitoring,
    misconfig,
    ssrf,
    vulnerable_components,
)
from repro.core.rules.base import RuleSet

# Rules in the catalog but outside the paper's 85-rule set.  They trade
# precision for coverage (low-confidence heuristics, duplicated archive
# checks, framework-configuration lint) and are only activated by
# ``extended_ruleset()``.
EXTENDED_ONLY: FrozenSet[str] = frozenset(
    {
        "PIT-A03-05",
        "PIT-A03-06",
        "PIT-A03-20",
        "PIT-A03-22",
        "PIT-A03-23",
        "PIT-A02-18",
        "PIT-A01-06",
        "PIT-A01-08",
        "PIT-A01-13",
        "PIT-A01-14",
        "PIT-A01-15",
        "PIT-A04-07",
        "PIT-A04-09",
        "PIT-A05-04",
        "PIT-A05-08",
        "PIT-A05-10",
        "PIT-A05-11",
        "PIT-A06-05",
        "PIT-A07-06",
        "PIT-A07-09",
        "PIT-A08-08",
        "PIT-A08-09",
        "PIT-A08-11",
        "PIT-A08-12",
    }
)

_CATEGORY_MODULES = (
    access,
    crypto,
    injection,
    insecure_design,
    misconfig,
    vulnerable_components,
    authn,
    integrity,
    logging_monitoring,
    ssrf,
)


def full_catalog() -> RuleSet:
    """Every rule in the catalog, including extended ones."""
    catalog = RuleSet()
    for module in _CATEGORY_MODULES:
        catalog.extend(module.build_rules())
    return catalog


def default_ruleset() -> RuleSet:
    """The paper's 85-rule detection/patching set."""
    return full_catalog().subset(lambda r: r.rule_id not in EXTENDED_ONLY)


def extended_ruleset() -> RuleSet:
    """Default rules plus the experimental extensions."""
    return full_catalog()
