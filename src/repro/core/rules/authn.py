"""A07:2021 Identification and Authentication Failures rules.

Rule ids use the ``PIT-A07-##`` scheme.
"""

from __future__ import annotations

from repro.core.rules.base import PatchTemplate, rule
from repro.core.rules.helpers import env_var_credential
from repro.types import Confidence, Severity


def build_rules() -> list:
    """All A07 Identification and Authentication Failures rules."""
    return [
        # ---------------- Hard-coded credentials (CWE-798) ----------------
        rule(
            "PIT-A07-01",
            "CWE-798",
            "Hard-coded credential assigned to a variable",
            r"(?P<name>\b\w*(?:password|passwd|pwd|api_key|apikey|auth_token|access_token)\w*)\s*=\s*(?P<q>['\"])(?P<val>[^'\"]{3,})(?P=q)",
            severity=Severity.HIGH,
            not_on_line=(
                r"os\.environ|getenv|getpass|input\(|request\.|\.get\(|format|\{\}|%s",
            ),
            not_if=(r"=\s*['\"](?:\s*|x+|\*+|<[^>]+>)['\"]",),
            patch=PatchTemplate(
                builder=env_var_credential,
                description="Load the credential from the environment",
            ),
        ),
        rule(
            "PIT-A07-02",
            "CWE-798",
            "Flask secret key hard-coded",
            r"(?P<target>(?:app\.)?secret_key)\s*=\s*(?P<q>['\"])[^'\"]+(?P=q)",
            severity=Severity.HIGH,
            not_on_line=(r"os\.environ|getenv|urandom|token_hex",),
            patch=PatchTemplate(
                replacement=r'\g<target> = os.environ.get("FLASK_SECRET_KEY", os.urandom(32).hex())',
                imports=("import os",),
                description="Load the secret key from the environment",
            ),
        ),
        rule(
            "PIT-A07-03",
            "CWE-798",
            "Password compared against a hard-coded literal",
            r"(?P<var>\b\w*(?:password|passwd|pwd)\w*)\s*==\s*(?P<q>['\"])[^'\"]+(?P=q)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r'hmac.compare_digest(\g<var>, os.environ.get("APP_PASSWORD", ""))',
                imports=("import hmac", "import os"),
                description="Compare in constant time against env secret",
            ),
        ),
        # ---------------- Timing-unsafe comparison (CWE-287) ----------------
        rule(
            "PIT-A07-04",
            "CWE-287",
            "Digest compared with == (timing side channel)",
            r"(?P<a>[\w.\[\]'\"()]{0,60}(?:hexdigest|digest)\(\))\s*==\s*(?P<b>[\w.\[\]'\"()]+)",
            severity=Severity.MEDIUM,
            not_on_line=(r"compare_digest",),
            patch=PatchTemplate(
                replacement=r"hmac.compare_digest(\g<a>, \g<b>)",
                imports=("import hmac",),
                description="Use a constant-time digest comparison",
            ),
        ),
        # ---------------- Password policy (CWE-521/620) ----------------
        rule(
            "PIT-A07-05",
            "CWE-521",
            "Password policy accepts very short passwords",
            r"len\(\s*(?P<var>\w*(?:password|passwd|pwd)\w*)\s*\)\s*>=?\s*[1-7]\b",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement=r"len(\g<var>) >= 12",
                description="Require at least 12 characters",
            ),
        ),
        rule(
            "PIT-A07-06",
            "CWE-620",
            "Password changed without verifying the current password",
            r"def\s+(?:change|update|reset)_password\([^)]*\)\s*:",
            severity=Severity.MEDIUM,
            confidence=Confidence.LOW,
            not_in_file=(r"(?:old|current)_password",),
        ),
        # ---------------- Transport of credentials (CWE-598) ----------------
        rule(
            "PIT-A07-07",
            "CWE-598",
            "Credentials carried in a GET query string",
            r"requests\.get\([^()]*(?:params\s*=\s*\{[^{}]*(?:password|token|secret)|[?&](?:password|token|secret)=)",
            severity=Severity.MEDIUM,
        ),
        # ---------------- Missing / brute-forceable auth (CWE-306/307) ----------------
        rule(
            "PIT-A07-08",
            "CWE-306",
            "Sensitive route exposed without an authentication decorator",
            r"@app\.route\(\s*['\"][^'\"]*(?:admin|delete|settings|config|manage)[^'\"]*['\"][^)]*\)\s*\n\s*def\s+\w+",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
            not_in_file=(r"login_required|check_auth|authenticate\(",),
            patch=PatchTemplate(
                builder=_insert_login_required,
                imports=("from flask_login import login_required",),
                description="Guard the route with @login_required",
            ),
        ),
        rule(
            "PIT-A07-09",
            "CWE-307",
            "Login handler lacks rate limiting",
            r"def\s+login\([^)]*\)\s*:",
            severity=Severity.LOW,
            confidence=Confidence.LOW,
            not_in_file=(r"limiter|rate_limit|attempts|lockout",),
        ),
    ]


def _insert_login_required(match):
    """Insert a @login_required decorator between the route and the def."""
    text = match.group(0)
    head, _, tail = text.rpartition("\ndef ")
    return f"{head}\n@login_required\ndef {tail}", ()
