"""A10:2021 Server-Side Request Forgery rules.

Rule ids use the ``PIT-A10-##`` scheme.  SSRF patches require validating
the target host against an allowlist — a statement-level change the
pattern engine cannot express as a span replacement — so these rules are
detection-only, one of the structural reasons the paper's repair rate sits
below 100 %.
"""

from __future__ import annotations

from repro.core.rules.base import rule
from repro.types import Confidence, Severity

_REQUEST_SOURCE = r"request\.(?:args|form|values|json|headers)"


def build_rules() -> list:
    """All A10 Server-Side Request Forgery rules."""
    return [
        rule(
            "PIT-A10-01",
            "CWE-918",
            "Server fetches a URL taken directly from the request",
            r"requests\.(?:get|post|put|delete|head)\(\s*" + _REQUEST_SOURCE + r"(?:\.get)?\([^()]*\)",
            severity=Severity.HIGH,
        ),
        rule(
            "PIT-A10-02",
            "CWE-918",
            "urllib opens a URL taken directly from the request",
            r"urllib\.request\.urlopen\(\s*" + _REQUEST_SOURCE + r"(?:\.get)?\([^()]*\)",
            severity=Severity.HIGH,
        ),
        rule(
            "PIT-A10-03",
            "CWE-918",
            "Server fetches a URL interpolated from user data",
            r"requests\.(?:get|post)\(\s*f['\"][^'\"]*\{[^{}]*(?:url|host|target|addr)[^{}]*\}",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        ),
    ]
