"""A01:2021 Broken Access Control rules — traversal, uploads, permissions.

Rule ids use the ``PIT-A01-##`` scheme.
"""

from __future__ import annotations

from repro.core.rules.base import PatchTemplate, rule
from repro.core.rules.helpers import add_call_kwargs
from repro.types import Confidence, Severity

_REQUEST_SOURCE = r"request\.(?:args|form|values|files|headers|cookies|json)"


def build_rules() -> list:
    """All A01 Broken Access Control rules, in catalog order."""
    return [
        # ---------------- Path traversal (CWE-022/023) ----------------
        rule(
            "PIT-A01-01",
            "CWE-022",
            "File opened from a path interpolating request data",
            r"open\(\s*f(?P<q>['\"])(?P<pre>(?:(?!(?P=q)).)*)\{(?P<expr>[^{}]+)\}(?P<post>(?:(?!(?P=q)).)*)(?P=q)",
            severity=Severity.HIGH,
            not_if=(r"basename\(", r"secure_filename\("),
            patch=PatchTemplate(
                replacement=r"open(f\g<q>\g<pre>{os.path.basename(\g<expr>)}\g<post>\g<q>",
                imports=("import os",),
                description="Strip directory components from the user path",
            ),
        ),
        rule(
            "PIT-A01-02",
            "CWE-022",
            "File opened from a concatenated user-controlled path",
            r"open\(\s*(?P<base>['\"][^'\"]*['\"])\s*\+\s*(?P<expr>[A-Za-z_][\w.\[\]]*(?:\([^()]*\))?)",
            severity=Severity.HIGH,
            not_if=(r"basename\(", r"secure_filename\("),
            patch=PatchTemplate(
                replacement=r"open(\g<base> + os.path.basename(\g<expr>)",
                imports=("import os",),
                description="Strip directory components from the user path",
            ),
        ),
        rule(
            "PIT-A01-03",
            "CWE-023",
            "os.path.join() mixes a base directory with raw request input",
            r"os\.path\.join\(\s*[^(),]+,\s*(?P<expr>" + _REQUEST_SOURCE + r"(?:\.get)?\([^()]*\))\s*\)",
            severity=Severity.HIGH,
            not_if=(r"basename\(", r"secure_filename\("),
            patch=PatchTemplate(
                builder=_basename_wrap_join,
                imports=("import os",),
                description="Strip directory components from the user path",
            ),
        ),
        rule(
            "PIT-A01-04",
            "CWE-022",
            "send_file() serves a user-controlled path",
            r"send_file\(\s*(?P<expr>[^()]*" + _REQUEST_SOURCE + r"[^()]*(?:\([^()]*\))?[^()]*)\)",
            severity=Severity.HIGH,
            not_if=(r"basename\(", r"secure_filename\(", r"safe_join\("),
            patch=PatchTemplate(
                replacement=r"send_file(os.path.basename(\g<expr>))",
                imports=("import os",),
                description="Serve only basename-restricted files",
            ),
        ),
        # ---------------- Archive extraction (CWE-022) ----------------
        rule(
            "PIT-A01-05",
            "CWE-022",
            "tar archive extracted without a member filter",
            r"\b\w+\.extractall\(\s*[^()]*\)",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
            not_if=(r"filter\s*=", r"members\s*="),
            not_in_file=(r"import\s+zipfile",),
            patch=PatchTemplate(
                builder=add_call_kwargs(("filter", '"data"')),
                description="Extract with the 'data' safety filter",
            ),
        ),
        rule(
            "PIT-A01-06",
            "CWE-022",
            "zip archive extracted without validating member names",
            r"\b\w+\.extractall\(\s*[^()]*\)",
            severity=Severity.HIGH,
            confidence=Confidence.MEDIUM,
            not_if=(r"filter\s*=", r"members\s*=", r"path\s*=\s*safe",),
            not_in_file=(r"import\s+tarfile",),
        ),
        # ---------------- Uploads (CWE-434) ----------------
        rule(
            "PIT-A01-07",
            "CWE-434",
            "Uploaded file saved under its client-supplied filename",
            r"\.save\((?P<pre>.*?)(?P<fname>(?:\w+\.filename|request\.files\[[^\]]+\]\.filename))(?P<post>[^)\n]*)\)",
            severity=Severity.HIGH,
            not_if=(r"secure_filename\(",),
            patch=PatchTemplate(
                replacement=r".save(\g<pre>secure_filename(\g<fname>)\g<post>)",
                imports=("from werkzeug.utils import secure_filename",),
                description="Sanitize the filename before saving",
            ),
        ),
        rule(
            "PIT-A01-08",
            "CWE-434",
            "Upload handler lacks an extension allowlist",
            r"request\.files\[[^\]]+\]\s*(?:\n|.)*?\.save\(",
            severity=Severity.MEDIUM,
            confidence=Confidence.LOW,
            not_in_file=(r"ALLOWED_EXTENSIONS|allowed_file|\.endswith\(",),
        ),
        # ---------------- Redirects (CWE-601) ----------------
        rule(
            "PIT-A01-09",
            "CWE-601",
            "redirect() follows a user-supplied URL",
            r"redirect\(\s*(?P<expr>" + _REQUEST_SOURCE + r"(?:\.get)?\([^()]*\))\s*\)",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement=(
                    r"redirect(\g<expr> if not urlparse(\g<expr>).netloc else '/')"
                ),
                imports=("from urllib.parse import urlparse",),
                description="Allow only same-site redirect targets",
            ),
        ),
        # ---------------- Permissions & temp files (CWE-732/276/377) ----------------
        rule(
            "PIT-A01-10",
            "CWE-732",
            "File permissions opened up to group/world",
            r"os\.chmod\(\s*(?P<path>[^,()]+),\s*(?:0o?7[0-7][0-7]|0o?[0-7]7[0-7]|0o?[0-7][0-7]7|0o666|stat\.S_IRWXU\s*\|\s*stat\.S_IRWXG\s*\|\s*stat\.S_IRWXO)\s*\)",
            severity=Severity.HIGH,
            patch=PatchTemplate(
                replacement=r"os.chmod(\g<path>, 0o600)",
                description="Restrict the file to its owner",
            ),
        ),
        rule(
            "PIT-A01-11",
            "CWE-276",
            "Process umask cleared to 0",
            r"os\.umask\(\s*0o?0?\s*\)",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement="os.umask(0o077)",
                description="Default new files to owner-only permissions",
            ),
        ),
        rule(
            "PIT-A01-12",
            "CWE-377",
            "Insecure temporary file created with tempfile.mktemp()",
            r"tempfile\.mktemp\(",
            severity=Severity.MEDIUM,
            patch=PatchTemplate(
                replacement="tempfile.mkstemp(",
                imports=("import tempfile",),
                description="Create the temporary file atomically",
            ),
        ),
        rule(
            "PIT-A01-13",
            "CWE-379",
            "Temporary file hand-rolled inside /tmp",
            r"open\(\s*f?['\"]/tmp/[^'\"]*['\"]",
            severity=Severity.MEDIUM,
            confidence=Confidence.MEDIUM,
        ),
        # ---------------- Authorization gaps (CWE-285/862/915) ----------------
        rule(
            "PIT-A01-14",
            "CWE-285",
            "Authorization enforced with an assert statement",
            r"assert\s+\w+\.(?:is_admin|is_authenticated|has_permission)",
            severity=Severity.MEDIUM,
        ),
        rule(
            "PIT-A01-15",
            "CWE-915",
            "Mass assignment of request fields onto an object",
            r"for\s+\w+\s*,\s*\w+\s+in\s+request\.(?:form|json|args)\.items\(\)\s*:\s*\n\s+setattr\(",
            severity=Severity.MEDIUM,
        ),
    ]


def _basename_wrap_join(match):
    """Wrap the request-derived join component in os.path.basename()."""
    text = match.group(0)
    expr = match.group("expr")
    return text.replace(expr, f"os.path.basename({expr})", 1), ()
