"""Single-pass multi-literal candidate selection for the rule engine.

Every ``run_rules`` call used to perform one ``literal in source`` scan
*per rule* — ~85 passes over each file before a single regex ran.  This
module collapses those scans into one multi-pattern pass, the way
production scanners in the Semgrep/ripgrep lineage do:

- :class:`AhoCorasick` — a pure-Python, pickle-safe Aho–Corasick
  automaton over every rule's required literals.  It defines the
  *semantics* of a lookup: which literals occur anywhere in the source,
  discovered in one left-to-right pass.
- :class:`RuleIndex` — compiled once per :class:`~repro.core.rules.base.RuleSet`
  (and carried through pickling into ``ProcessPoolExecutor`` workers and
  the warm scan-server engine), it maps one pass over a source to the
  exact candidate rule subset.  A rule is a candidate iff *all* of its
  required literals are present; rules with no derivable literal live in
  an always-run bucket, so index-on and index-off matching provably
  produce identical findings.

CPython detail: a character-at-a-time automaton walk in Python is slower
than C substring scans, so :meth:`RuleIndex.lookup` evaluates the same
literal set through a C-accelerated equivalent (:class:`_TrieScanner`):
high-frequency word-shaped literals are probed with single ``in`` checks
and the selective remainder is swept by one trie-factored alternation
regex with substring-implication closure.  The scanner is
behavior-identical to the automaton — ``lookup(reference=True)`` runs
the automaton instead, and the equivalence is pinned by tests.

``IGNORECASE`` rules get case-folded literals (lowercased, checked
against a lowercased copy of the source).  The fold is only trusted for
ASCII sources, where ``str.lower()`` agrees exactly with the regex
engine's case-insensitivity; a non-ASCII source simply promotes every
folded-requirement rule to candidate (correct, never fast-and-wrong).
The lowered copy is computed at most once per lookup and cached in a
single slot keyed by source identity, so repeated scans of the same
text (multi-pass patching, warm server snippets, verifier re-checks)
reuse it — the ``fold_computes``/``fold_reuses`` counters make the
reuse observable.

A lookup also carries a bitmask of the candidate positions; the mask
keys the grouped-alternation cache (:meth:`RuleIndex.grouped_for`), so
distinct sources that select the same candidate subset share one
compiled :class:`~repro.core.groupcompile.GroupedAlternation`.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.groupcompile import (
    GroupedAlternation,
    GroupedCache,
    catalog_fingerprint,
)
from repro.core.prefilter import required_literal_groups, required_literals

__all__ = ["AhoCorasick", "IndexLookup", "RuleIndex"]


class AhoCorasick:
    """A pure-Python Aho–Corasick automaton over a set of literals.

    Plain-data representation (per-node ``dict`` transition tables, flat
    failure/output lists) so instances pickle cleanly into worker
    processes.  Duplicate literals share a terminal node; empty literals
    are rejected.
    """

    def __init__(self, literals: Sequence[str]) -> None:
        self._literals: Tuple[str, ...] = tuple(literals)
        if any(not literal for literal in self._literals):
            raise ValueError("Aho-Corasick literals must be non-empty")
        goto: List[Dict[str, int]] = [{}]
        output: List[List[int]] = [[]]
        for literal_id, literal in enumerate(self._literals):
            node = 0
            for char in literal:
                nxt = goto[node].get(char)
                if nxt is None:
                    goto.append({})
                    output.append([])
                    nxt = len(goto) - 1
                    goto[node][char] = nxt
                node = nxt
            output[node].append(literal_id)
        fail = [0] * len(goto)
        queue: "deque[int]" = deque()
        for child in goto[0].values():
            queue.append(child)
        while queue:
            node = queue.popleft()
            for char, child in goto[node].items():
                queue.append(child)
                link = fail[node]
                while link and char not in goto[link]:
                    link = fail[link]
                fail[child] = goto[link].get(char, 0) if node else 0
                output[child].extend(output[fail[child]])
        self._goto: Tuple[Dict[str, int], ...] = tuple(goto)
        self._fail: Tuple[int, ...] = tuple(fail)
        self._output: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in output
        )

    @property
    def literals(self) -> Tuple[str, ...]:
        """The automaton's literal set, in id order."""
        return self._literals

    def __len__(self) -> int:
        return len(self._literals)

    def iter_matches(self, text: str) -> Iterator[Tuple[int, int]]:
        """Yield ``(end_offset, literal_id)`` for every occurrence.

        The classic automaton output: all occurrences of all literals —
        overlapping ones included — discovered in one pass over ``text``.
        """
        goto, fail, output = self._goto, self._fail, self._output
        state = 0
        for offset, char in enumerate(text):
            nxt = goto[state].get(char)
            while nxt is None and state:
                state = fail[state]
                nxt = goto[state].get(char)
            state = nxt if nxt is not None else 0
            for literal_id in output[state]:
                yield offset + 1, literal_id

    def present(self, text: str) -> Set[int]:
        """Ids of every literal occurring anywhere in ``text``.

        One pass, early exit once every literal has been seen.
        """
        goto, fail, output = self._goto, self._fail, self._output
        total = len(self._literals)
        found: Set[int] = set()
        state = 0
        for char in text:
            nxt = goto[state].get(char)
            while nxt is None and state:
                state = fail[state]
                nxt = goto[state].get(char)
            state = nxt if nxt is not None else 0
            if output[state]:
                found.update(output[state])
                if len(found) == total:
                    break
        return found


# Literals shaped like bare identifiers ("return", "password") occur in
# most Python files; probing each with one C-level ``in`` beats putting
# them in the swept alternation, where their occurrences dominate the
# match-event loop.  Punctuated literals ("pickle.loads(") are selective
# and belong in the single swept pass.
_WORDLIKE = re.compile(r"[A-Za-z_]+\Z")


def _trie_pattern(literals: Sequence[str]) -> str:
    """A trie-factored alternation matching exactly the given literals.

    Factoring shared prefixes means the regex engine descends one
    branch per position instead of attempting every alternative, which
    is what makes the single sweep cheaper than per-literal scans.
    Greedy descent with an optional tail makes each match the *longest*
    literal starting at its position; shorter same-start literals are
    recovered through the substring-implication closure.
    """
    root: Dict[str, dict] = {}
    for literal in literals:
        node = root
        for char in literal:
            node = node.setdefault(char, {})
        node[""] = {}

    def emit(node: Dict[str, dict]) -> str:
        terminal = "" in node
        branches = [
            re.escape(char) + emit(child)
            for char, child in sorted(node.items())
            if char != ""
        ]
        if not branches:
            return ""
        if len(branches) == 1 and not terminal:
            return branches[0]
        body = "(?:" + "|".join(branches) + ")"
        return body + ("?" if terminal else "")

    return emit(root)


class _TrieScanner:
    """C-accelerated equivalent of :meth:`AhoCorasick.present`.

    Returns the found-literal set as a bitmask (bit ``i`` set iff
    literal ``i`` occurs in the text).  Word-shaped literals are probed
    with direct ``in`` checks; the rest are swept by one trie-factored
    alternation, resuming one character past each match start so
    overlapping occurrences cannot be skipped.  Every hit folds in its
    substring-implication mask, so literals contained in a longer found
    literal are marked without their own scan.
    """

    def __init__(self, literals: Sequence[str]) -> None:
        self._literals = tuple(literals)
        implied: List[int] = []
        for i, literal in enumerate(self._literals):
            mask = 1 << i
            for j, other in enumerate(self._literals):
                if i != j and other in literal:
                    mask |= 1 << j
            implied.append(mask)
        self._implied: Tuple[int, ...] = tuple(implied)
        probe_ids = [i for i, lit in enumerate(self._literals) if _WORDLIKE.match(lit)]
        sweep_ids = [i for i in range(len(self._literals)) if i not in set(probe_ids)]
        self._probes: Tuple[Tuple[int, str], ...] = tuple(
            (i, self._literals[i]) for i in probe_ids
        )
        sweep_mask = 0
        for i in sweep_ids:
            sweep_mask |= 1 << i
        self._sweep_mask = sweep_mask
        self._sweep_by_text: Dict[str, int] = {self._literals[i]: i for i in sweep_ids}
        self._sweep_regex = (
            re.compile(_trie_pattern([self._literals[i] for i in sweep_ids]))
            if sweep_ids
            else None
        )

    def present_mask(self, text: str) -> int:
        """Bitmask of every literal occurring anywhere in ``text``."""
        implied = self._implied
        found = 0
        for literal_id, literal in self._probes:
            if literal in text:
                found |= implied[literal_id]
        regex = self._sweep_regex
        if regex is None:
            return found
        pending = self._sweep_mask & ~found
        by_text = self._sweep_by_text
        search = regex.search
        position = 0
        while pending:
            match = search(text, position)
            if match is None:
                break
            mask = implied[by_text[match.group(0)]]
            if mask & pending:
                found |= mask
                pending &= ~mask
            position = match.start() + 1
        return found


@dataclass
class IndexLookup:
    """One source's candidate partition, in catalog order.

    ``candidates`` must run (every required literal present, or no
    requirement derivable); ``skipped`` provably cannot match (at least
    one required literal absent).  ``mask`` sets bit *i* iff catalog
    position *i* is a candidate — the grouped-alternation cache key.
    """

    candidates: List["object"]
    skipped: List["object"]
    mask: int = field(default=0)


class RuleIndex:
    """Maps one pass over a source to the exact candidate rule subset.

    Built once from a rule collection: every rule's required literals
    (conjunction, :func:`repro.core.prefilter.required_literals`) and
    disjunction groups (one-of,
    :func:`repro.core.prefilter.required_literal_groups`) are pooled
    into two literal tables — case-sensitive and case-folded — each
    compiled into an :class:`AhoCorasick` automaton plus its accelerated
    scanner.  Per rule, the requirement is a bitmask conjunction over
    table ids plus an any-bit check per group; rules contributing no
    literal at all form the always-run bucket.

    The whole structure is plain data (dicts, tuples, ints, compiled
    regexes), so a built index survives pickling into worker processes
    unchanged.
    """

    def __init__(self, rules: Iterable["object"]) -> None:
        self._rules = tuple(rules)
        exact_ids: Dict[str, int] = {}
        folded_ids: Dict[str, int] = {}
        entries: List[Tuple[object, int, int, Tuple[Tuple[int, int], ...]]] = []
        always: List[object] = []

        def _intern(requirement) -> Tuple[int, int]:
            """(exact_bit, folded_bit) for one literal requirement."""
            table = folded_ids if requirement.folded else exact_ids
            literal_id = table.setdefault(requirement.text, len(table))
            bit = 1 << literal_id
            return (0, bit) if requirement.folded else (bit, 0)

        for rule in self._rules:
            exact_mask = 0
            folded_mask = 0
            for requirement in required_literals(rule.pattern):
                exact_bit, folded_bit = _intern(requirement)
                exact_mask |= exact_bit
                folded_mask |= folded_bit
            groups: List[Tuple[int, int]] = []
            for group in required_literal_groups(rule.pattern):
                group_exact = 0
                group_folded = 0
                for requirement in group:
                    exact_bit, folded_bit = _intern(requirement)
                    group_exact |= exact_bit
                    group_folded |= folded_bit
                groups.append((group_exact, group_folded))
            entries.append((rule, exact_mask, folded_mask, tuple(groups)))
            if not exact_mask and not folded_mask and not groups:
                always.append(rule)
        self._entries: Tuple[
            Tuple[object, int, int, Tuple[Tuple[int, int], ...]], ...
        ] = tuple(entries)
        self.exact_literals: Tuple[str, ...] = tuple(exact_ids)
        self.folded_literals: Tuple[str, ...] = tuple(folded_ids)
        self.always_run: Tuple[object, ...] = tuple(always)
        self.automaton = AhoCorasick(self.exact_literals)
        self.folded_automaton = AhoCorasick(self.folded_literals)
        self._exact_scanner = _TrieScanner(self.exact_literals)
        self._folded_scanner = _TrieScanner(self.folded_literals)
        self._folded_all = (1 << len(self.folded_literals)) - 1
        self._fingerprint: Optional[str] = None
        self._grouped = GroupedCache()
        # Single-slot fold cache: (source, lowered) as one tuple so a
        # concurrent replacement can never pair one source's key with
        # another's lowered copy.  Counters are best-effort (a lost
        # increment under threads is acceptable for observability).
        self._fold_slot: Optional[Tuple[str, str]] = None
        self.fold_computes = 0
        self.fold_reuses = 0
        # Bounded per-source memo of grouped dispatch plans (FIFO, plain
        # dict: every operation is a single atomic dict op under the
        # GIL, so no lock — and no lock means the index still pickles
        # into worker processes unchanged).  Only rule *selection* is
        # memoized, never findings; matching always runs live.
        self._plan_memo: Dict[str, Tuple[Tuple[object, ...], int, Optional[str]]] = {}
        self._plan_maxsize = 256
        self.plan_hits = 0
        self.plan_misses = 0

    @property
    def rules(self) -> Tuple["object", ...]:
        """The indexed rules, in catalog order."""
        return self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def lookup(self, source: str, reference: bool = False) -> IndexLookup:
        """Partition the rules into candidates and provable skips.

        ``reference=True`` evaluates literal presence through the
        Aho–Corasick automatons instead of the accelerated scanners —
        same result by construction (tests pin it), useful for
        verification and as a semantic oracle.
        """
        if reference:
            exact_found = _mask_of(self.automaton.present(source))
        else:
            exact_found = self._exact_scanner.present_mask(source)
        folded_found = 0
        if self.folded_literals:
            if source.isascii():
                slot = self._fold_slot
                if slot is not None and (slot[0] is source or slot[0] == source):
                    lowered = slot[1]
                    self.fold_reuses += 1
                else:
                    lowered = source.lower()
                    self._fold_slot = (source, lowered)
                    self.fold_computes += 1
                if reference:
                    folded_found = _mask_of(self.folded_automaton.present(lowered))
                else:
                    folded_found = self._folded_scanner.present_mask(lowered)
            else:
                # A non-ASCII source can satisfy IGNORECASE literals
                # through one-to-many Unicode case mappings a substring
                # check cannot model; run those rules rather than risk a
                # wrong skip.
                folded_found = self._folded_all
        candidates: List[object] = []
        skipped: List[object] = []
        mask = 0
        bit = 1
        for rule, exact_mask, folded_mask, groups in self._entries:
            if (
                exact_mask & exact_found == exact_mask
                and folded_mask & folded_found == folded_mask
                and all(
                    group_exact & exact_found or group_folded & folded_found
                    for group_exact, group_folded in groups
                )
            ):
                candidates.append(rule)
                mask |= bit
            else:
                skipped.append(rule)
            bit <<= 1
        return IndexLookup(candidates=candidates, skipped=skipped, mask=mask)

    @property
    def fingerprint(self) -> str:
        """Catalog fingerprint keying the grouped-alternation cache.

        Computed lazily on first use; a concurrent first computation is
        benign (both threads derive the same digest).
        """
        if self._fingerprint is None:
            self._fingerprint = catalog_fingerprint(self._rules)
        return self._fingerprint

    def grouped_for(self, lookup: IndexLookup) -> GroupedAlternation:
        """The grouped-alternation plan for one lookup's candidate set.

        Memoized per ``(catalog fingerprint, candidate mask)``: distinct
        sources selecting the same candidate subset share one compiled
        plan, so a warm engine pays grouped compilation once per mask.
        """
        return self._grouped.get_or_build(
            self.fingerprint, lookup.mask, lookup.candidates
        )

    def grouped_plan(
        self, source: str
    ) -> Tuple[Tuple[object, ...], int, Optional[str]]:
        """``(dispatch, cleared, first_hit_rule_id)`` for one source, memoized.

        The grouped tier's warm entry point: the candidate lookup, the
        grouped compilation *and* the bucket probes are all pure
        functions of ``(catalog, source)``, so the resulting dispatch
        selection is memoized per source in a bounded FIFO.  A warm
        repeat — multi-pass patching re-detecting the same text at
        fixpoint, the verifier re-scanning, the scan daemon serving a
        seen snippet — collapses the whole selection to one dict probe.
        Only the *selection* is cached: the dispatched rules still run
        live every call, so findings stay byte-identical by
        construction.  Keys hold source strings, hence the small bound.
        """
        memo = self._plan_memo
        entry = memo.get(source)
        if entry is not None:
            self.plan_hits += 1
            return entry
        lookup = self.lookup(source)
        plan = self.grouped_for(lookup).plan(source)
        entry = (tuple(plan[0]), plan[1], plan[2])
        if len(memo) >= self._plan_maxsize:
            try:  # FIFO eviction; best-effort under concurrent clears
                memo.pop(next(iter(memo)), None)
            except (StopIteration, RuntimeError):  # pragma: no cover
                pass
        memo[source] = entry
        self.plan_misses += 1
        return entry

    def grouped_stats(self) -> Dict[str, int]:
        """Cache counters of the grouped tier (compilation and plan memo)."""
        stats = self._grouped.stats()
        stats["plan_hits"] = self.plan_hits
        stats["plan_misses"] = self.plan_misses
        stats["plan_size"] = len(self._plan_memo)
        return stats

    def describe(self) -> Dict[str, int]:
        """Size counters for benchmarks and reports."""
        return {
            "rules": len(self._rules),
            "always_run": len(self.always_run),
            "exact_literals": len(self.exact_literals),
            "folded_literals": len(self.folded_literals),
            "or_groups": sum(len(entry[3]) for entry in self._entries),
        }


def _mask_of(ids: Set[int]) -> int:
    mask = 0
    for literal_id in ids:
        mask |= 1 << literal_id
    return mask
