"""Pattern-match execution: rules × source → findings.

This stage is deliberately AST-free (§II): matching runs directly on the
raw text so that incomplete, unparseable AI-generated snippets are still
analyzable — the property that lets PatchitPy out-recall AST-based tools on
generated code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.rules.base import DetectionRule
from repro.observability.collector import ScanMetrics, clock
from repro.types import Finding, LineIndex, Span


def _prefilter_for(rule: DetectionRule) -> Optional[str]:
    """The rule's required literal, precomputed at rule construction.

    Rules carry their prefilter as a frozen field (see
    :class:`~repro.core.rules.base.DetectionRule`), so there is no shared
    mutable cache here: matching is thread-safe and rules pickle cleanly
    into worker processes.  This indirection survives as a seam for the
    prefilter-ablation benchmark, which monkeypatches it to ``None``.
    """
    return rule.prefilter


def _index_for(rules: Iterable[DetectionRule]):
    """The collection's candidate index, or ``None`` for plain iterables.

    :class:`~repro.core.rules.base.RuleSet` exposes a cached
    ``candidate_index()``; lists and generators of rules have no such
    method and fall back to per-rule prefilter checks.  Like
    :func:`_prefilter_for`, the indirection doubles as the
    index-ablation seam — benchmarks monkeypatch it to ``None``.
    """
    builder = getattr(rules, "candidate_index", None)
    if builder is None:
        return None
    return builder()


def _applies(
    rule: DetectionRule,
    source: str,
    memo: Dict[Tuple[str, int], bool],
) -> bool:
    """``rule.applies_to`` with a per-source prerequisite memo.

    Prerequisites are file-scope patterns shared across rules (e.g. a
    framework-import check), so within one ``run_rules`` call each
    distinct ``(pattern, flags)`` prerequisite is searched at most once
    however many rules require it.
    """
    for prerequisite in rule.prerequisites:
        key = (prerequisite.pattern, prerequisite.flags)
        verdict = memo.get(key)
        if verdict is None:
            verdict = memo[key] = prerequisite.search(source) is not None
        if not verdict:
            return False
    return True


def match_rule(
    rule: DetectionRule,
    source: str,
    metrics: Optional[ScanMetrics] = None,
    lines: Optional[LineIndex] = None,
) -> List[Finding]:
    """All non-vetoed matches of ``rule`` in ``source`` as findings.

    A literal prefilter (the longest substring every match must contain)
    skips the regex entirely on files that cannot match — the same
    optimization production scanners use.  With an enabled ``metrics``
    collector the call also records per-rule wall time, match count, and
    how each skip/veto mechanism fired; without one the uninstrumented
    fast path runs.  ``lines`` optionally shares one per-source
    :class:`~repro.types.LineIndex` across rules for line-scope guards.
    """
    if metrics is None or not metrics.enabled:
        return _match_rule_fast(rule, source, lines)
    start = clock()
    stats = metrics.rule_stats(rule.rule_id)
    stats.calls += 1
    findings: List[Finding] = []
    literal = _prefilter_for(rule)
    if literal is not None and literal not in source:
        stats.prefilter_skips += 1
    elif not rule.applies_to(source):
        stats.prereq_skips += 1
    else:
        for match in rule.pattern.finditer(source):
            if any(
                guard.vetoes(source, match, lines) for guard in rule.all_guards()
            ):
                stats.guard_vetoes += 1
                continue
            findings.append(_finding_for(rule, match))
        stats.matches += len(findings)
    elapsed = clock() - start
    stats.time_s += elapsed
    metrics.observe("rule_seconds/" + rule.rule_id, elapsed)
    return findings


def _match_rule_fast(
    rule: DetectionRule, source: str, lines: Optional[LineIndex] = None
) -> List[Finding]:
    """The metrics-free hot path (identical behavior, no bookkeeping)."""
    findings: List[Finding] = []
    literal = _prefilter_for(rule)
    if literal is not None and literal not in source:
        return findings
    if not rule.applies_to(source):
        return findings
    for match in rule.pattern.finditer(source):
        if any(guard.vetoes(source, match, lines) for guard in rule.all_guards()):
            continue
        findings.append(_finding_for(rule, match))
    return findings


def _match_candidate_fast(
    rule: DetectionRule,
    source: str,
    memo: Dict[Tuple[str, int], bool],
    lines: Optional[LineIndex] = None,
) -> List[Finding]:
    """Hot path for an index-proven candidate (no literal re-check).

    The candidate index already established that every literal the rule
    requires is present, so the per-rule substring check is skipped and
    prerequisite verdicts come from the shared per-source ``memo``.
    """
    findings: List[Finding] = []
    if not _applies(rule, source, memo):
        return findings
    for match in rule.pattern.finditer(source):
        if any(guard.vetoes(source, match, lines) for guard in rule.all_guards()):
            continue
        findings.append(_finding_for(rule, match))
    return findings


def _finding_for(rule: DetectionRule, match) -> Finding:
    return Finding(
        rule_id=rule.rule_id,
        cwe_id=rule.cwe_id,
        message=rule.message,
        span=Span(match.start(), match.end()),
        snippet=_clip(match.group(0)),
        severity=rule.severity,
        confidence=rule.confidence,
        fixable=rule.patchable,
    )


def run_rules(
    rules: Iterable[DetectionRule],
    source: str,
    metrics: Optional[ScanMetrics] = None,
    trace: Optional["object"] = None,
    use_index: bool = True,
    use_grouped: bool = True,
) -> List[Finding]:
    """Run every rule and return findings ordered by position then rule id.

    When two rules of the *same CWE* match overlapping spans, only the
    earlier (more specific, per catalog order) finding is kept, so a single
    vulnerable line does not inflate the report.

    When ``rules`` is a :class:`~repro.core.rules.base.RuleSet` (and
    ``use_index`` is left on), one pass of its candidate index replaces
    the per-rule literal checks: index-skipped rules never run, and
    index-proven candidates skip their redundant literal re-check.  On
    top of that, ``use_grouped`` (the default) runs the candidate set's
    grouped alternation (:mod:`repro.core.groupcompile`) first: a bucket
    whose combined regex finds nothing clears every member without a
    per-rule pass; a bucket with a hit sends its members to exactly the
    per-rule dispatch they always ran.  The whole selection is memoized
    per source (:meth:`~repro.core.candidates.RuleIndex.grouped_plan`),
    so a warm repeat skips even the lookup.  The finding set is identical
    across all three tiers — ``use_index=False`` / ``use_grouped=False``
    are the ablation seams that pin this.

    With an enabled ``trace`` recorder every rule execution, guard
    verdict and match is additionally emitted as a structured span event
    and each surviving finding carries a full provenance record; the
    traced path bypasses grouped dispatch on purpose — its job is the
    complete per-rule audit trail.  The tracing machinery is imported
    only on that path, so the disabled scan runs exactly the pre-tracing
    code.
    """
    findings: List[Finding] = []
    index = _index_for(rules) if use_index else None
    lines = LineIndex(source)
    if trace is not None and getattr(trace, "enabled", False):
        findings = _run_rules_traced(rules, source, metrics, trace, index)
    elif metrics is None or not metrics.enabled:
        if index is None:
            for rule in rules:
                findings.extend(_match_rule_fast(rule, source, lines))
        else:
            if use_grouped:
                # The memoized grouped tier: lookup, grouped compilation
                # and bucket probes collapse to one dict hit on a warm
                # repeat (selection only — matching below runs live).
                dispatch = index.grouped_plan(source)[0]
            else:
                dispatch = index.lookup(source).candidates
            memo: Dict[Tuple[str, int], bool] = {}
            for rule in dispatch:
                findings.extend(_match_candidate_fast(rule, source, memo, lines))
    elif index is None:
        for rule in rules:
            findings.extend(match_rule(rule, source, metrics, lines))
    else:
        findings = _run_candidates_measured(
            source, metrics, index, use_grouped, lines
        )
    findings.sort(key=lambda f: (f.span.start, f.span.end, f.rule_id))
    return _dedupe_same_cwe_overlaps(findings)


def _run_candidates_measured(
    source: str,
    metrics: ScanMetrics,
    index,
    use_grouped: bool = True,
    lines: Optional[LineIndex] = None,
) -> List[Finding]:
    """The instrumented indexed path: same counters, one literal pass.

    Index-skipped rules are still accounted (a call plus a prefilter
    skip, exactly as the per-rule path would have recorded), and the
    lookup itself feeds the ``index_candidates``/``index_skips``
    counters.  With grouped dispatch on, rules a combined-alternation
    bucket proves matchless are cleared — accounted as a call plus the
    ``grouped_cleared`` aggregate (they can have no matches by
    construction) — and only the surviving dispatch list pays per-rule
    time.  ``index_fold_reuse`` surfaces the lookup's fold-cache reuse.
    """
    fold_before = getattr(index, "fold_reuses", 0)
    lookup = index.lookup(source)
    fold_reused = getattr(index, "fold_reuses", 0) - fold_before
    if fold_reused > 0:
        metrics.count("index_fold_reuse", fold_reused)
    metrics.count("index_candidates", len(lookup.candidates))
    metrics.count("index_skips", len(lookup.skipped))
    for rule in lookup.skipped:
        stats = metrics.rule_stats(rule.rule_id)
        stats.calls += 1
        stats.prefilter_skips += 1
    if use_grouped:
        dispatch, cleared, hit_rule = index.grouped_for(lookup).plan(source)
        metrics.count("grouped_cleared", cleared)
        metrics.count("grouped_dispatch", len(dispatch))
        if hit_rule is not None:
            metrics.count("grouped_hits", 1)
        if cleared:
            live = {id(rule) for rule in dispatch}
            for rule in lookup.candidates:
                if id(rule) not in live:
                    metrics.rule_stats(rule.rule_id).calls += 1
    else:
        dispatch = lookup.candidates
    findings: List[Finding] = []
    memo: Dict[Tuple[str, int], bool] = {}
    for rule in dispatch:
        start = clock()
        stats = metrics.rule_stats(rule.rule_id)
        stats.calls += 1
        rule_findings: List[Finding] = []
        if not _applies(rule, source, memo):
            stats.prereq_skips += 1
        else:
            for match in rule.pattern.finditer(source):
                if any(
                    guard.vetoes(source, match, lines) for guard in rule.all_guards()
                ):
                    stats.guard_vetoes += 1
                    continue
                rule_findings.append(_finding_for(rule, match))
            stats.matches += len(rule_findings)
        stats.time_s += clock() - start
        findings.extend(rule_findings)
    return findings


def _run_rules_traced(
    rules: Iterable[DetectionRule],
    source: str,
    metrics: Optional[ScanMetrics],
    trace,
    index=None,
) -> List[Finding]:
    """The traced matching path: events + provenance, same findings.

    Behavior-identical to the fast path (guard vetoes, prefilter and
    prerequisite skips produce the same finding set) but every decision
    is recorded: an ``index-lookup`` event with the candidate partition
    (when an index is in play), a ``rule`` span per rule with its
    outcome — index-skipped rules keep their span, with outcome
    ``prefilter-skip`` — a ``guard-decision`` event per guard per
    candidate match (all guards are evaluated rather than
    short-circuiting, because the audit trail names each verdict), and a
    :class:`Provenance` record attached to every surviving finding.
    Feeds ``metrics`` too when enabled, so a traced scan still produces
    the aggregate counters.
    """
    # Local import by design: the disabled hot path must not touch the
    # tracing modules (scripts/check_hot_path_isolation.py enforces it).
    from repro.observability.provenance import guard_decisions, provenance_from_match

    findings: List[Finding] = []
    record_metrics = metrics is not None and metrics.enabled
    indexed_skips = None
    if index is not None:
        lookup = index.lookup(source)
        indexed_skips = {rule.rule_id for rule in lookup.skipped}
        trace.event(
            "index-lookup",
            "candidates",
            candidates=len(lookup.candidates),
            skipped=len(lookup.skipped),
        )
        if record_metrics:
            metrics.count("index_candidates", len(lookup.candidates))
            metrics.count("index_skips", len(lookup.skipped))
    memo: Dict[Tuple[str, int], bool] = {}
    for rule in rules:
        start = clock()
        stats = metrics.rule_stats(rule.rule_id) if record_metrics else None
        if stats is not None:
            stats.calls += 1
        sid = trace.begin("rule", rule.rule_id)
        outcome = "no-match"
        rule_findings: List[Finding] = []
        vetoes = 0
        if indexed_skips is None:
            literal = _prefilter_for(rule)
            literal_missing = literal is not None and literal not in source
        else:
            # One index pass already decided literal presence for every
            # rule; candidates skip the redundant substring re-check.
            literal_missing = rule.rule_id in indexed_skips
        if literal_missing:
            outcome = "prefilter-skip"
            if stats is not None:
                stats.prefilter_skips += 1
        elif not _applies(rule, source, memo):
            outcome = "prereq-skip"
            if stats is not None:
                stats.prereq_skips += 1
        else:
            for match in rule.pattern.finditer(source):
                decisions = guard_decisions(rule, source, match)
                for decision in decisions:
                    trace.event(
                        "guard-decision",
                        decision.description,
                        rule=rule.rule_id,
                        scope=decision.scope,
                        vetoed=decision.vetoed,
                        start=match.start(),
                        end=match.end(),
                    )
                if any(decision.vetoed for decision in decisions):
                    vetoes += 1
                    if stats is not None:
                        stats.guard_vetoes += 1
                    continue
                provenance = provenance_from_match(rule, source, match, decisions)
                rule_findings.append(_finding_for(rule, match).with_provenance(provenance))
            if rule_findings:
                outcome = "matched"
            if stats is not None:
                stats.matches += len(rule_findings)
        trace.end(sid, outcome=outcome, matches=len(rule_findings), vetoes=vetoes)
        if stats is not None:
            elapsed = clock() - start
            stats.time_s += elapsed
            metrics.observe("rule_seconds/" + rule.rule_id, elapsed)
        findings.extend(rule_findings)
    return findings


def _dedupe_same_cwe_overlaps(findings: List[Finding]) -> List[Finding]:
    """Drop same-CWE findings overlapping an already-kept span.

    Findings arrive sorted by ``(start, end, rule_id)``, so per CWE the
    kept spans are pairwise disjoint with non-decreasing starts — and a
    candidate can therefore only overlap the *most recent* active spans.
    Tracking a per-CWE active list (pruned as starts advance) makes the
    pass linear instead of the old all-kept-findings scan, which went
    quadratic on pattern-dense files.
    """
    kept: List[Finding] = []
    active: dict = {}
    for finding in findings:
        spans = active.get(finding.cwe_id)
        if spans is None:
            spans = active[finding.cwe_id] = []
        if spans:
            # Spans ending at or before this start can never overlap this
            # candidate nor any later one (starts are non-decreasing).
            spans[:] = [s for s in spans if s.end > finding.span.start]
        if any(s.overlaps(finding.span) for s in spans):
            continue
        spans.append(finding.span)
        kept.append(finding)
    return kept


def _clip(text: str, limit: int = 160) -> str:
    flattened = " ".join(text.split())
    if len(flattened) <= limit:
        return flattened
    return flattened[: limit - 3] + "..."
