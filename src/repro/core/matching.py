"""Pattern-match execution: rules × source → findings.

This stage is deliberately AST-free (§II): matching runs directly on the
raw text so that incomplete, unparseable AI-generated snippets are still
analyzable — the property that lets PatchitPy out-recall AST-based tools on
generated code.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.rules.base import DetectionRule
from repro.observability.collector import ScanMetrics, clock
from repro.types import Finding, Span


def _prefilter_for(rule: DetectionRule) -> Optional[str]:
    """The rule's required literal, precomputed at rule construction.

    Rules carry their prefilter as a frozen field (see
    :class:`~repro.core.rules.base.DetectionRule`), so there is no shared
    mutable cache here: matching is thread-safe and rules pickle cleanly
    into worker processes.  This indirection survives as a seam for the
    prefilter-ablation benchmark, which monkeypatches it to ``None``.
    """
    return rule.prefilter


def match_rule(
    rule: DetectionRule, source: str, metrics: Optional[ScanMetrics] = None
) -> List[Finding]:
    """All non-vetoed matches of ``rule`` in ``source`` as findings.

    A literal prefilter (the longest substring every match must contain)
    skips the regex entirely on files that cannot match — the same
    optimization production scanners use.  With an enabled ``metrics``
    collector the call also records per-rule wall time, match count, and
    how each skip/veto mechanism fired; without one the uninstrumented
    fast path runs.
    """
    if metrics is None or not metrics.enabled:
        return _match_rule_fast(rule, source)
    start = clock()
    stats = metrics.rule_stats(rule.rule_id)
    stats.calls += 1
    findings: List[Finding] = []
    literal = _prefilter_for(rule)
    if literal is not None and literal not in source:
        stats.prefilter_skips += 1
    elif not rule.applies_to(source):
        stats.prereq_skips += 1
    else:
        for match in rule.pattern.finditer(source):
            if any(guard.vetoes(source, match) for guard in rule.all_guards()):
                stats.guard_vetoes += 1
                continue
            findings.append(_finding_for(rule, match))
        stats.matches += len(findings)
    stats.time_s += clock() - start
    return findings


def _match_rule_fast(rule: DetectionRule, source: str) -> List[Finding]:
    """The metrics-free hot path (identical behavior, no bookkeeping)."""
    findings: List[Finding] = []
    literal = _prefilter_for(rule)
    if literal is not None and literal not in source:
        return findings
    if not rule.applies_to(source):
        return findings
    for match in rule.pattern.finditer(source):
        if any(guard.vetoes(source, match) for guard in rule.all_guards()):
            continue
        findings.append(_finding_for(rule, match))
    return findings


def _finding_for(rule: DetectionRule, match) -> Finding:
    return Finding(
        rule_id=rule.rule_id,
        cwe_id=rule.cwe_id,
        message=rule.message,
        span=Span(match.start(), match.end()),
        snippet=_clip(match.group(0)),
        severity=rule.severity,
        confidence=rule.confidence,
        fixable=rule.patchable,
    )


def run_rules(
    rules: Iterable[DetectionRule],
    source: str,
    metrics: Optional[ScanMetrics] = None,
) -> List[Finding]:
    """Run every rule and return findings ordered by position then rule id.

    When two rules of the *same CWE* match overlapping spans, only the
    earlier (more specific, per catalog order) finding is kept, so a single
    vulnerable line does not inflate the report.
    """
    findings: List[Finding] = []
    if metrics is None or not metrics.enabled:
        for rule in rules:
            findings.extend(_match_rule_fast(rule, source))
    else:
        for rule in rules:
            findings.extend(match_rule(rule, source, metrics))
    findings.sort(key=lambda f: (f.span.start, f.span.end, f.rule_id))
    return _dedupe_same_cwe_overlaps(findings)


def _dedupe_same_cwe_overlaps(findings: List[Finding]) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        duplicate = any(
            other.cwe_id == finding.cwe_id and other.span.overlaps(finding.span)
            for other in kept
        )
        if not duplicate:
            kept.append(finding)
    return kept


def _clip(text: str, limit: int = 160) -> str:
    flattened = " ".join(text.split())
    if len(flattened) <= limit:
        return flattened
    return flattened[: limit - 3] + "..."
