"""Import insertion for applied patches.

When a safe alternative uses an API from a module the vulnerable code did
not import, the patch carries the needed import statements; this manager
places them at the top of the file — after a module docstring and any
``from __future__`` imports, appended to the existing import block —
mirroring the VS Code ``Position`` API placement described in §II-B.

Import-shaped text inside string literals (a module docstring quoting
``import os``, a triple-quoted SQL template) is never treated as an
import: collection, insertion-point scanning, and pruning all consult a
lightweight string-literal scanner first, so new imports are never
spliced into the middle of a docstring and docstring lines are never
"pruned" as dead imports.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence, Tuple

_IMPORT_LINE_RE = re.compile(r"^(?:import\s+[\w.]+|from\s+[\w.]+\s+import\s+.+)", re.MULTILINE)
_FROM_IMPORT_RE = re.compile(r"^from\s+(?P<module>[\w.]+)\s+import\s+(?P<names>[^#\n]+)")
_PLAIN_IMPORT_RE = re.compile(r"^import\s+(?P<modules>[^#\n]+)")


def string_spans(source: str) -> List[Tuple[int, int]]:
    """Half-open ``[start, end)`` spans of string literals in ``source``.

    A small state machine, not a full tokenizer: it tracks single- and
    triple-quoted strings (prefixes and escapes included) and comments,
    which is exactly enough to decide whether an import-shaped line sits
    inside a literal.  An unterminated triple quote extends to the end of
    the text — the conservative reading for generated, possibly
    incomplete snippets.
    """
    spans: List[Tuple[int, int]] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "#":
            newline = source.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if ch in "\"'":
            # include any immediately-preceding string prefix (r, b, f, u)
            start = i
            j = start - 1
            while j >= 0 and source[j] in "rRbBuUfF":
                j -= 1
            # only a prefix if glued to the quote as part of a name-free token
            if j < start - 1 and (j < 0 or not (source[j].isalnum() or source[j] == "_")):
                start = j + 1
            quote = source[i : i + 3] if source[i : i + 3] in ('"""', "'''") else ch
            i += len(quote)
            while i < n:
                if source[i] == "\\":
                    i += 2
                    continue
                if source.startswith(quote, i):
                    i += len(quote)
                    break
                if len(quote) == 1 and source[i] == "\n":
                    i += 1  # unterminated single-quoted string ends at EOL
                    break
                i += 1
            spans.append((start, min(i, n)))
            continue
        i += 1
    return spans


def _offset_in_spans(offset: int, spans: Sequence[Tuple[int, int]]) -> bool:
    return any(start <= offset < end for start, end in spans)


class ImportManager:
    """Tracks the imports of a source file and inserts missing ones."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._string_spans = string_spans(source)
        self._existing = _collect_imports(source, self._string_spans)

    def has_import(self, statement: str) -> bool:
        """True when ``statement`` (or a superset of it) is already present.

        Multi-module statements (``import os, pickle``) are present only
        when *every* module they name is.
        """
        try:
            wanted = _parse_imports(statement)
        except ValueError:
            return False
        return all(self._has_entry(kind, module, names) for kind, module, names in wanted)

    def _has_entry(self, kind: str, module: str, names: frozenset) -> bool:
        for existing_kind, existing_module, existing_names in self._existing:
            if existing_module != module:
                continue
            if kind == "import" and existing_kind == "import":
                return True
            if kind == "from" and existing_kind == "from" and names <= existing_names:
                return True
        return False

    def missing(self, statements: Iterable[str]) -> List[str]:
        """Deduplicated statements not yet imported, in request order."""
        out: List[str] = []
        for statement in statements:
            cleaned = statement.strip()
            if cleaned and cleaned not in out and not self.has_import(cleaned):
                out.append(cleaned)
        return out

    def insert(self, statements: Iterable[str]) -> str:
        """Return the source with the missing ``statements`` inserted."""
        to_add = self.missing(statements)
        if not to_add:
            return self._source
        offset = self.insertion_offset()
        block = "\n".join(to_add) + "\n"
        return self._source[:offset] + block + self._source[offset:]

    def insertion_offset(self) -> int:
        """Character offset where new imports belong.

        After the last top-level import when one exists; otherwise after
        the module docstring; otherwise offset 0.  Import-shaped lines
        inside string literals (e.g. a docstring quoting ``import os`` at
        column 0) are not insertion anchors — splicing there would drop
        the new imports into the middle of the literal.
        """
        last_import_end = -1
        for match in _IMPORT_LINE_RE.finditer(self._source):
            if _offset_in_spans(match.start(), self._string_spans):
                continue  # inside a string literal — not a real import
            line_start = self._source.rfind("\n", 0, match.start()) + 1
            if self._source[line_start : match.start()].strip():
                continue  # indented (inside a function) — not top-level
            line_end = self._source.find("\n", match.end())
            last_import_end = len(self._source) if line_end == -1 else line_end + 1
        if last_import_end != -1:
            return last_import_end
        return self._docstring_end()

    def _docstring_end(self) -> int:
        stripped = self._source.lstrip()
        lead = len(self._source) - len(stripped)
        for quote in ('"""', "'''"):
            if stripped.startswith(quote):
                end = stripped.find(quote, len(quote))
                if end != -1:
                    close = lead + end + len(quote)
                    newline = self._source.find("\n", close)
                    return len(self._source) if newline == -1 else newline + 1
        return 0


def _collect_imports(
    source: str, spans: Sequence[Tuple[int, int]] = ()
) -> List[Tuple[str, str, frozenset]]:
    collected: List[Tuple[str, str, frozenset]] = []
    offset = 0
    for line in source.splitlines(keepends=True):
        start = offset
        offset += len(line)
        cleaned = line.strip()
        if not cleaned.startswith(("import ", "from ")):
            continue
        if spans and _offset_in_spans(start + line.find(cleaned[0]), spans):
            continue  # import-shaped text inside a string literal
        try:
            collected.extend(_parse_imports(cleaned))
        except ValueError:
            continue
    return collected


def _split_alias(part: str) -> Tuple[str, str]:
    """``"module as alias"`` → ``(module, binding_name)``."""
    target, _, alias = part.partition(" as ")
    target = target.strip()
    alias = alias.strip()
    if alias:
        return target, alias
    return target, target.split(".")[0]


def _parse_imports(statement: str) -> List[Tuple[str, str, frozenset]]:
    """Parse into ``(kind, module, names)`` entries; ValueError if neither.

    A ``from`` import yields one entry; a plain import yields **one entry
    per module** — ``import os, pickle`` records both ``os`` and
    ``pickle``, so membership checks and pruning see every module a
    statement binds (keeping only the first was the pre-1.5 bug that made
    ``has_import("import pickle")`` miss and duplicated inserts).
    """
    from_match = _FROM_IMPORT_RE.match(statement)
    if from_match:
        names = frozenset(
            name.strip().split(" as ")[0].strip()
            for name in from_match.group("names").split(",")
            if name.strip()
        )
        return [("from", from_match.group("module"), names)]
    plain_match = _PLAIN_IMPORT_RE.match(statement)
    if plain_match:
        entries: List[Tuple[str, str, frozenset]] = []
        for part in plain_match.group("modules").split(","):
            if not part.strip():
                continue
            module, _binding = _split_alias(part.strip())
            entries.append(("import", module, frozenset()))
        if entries:
            return entries
    raise ValueError(f"not an import statement: {statement!r}")


def import_bindings(statement: str) -> List[str]:
    """The module-scope names an import statement binds.

    ``import os.path as p, pickle`` binds ``p`` and ``pickle``;
    ``from flask import Flask, request as req`` binds ``Flask`` and
    ``req``.  Raises ``ValueError`` for non-import text.
    """
    from_match = _FROM_IMPORT_RE.match(statement)
    if from_match:
        bindings: List[str] = []
        for part in from_match.group("names").split(","):
            if not part.strip():
                continue
            _target, binding = _split_alias(part.strip())
            bindings.append(binding)
        return bindings
    plain_match = _PLAIN_IMPORT_RE.match(statement)
    if plain_match:
        bindings = []
        for part in plain_match.group("modules").split(","):
            if not part.strip():
                continue
            _module, binding = _split_alias(part.strip())
            bindings.append(binding)
        if bindings:
            return bindings
    raise ValueError(f"not an import statement: {statement!r}")


def insert_imports(source: str, statements: Sequence[str]) -> str:
    """Convenience wrapper: insert ``statements`` into ``source``."""
    return ImportManager(source).insert(statements)


_NAME_RE_CACHE: dict = {}


def _name_used(source: str, name: str) -> bool:
    pattern = _NAME_RE_CACHE.get(name)
    if pattern is None:
        pattern = re.compile(rf"(?<![\w.]){re.escape(name)}(?![\w])")
        _NAME_RE_CACHE[name] = pattern
    return bool(pattern.search(source))


def prune_unused_imports(source: str) -> str:
    """Drop top-level import lines whose names the code no longer uses.

    After a safe substitution (e.g. ``pickle.loads`` → ``json.loads``) the
    original module import frequently becomes dead; pruning it keeps the
    patched file lint-clean.  Only whole lines are removed, a ``from``
    import is kept if *any* of its names is still referenced, a plain
    multi-module import (``import os, pickle``) is kept if *any* of its
    bindings is still referenced, and two classes of line are never
    pruned at all: ``from __future__ import ...`` (a compiler directive,
    not a binding — removing it changes program semantics even when the
    name is unreferenced) and import-shaped text inside string literals.
    """
    spans = string_spans(source)
    lines = source.splitlines(keepends=True)
    kept = []
    offset = 0
    for index, line in enumerate(lines):
        line_start = offset
        offset += len(line)
        stripped = line.strip()
        if not stripped.startswith(("import ", "from ")) or line[:1] in (" ", "\t"):
            kept.append(line)
            continue
        if _offset_in_spans(line_start, spans):
            kept.append(line)  # inside a string literal — not an import
            continue
        try:
            entries = _parse_imports(stripped)
        except ValueError:
            kept.append(line)
            continue
        if any(module == "__future__" for _kind, module, _names in entries):
            kept.append(line)  # future imports are directives; always keep
            continue
        try:
            bindings = import_bindings(stripped)
        except ValueError:
            kept.append(line)
            continue
        rest = "".join(lines[:index]) + "".join(lines[index + 1 :])
        if any(_name_used(rest, binding) for binding in bindings):
            kept.append(line)
    return "".join(kept)
