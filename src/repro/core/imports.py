"""Import insertion for applied patches.

When a safe alternative uses an API from a module the vulnerable code did
not import, the patch carries the needed import statements; this manager
places them at the top of the file — after a module docstring and any
``from __future__`` imports, appended to the existing import block —
mirroring the VS Code ``Position`` API placement described in §II-B.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence, Tuple

_IMPORT_LINE_RE = re.compile(r"^(?:import\s+[\w.]+|from\s+[\w.]+\s+import\s+.+)", re.MULTILINE)
_FROM_IMPORT_RE = re.compile(r"^from\s+(?P<module>[\w.]+)\s+import\s+(?P<names>[^#\n]+)")
_PLAIN_IMPORT_RE = re.compile(r"^import\s+(?P<modules>[^#\n]+)")


class ImportManager:
    """Tracks the imports of a source file and inserts missing ones."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._existing = _collect_imports(source)

    def has_import(self, statement: str) -> bool:
        """True when ``statement`` (or a superset of it) is already present."""
        kind, module, names = _parse_import(statement)
        for existing_kind, existing_module, existing_names in self._existing:
            if existing_module != module:
                continue
            if kind == "import" and existing_kind == "import":
                return True
            if kind == "from" and existing_kind == "from" and names <= existing_names:
                return True
        return False

    def missing(self, statements: Iterable[str]) -> List[str]:
        """Deduplicated statements not yet imported, in request order."""
        out: List[str] = []
        for statement in statements:
            cleaned = statement.strip()
            if cleaned and cleaned not in out and not self.has_import(cleaned):
                out.append(cleaned)
        return out

    def insert(self, statements: Iterable[str]) -> str:
        """Return the source with the missing ``statements`` inserted."""
        to_add = self.missing(statements)
        if not to_add:
            return self._source
        offset = self.insertion_offset()
        block = "\n".join(to_add) + "\n"
        return self._source[:offset] + block + self._source[offset:]

    def insertion_offset(self) -> int:
        """Character offset where new imports belong.

        After the last top-level import when one exists; otherwise after
        the module docstring; otherwise offset 0.
        """
        last_import_end = -1
        for match in _IMPORT_LINE_RE.finditer(self._source):
            line_start = self._source.rfind("\n", 0, match.start()) + 1
            if self._source[line_start : match.start()].strip():
                continue  # indented (inside a function) — not top-level
            line_end = self._source.find("\n", match.end())
            last_import_end = len(self._source) if line_end == -1 else line_end + 1
        if last_import_end != -1:
            return last_import_end
        return self._docstring_end()

    def _docstring_end(self) -> int:
        stripped = self._source.lstrip()
        lead = len(self._source) - len(stripped)
        for quote in ('"""', "'''"):
            if stripped.startswith(quote):
                end = stripped.find(quote, len(quote))
                if end != -1:
                    close = lead + end + len(quote)
                    newline = self._source.find("\n", close)
                    return len(self._source) if newline == -1 else newline + 1
        return 0


def _collect_imports(source: str) -> List[Tuple[str, str, frozenset]]:
    collected: List[Tuple[str, str, frozenset]] = []
    for line in source.splitlines():
        cleaned = line.strip()
        if cleaned.startswith(("import ", "from ")):
            try:
                collected.append(_parse_import(cleaned))
            except ValueError:
                continue
    return collected


def _parse_import(statement: str) -> Tuple[str, str, frozenset]:
    """Parse into ``(kind, module, names)``; raises ValueError if neither."""
    from_match = _FROM_IMPORT_RE.match(statement)
    if from_match:
        names = frozenset(
            name.strip().split(" as ")[0].strip()
            for name in from_match.group("names").split(",")
            if name.strip()
        )
        return "from", from_match.group("module"), names
    plain_match = _PLAIN_IMPORT_RE.match(statement)
    if plain_match:
        modules = frozenset(
            module.strip().split(" as ")[0].strip()
            for module in plain_match.group("modules").split(",")
        )
        # one tuple per statement; multi-module imports keep the first
        module = sorted(modules)[0]
        return "import", module, frozenset()
    raise ValueError(f"not an import statement: {statement!r}")


def insert_imports(source: str, statements: Sequence[str]) -> str:
    """Convenience wrapper: insert ``statements`` into ``source``."""
    return ImportManager(source).insert(statements)


_NAME_RE_CACHE: dict = {}


def _name_used(source: str, name: str) -> bool:
    import re

    pattern = _NAME_RE_CACHE.get(name)
    if pattern is None:
        pattern = re.compile(rf"(?<![\w.]){re.escape(name)}(?![\w])")
        _NAME_RE_CACHE[name] = pattern
    return bool(pattern.search(source))


def prune_unused_imports(source: str) -> str:
    """Drop top-level import lines whose names the code no longer uses.

    After a safe substitution (e.g. ``pickle.loads`` → ``json.loads``) the
    original module import frequently becomes dead; pruning it keeps the
    patched file lint-clean.  Only whole lines are removed, and a ``from``
    import is kept if *any* of its names is still referenced.
    """
    lines = source.splitlines(keepends=True)
    kept = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped.startswith(("import ", "from ")) or line[:1] in (" ", "\t"):
            kept.append(line)
            continue
        try:
            kind, module, names = _parse_import(stripped)
        except ValueError:
            kept.append(line)
            continue
        rest = "".join(lines[:index]) + "".join(lines[index + 1 :])
        if kind == "import":
            if " as " in stripped:
                binding = stripped.split(" as ")[-1].strip()
            else:
                binding = stripped.split()[1].split(".")[0].split(",")[0]
            used = _name_used(rest, binding)
        else:
            used = any(_name_used(rest, name) for name in names)
        if used:
            kept.append(line)
    return "".join(kept)
