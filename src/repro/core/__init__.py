"""PatchitPy core: pattern-based detection and automated patching.

This package implements the paper's primary contribution (§II): a rule
engine whose 85 detection rules are regular-expression patterns enriched
with guard conditions, each optionally paired with a patch template that
rewrites the vulnerable pattern into a safe alternative and contributes any
imports the safe code needs.
"""

from repro.core.cache import ScanCache
from repro.core.engine import PatchitPy, PatchResult
from repro.core.imports import ImportManager
from repro.core.matching import match_rule, run_rules
from repro.core.patcher import apply_patches
from repro.core.project import ProjectReport, ProjectScanner, scan_paths
from repro.core.review import ReviewFinding, ReviewReport, ReviewedFile, review
from repro.core.sarif import (
    dumps_plain,
    dumps_review_sarif,
    dumps_sarif,
    review_to_sarif,
    to_plain_json,
    to_sarif,
)
from repro.core.rules import DetectionRule, PatchTemplate, RuleSet, default_ruleset
from repro.core.verify import PatchVerdict, PatchVerifier, finding_key

__all__ = [
    "DetectionRule",
    "ImportManager",
    "PatchResult",
    "PatchTemplate",
    "PatchVerdict",
    "PatchVerifier",
    "PatchitPy",
    "finding_key",
    "ProjectReport",
    "ProjectScanner",
    "ReviewFinding",
    "ReviewReport",
    "ReviewedFile",
    "review",
    "review_to_sarif",
    "dumps_review_sarif",
    "RuleSet",
    "ScanCache",
    "scan_paths",
    "apply_patches",
    "default_ruleset",
    "dumps_plain",
    "dumps_sarif",
    "match_rule",
    "run_rules",
    "to_plain_json",
    "to_sarif",
]
