"""Rule-catalog documentation generator.

Renders the rule catalog as a Markdown reference (the ``RULES.md`` shipped
with the repository), grouped by OWASP Top 10:2021 category, with each
rule's CWE, severity/confidence, patchability, and fix description —
the rule-index documentation real analyzers publish.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.rules import RuleSet, default_ruleset, extended_ruleset
from repro.core.rules.registry import EXTENDED_ONLY
from repro.cwe import OwaspCategory, get_cwe
from repro.exceptions import UnknownCWEError


def _cwe_label(cwe_id: str) -> str:
    try:
        return f"{cwe_id} ({get_cwe(cwe_id).name})"
    except UnknownCWEError:
        return cwe_id


def render_rules_markdown(rules: Optional[RuleSet] = None) -> str:
    """Render the catalog as Markdown."""
    if rules is None:
        rules = extended_ruleset()
    default_ids = {r.rule_id for r in default_ruleset()}

    by_category: Dict[OwaspCategory, List] = {}
    uncategorized: List = []
    for rule in rules:
        category = rule.owasp
        if category is None:
            uncategorized.append(rule)
        else:
            by_category.setdefault(category, []).append(rule)

    lines: List[str] = [
        "# PatchitPy rule catalog",
        "",
        f"{len(rules)} detection rules "
        f"({len(default_ids & {r.rule_id for r in rules})} in the paper's default set, "
        f"{len([r for r in rules if r.rule_id in EXTENDED_ONLY])} extended); "
        f"{len([r for r in rules if r.patchable])} carry an automated patch.",
        "",
        "Legend: ✔ = applies a safe substitution; ✘ = detection-only; "
        "rules marked *ext* are outside the default 85-rule set.",
        "",
    ]

    for category in OwaspCategory:
        members = by_category.get(category)
        if not members:
            continue
        lines.append(f"## {category.value}")
        lines.append("")
        lines.append("| Rule | CWE | Severity | Patch | Description |")
        lines.append("|---|---|---|---|---|")
        for rule in members:
            patch_cell = "✔ " + rule.patch.description if rule.patch else "✘"
            marker = " *ext*" if rule.rule_id in EXTENDED_ONLY else ""
            lines.append(
                f"| `{rule.rule_id}`{marker} | {_cwe_label(rule.cwe_id)} "
                f"| {rule.severity}/{rule.confidence} | {patch_cell} "
                f"| {rule.description} |"
            )
        lines.append("")

    if uncategorized:
        lines.append("## Uncategorized")
        for rule in uncategorized:
            lines.append(f"- `{rule.rule_id}` — {rule.description}")
        lines.append("")

    return "\n".join(lines)


def write_rules_markdown(path: str, rules: Optional[RuleSet] = None) -> str:
    """Write the catalog reference to ``path``; returns the text."""
    text = render_rules_markdown(rules)
    with open(path, "w") as handle:
        handle.write(text)
    return text
