"""Grouped-alternation compilation for candidate rule sets.

The candidate index (:mod:`repro.core.candidates`) cuts a clean file to a
handful of candidate rules, but each survivor still pays its own
``rule.pattern.finditer(source)`` pass plus prerequisite checks — on the
warm single-file path that per-candidate dispatch is most of what is
left.  This module merges a candidate set's patterns into one combined
regex per flags bucket so one C pass answers the question the per-rule
loop was asking rule by rule: *does any candidate match at all?*

Each bucket is compiled twice from the same member bodies.  The hot
path runs the **probe** form — ``(?:pat0)|(?:pat1)|...`` — because
CPython's sre engine only threads its literal-prefix/charset scan
optimizations through non-capturing constructs; wrapping the branches
in capturing groups instead makes the very same alternation scan an
order of magnitude slower.  The **named** form
(``(?P<pg0>pat0)|(?P<pg1>pat1)|...``) exists purely so a bucket hit can
be attributed back to a rule id for observability, and is only searched
on the (rare) hit path.

Soundness rests on exact alternation semantics: ``A|B`` has a match in a
text iff ``A`` has one or ``B`` has one.  So when a bucket's combined
regex finds **no** match, every member rule is proven matchless and is
cleared without running — no regex, no prerequisite search, no guard
machinery.  When the combined regex **does** find a match, member rules
fall back to ordinary per-rule dispatch: group alternation changes
backtracking order (group priority, overlapping alternatives), so the
grouped match itself is never turned into findings.  Clean-heavy
workloads take the cleared path almost always; finding-dense files pay
one extra scan and then run exactly the code they always ran.  Either
way the finding set is byte-identical to per-rule dispatch, which the
corpus-wide equivalence tests pin.

Patterns that cannot be embedded in an alternation at all stay on
per-rule dispatch permanently:

- *numeric* backreferences and conditionals (``\\1``, ``(?(1)...)``) —
  group renumbering inside the combined pattern would change their
  meaning.  Named groups and named refs (``(?P=name)``) merge fine:
  each member's names are alpha-renamed with a unique ``_pg<i>``
  suffix, so refs re-resolve and cross-member collisions vanish;
- global inline flags (``(?i)`` outside a scoped group) — they would
  leak onto every other alternative (and are positional errors on
  modern Pythons anyway);
- anything whose rename cannot be verified faithful (group tokens
  hiding in character classes, parser/text disagreements) — fallback,
  never fast-and-wrong.

Compiled groups are memoized per ``(catalog fingerprint, candidate
mask)`` in a bounded LRU (:class:`GroupedCache`): distinct sources
collapse onto a small number of masks, so a warm engine compiles each
combined regex once and reuses it for every later file.  The cache is
plain data apart from its lock, so a primed cache pickles with the rule
index into ``ProcessPoolExecutor`` workers and the scan daemon's warm
engine.

This module is deliberately stdlib-only (``scripts/check_hot_path_isolation.py``
enforces it): it sits on the untraced hot path and must never drag
observability — or any other repro machinery — into the match loop.
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # Python 3.11+: re._parser; older: sre_parse
    from re import _parser as _sre_parse  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - legacy fallback
    import sre_parse as _sre_parse  # type: ignore[no-redef]

__all__ = [
    "GroupedAlternation",
    "GroupedCache",
    "build_grouped",
    "catalog_fingerprint",
    "mergeable",
]

# Synthetic wrapper-group prefix.  Member group names are suffixed with
# "_pg<position>" to keep them unique inside the combined pattern, and
# the wrappers themselves are named "pg<position>"; member patterns
# whose own names could collide with either scheme are (conservatively)
# sent to per-rule fallback.
_GROUP_PREFIX = "pg"

_GROUPREF_OPS = frozenset(["GROUPREF", "GROUPREF_EXISTS"])

_GROUP_DEF = re.compile(r"\(\?P<([A-Za-z_]\w*)>")
_GROUP_REF = re.compile(r"\(\?P=([A-Za-z_]\w*)\)")
_COND_REF = re.compile(r"\(\?\(([A-Za-z_]\w*)\)")
_COND_NUMERIC = re.compile(r"\(\?\(\d")
# Global inline flags — "(?i)" with no colon.  At the start of a lone
# pattern they just fold into pattern.flags (so the parser-state check
# below cannot see them), but inside an alternation branch they are a
# positional error on modern Pythons and would poison the whole bucket
# at combine time; a textual match (possible false positives inside
# character classes included — fallback is always safe) rejects them.
_GLOBAL_FLAGS = re.compile(r"\(\?[aiLmsux-]+\)")


def _count_grouprefs(parsed) -> int:
    """Number of backreference-like nodes in the parse tree."""
    count = 0
    stack = [parsed]
    while stack:
        node = stack.pop()
        for op, argument in node:
            name = str(op)
            if name in _GROUPREF_OPS:
                count += 1
            elif name in ("MAX_REPEAT", "MIN_REPEAT", "POSSESSIVE_REPEAT"):
                stack.append(argument[2])
            elif name == "SUBPATTERN":
                stack.append(argument[-1])
            elif name == "BRANCH":
                stack.extend(argument[1])
            elif name in ("ASSERT", "ASSERT_NOT"):
                stack.append(argument[1])
            elif name == "ATOMIC_GROUP":
                stack.append(argument)
    return count


def _has_numeric_backref(text: str) -> bool:
    """True when the pattern text contains ``\\1``-style numeric refs.

    A character walk (not a regex) so escaped backslashes are tokenized
    correctly: ``\\\\1`` is a literal backslash followed by the digit 1,
    not a backreference.
    """
    if _COND_NUMERIC.search(text):
        return True
    i = 0
    length = len(text)
    while i < length - 1:
        if text[i] == "\\":
            if text[i + 1] in "123456789":
                return True
            i += 2
        else:
            i += 1
    return False


def mergeable(pattern: "re.Pattern[str]") -> bool:
    """True when ``pattern`` can be embedded in a combined alternation.

    Rejects patterns with *numeric* backreferences or conditionals
    (``\\1``, ``(?(1)...)`` — renumbering inside the combined pattern
    would change their meaning; named refs re-resolve by name and merge
    fine once renamed), global inline flags (they would leak onto the
    other alternatives), group names that clash with the synthetic
    naming scheme, and anything :mod:`re`'s own parser cannot model.
    """
    names = tuple(pattern.groupindex)
    if any(name.startswith(_GROUP_PREFIX) or "_pg" in name for name in names):
        return False
    try:
        parsed = _sre_parse.parse(pattern.pattern, pattern.flags & ~re.UNICODE)
    except Exception:
        return False
    # Inline global flags surface as extra bits on the parser state
    # beyond what the compile call passed; scoped (?i:...) groups do not.
    state_flags = getattr(getattr(parsed, "state", None), "flags", None)
    if state_flags is not None and state_flags & ~(pattern.flags | re.UNICODE):
        return False
    text = pattern.pattern
    if _GLOBAL_FLAGS.search(text):
        return False
    if _has_numeric_backref(text):
        return False
    refs = _count_grouprefs(parsed)
    if refs:
        # Every backreference node must correspond to a textual named
        # ref so the rename below is a faithful alpha-conversion; a
        # mismatch means a ref token hides somewhere the rename cannot
        # reach (or a fake one sits inside a character class).
        textual = len(_GROUP_REF.findall(text)) + len(_COND_REF.findall(text))
        if textual != refs:
            return False
    # Group definitions must all be textual (?P<name> tokens, exactly
    # one per registered name — no extras lurking in character classes.
    defs = _GROUP_DEF.findall(text)
    if len(defs) != len(names) or set(defs) != set(names):
        return False
    return True


def _rename_groups(text: str, names, suffix: str) -> Optional[str]:
    """Alpha-rename every named group (defs, refs, conditionals).

    Returns ``None`` when a referenced name is unknown — the caller
    sends such members to per-rule fallback instead of guessing.
    """
    known = set(names)
    bad: List[bool] = []

    def _rename_def(match: "re.Match[str]") -> str:
        return f"(?P<{match.group(1)}{suffix}>"

    def _rename_ref(match: "re.Match[str]") -> str:
        if match.group(1) not in known:
            bad.append(True)
            return match.group(0)
        return f"(?P={match.group(1)}{suffix})"

    def _rename_cond(match: "re.Match[str]") -> str:
        if match.group(1) not in known:
            bad.append(True)
            return match.group(0)
        return f"(?({match.group(1)}{suffix})"

    renamed = _GROUP_DEF.sub(_rename_def, text)
    renamed = _GROUP_REF.sub(_rename_ref, renamed)
    renamed = _COND_REF.sub(_rename_cond, renamed)
    if bad:
        return None
    return renamed


class _Bucket:
    """One combined alternation covering the member rules (shared flags).

    Two compilations of the same alternation: ``probe`` wraps members in
    *non-capturing* groups and answers the hot-path existence question —
    CPython's sre only threads its prefix/charset scan optimizations
    through non-capturing constructs, and the capturing variant scans
    an order of magnitude slower.  ``combined`` wraps the same members
    in named ``pg<i>`` groups and is consulted only on the (rare) hit
    path to attribute the first match back to its rule.
    """

    __slots__ = ("probe", "combined", "members", "group_to_rule")

    def __init__(
        self,
        probe: "re.Pattern[str]",
        combined: "re.Pattern[str]",
        members: Tuple[Tuple[int, object], ...],
        group_to_rule: Dict[str, str],
    ) -> None:
        self.probe = probe
        self.combined = combined
        self.members = members  # ((catalog_position, rule), ...)
        self.group_to_rule = group_to_rule  # synthetic name -> rule_id

    def __getstate__(self):
        return (self.probe, self.combined, self.members, self.group_to_rule)

    def __setstate__(self, state):
        self.probe, self.combined, self.members, self.group_to_rule = state

    def attribute(self, source: str) -> Optional[str]:
        """rule_id of the first combined match (observability only)."""
        match = self.combined.search(source)
        if match is None:  # pragma: no cover - probe already matched
            return None
        for group, rule_id in self.group_to_rule.items():
            if match.group(group) is not None:
                return rule_id
        return None  # pragma: no cover - some wrapper always matched


class GroupedAlternation:
    """Grouped dispatch plan for one candidate rule set.

    ``buckets`` hold the merged rules (one combined regex per distinct
    ``pattern.flags`` value); ``fallback`` holds the unmergeable rules,
    which always run per-rule.  :meth:`plan` evaluates the buckets
    against a source and returns exactly the rules per-rule dispatch
    must still execute, in catalog order.
    """

    __slots__ = ("buckets", "fallback", "_fallback_rules")

    def __init__(
        self,
        buckets: Tuple[_Bucket, ...],
        fallback: Tuple[Tuple[int, object], ...],
    ) -> None:
        self.buckets = buckets
        self.fallback = fallback
        self._fallback_rules = tuple(rule for _, rule in fallback)

    def __getstate__(self):
        return (self.buckets, self.fallback)

    def __setstate__(self, state):
        self.buckets, self.fallback = state
        self._fallback_rules = tuple(rule for _, rule in self.fallback)

    @property
    def grouped_rules(self) -> Tuple[object, ...]:
        """Every rule covered by a combined regex, in catalog order."""
        pairs = [pair for bucket in self.buckets for pair in bucket.members]
        pairs.sort(key=lambda pair: pair[0])
        return tuple(rule for _, rule in pairs)

    @property
    def fallback_rules(self) -> Tuple[object, ...]:
        """Rules that always take per-rule dispatch."""
        return self._fallback_rules

    def plan(self, source: str) -> Tuple[List[object], int, Optional[str]]:
        """``(dispatch, cleared, first_hit_rule_id)`` for one source.

        ``dispatch`` lists the rules per-rule matching must still run —
        the unmergeable fallbacks plus every member of a bucket whose
        combined regex found a match.  ``cleared`` counts rules proven
        matchless by a bucket with no match.  ``first_hit_rule_id``
        attributes the first combined hit to its rule (observability
        only; it plays no part in the finding set).
        """
        live: Optional[List[Tuple[int, object]]] = None
        cleared = 0
        hit_rule: Optional[str] = None
        for bucket in self.buckets:
            if bucket.probe.search(source) is None:
                cleared += len(bucket.members)
                continue
            if live is None:
                live = list(self.fallback)
            live.extend(bucket.members)
            if hit_rule is None:
                # The fast probe carries no capture groups; re-search
                # with the named variant (hit path only) to attribute.
                hit_rule = bucket.attribute(source)
        if live is None:
            return list(self._fallback_rules), cleared, None
        live.sort(key=lambda pair: pair[0])
        return [rule for _, rule in live], cleared, hit_rule

    def dispatch(self, source: str) -> List[object]:
        """The rules per-rule matching must run for ``source``."""
        return self.plan(source)[0]

    def describe(self) -> Dict[str, int]:
        """Size counters for benchmarks and reports."""
        return {
            "buckets": len(self.buckets),
            "grouped": sum(len(bucket.members) for bucket in self.buckets),
            "fallback": len(self.fallback),
        }


def build_grouped(rules: Sequence[object]) -> GroupedAlternation:
    """Compile a :class:`GroupedAlternation` for ``rules`` (catalog order).

    Rules are bucketed by ``pattern.flags`` (a combined regex can only
    carry one flag set); within a bucket each member is wrapped in a
    non-capturing group for the hot-path probe and in a synthetic named
    group for the attribution variant, and the member's own named
    groups are alpha-renamed with a per-member ``_pg<position>`` suffix — named
    backreferences re-resolve against the renamed definitions, and two
    members that both call a group ``q`` no longer collide.  A member
    whose rename cannot be verified faithful (or whose renamed pattern
    does not compile on its own) is pushed to per-rule fallback, as is
    anything :func:`mergeable` rejects.  A bucket whose combined
    pattern still fails to compile falls back whole — conservative,
    never fast-and-wrong.
    """
    by_flags: "OrderedDict[int, List[Tuple[int, object]]]" = OrderedDict()
    fallback: List[Tuple[int, object]] = []
    for position, rule in enumerate(rules):
        pattern = rule.pattern
        if mergeable(pattern):
            by_flags.setdefault(pattern.flags, []).append((position, rule))
        else:
            fallback.append((position, rule))
    buckets: List[_Bucket] = []
    for flags, members in by_flags.items():
        placed: List[Tuple[int, object]] = []
        parts: List[str] = []
        probe_parts: List[str] = []
        group_to_rule: Dict[str, str] = {}
        for position, rule in members:
            pattern = rule.pattern
            body = pattern.pattern
            if pattern.groupindex:
                renamed = _rename_groups(
                    body, pattern.groupindex, f"_pg{position}"
                )
                if renamed is None:
                    fallback.append((position, rule))
                    continue
                try:  # the rename must stand alone before it joins others
                    re.compile(renamed, flags)
                except re.error:
                    fallback.append((position, rule))
                    continue
                body = renamed
            group = f"{_GROUP_PREFIX}{position}"
            probe_parts.append(f"(?:{body})")
            parts.append(f"(?P<{group}>{body})")
            group_to_rule[group] = rule.rule_id
            placed.append((position, rule))
        if not placed:
            continue
        try:
            probe = re.compile("|".join(probe_parts), flags)
            combined = re.compile("|".join(parts), flags)
        except re.error:
            # Something about these patterns resists combination after
            # all; run them per-rule rather than guess.
            fallback.extend(placed)
            continue
        buckets.append(_Bucket(probe, combined, tuple(placed), group_to_rule))
    fallback.sort(key=lambda pair: pair[0])
    return GroupedAlternation(tuple(buckets), tuple(fallback))


def catalog_fingerprint(rules: Iterable[object]) -> str:
    """Stable digest of the rules' identity, order, and patterns.

    Cheaper than :meth:`repro.core.rules.base.RuleSet.fingerprint` (no
    guard/patch descriptors — grouping only depends on the patterns) but
    collision-safe for cache keying: two catalogs share a fingerprint
    only when their grouped compilation would be identical.
    """
    digest = hashlib.sha256()
    for rule in rules:
        digest.update(rule.rule_id.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(rule.pattern.pattern.encode("utf-8"))
        digest.update(str(rule.pattern.flags).encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()


class GroupedCache:
    """Bounded LRU of :class:`GroupedAlternation` per ``(fingerprint, mask)``.

    Candidate masks repeat heavily across real sources (most clean files
    select one of a handful of candidate sets), so a small LRU turns
    grouped compilation into a one-time cost per distinct mask.  The
    cache is thread-safe (the scan daemon serves detects from a thread
    pool) and pickle-safe minus the lock, which is recreated on
    unpickling — a primed cache ships to worker processes and keeps its
    compiled entries.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, int], GroupedAlternation]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __getstate__(self):
        with self._lock:
            return {
                "maxsize": self.maxsize,
                "entries": list(self._entries.items()),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __setstate__(self, state):
        self.maxsize = state["maxsize"]
        self._entries = OrderedDict(state["entries"])
        self._lock = threading.Lock()
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]

    def get_or_build(
        self, fingerprint: str, mask: int, rules: Sequence[object]
    ) -> GroupedAlternation:
        """The grouped plan for one candidate set, compiled at most once."""
        key = (fingerprint, mask)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        # Compile outside the lock: regex compilation can be slow and
        # concurrent builders at worst duplicate work, never corrupt.
        built = build_grouped(rules)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self.misses += 1
            self._entries[key] = built
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return built

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
