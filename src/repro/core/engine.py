"""The PatchitPy engine: the paper's two-phase detect → patch workflow.

Phase 1 (:meth:`PatchitPy.detect`) runs the 85 pattern rules over the raw
source.  Phase 2 (:meth:`PatchitPy.patch`) renders each triggered rule's
safe alternative, substitutes it at the matched span, and inserts any
imports the patch requires — the end-to-end flow of Fig. 1.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.matching import run_rules
from repro.core.patcher import apply_patches
from repro.core.rules import RuleSet, default_ruleset
from repro.core.verify import PatchVerdict, PatchVerifier, finding_key
from repro.exceptions import ReproError
from repro.observability.collector import NULL_METRICS, ScanMetrics, clock
from repro.observability.provenance import (
    PatchProvenance,
    provenance_from_match,
    render_explain,
)
from repro.observability.trace import NULL_TRACE, TraceRecorder
from repro.types import AnalysisReport, Finding, Patch, Span


@dataclass
class PatchResult:
    """Outcome of a patching pass."""

    original: str
    patched: str
    applied: List[Patch] = field(default_factory=list)
    skipped: List[Patch] = field(default_factory=list)
    unpatchable: List[Finding] = field(default_factory=list)
    # One verdict per patch the verifier examined; empty when
    # verification was disabled or nothing was applied.  Reverted patches
    # keep their verdict here (with ``reverted=True``) even though they
    # no longer appear in ``applied``.
    verdicts: List[PatchVerdict] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """True when patching modified the source."""
        return self.patched != self.original

    @property
    def repair_attempted(self) -> bool:
        """True when at least one patch was applied."""
        return bool(self.applied)

    @property
    def unverified(self) -> List[PatchVerdict]:
        """Verdicts of patches that failed verification (and were reverted)."""
        return [v for v in self.verdicts if not v.ok]

    @property
    def verified(self) -> bool:
        """True when every examined patch passed verification."""
        return all(v.ok for v in self.verdicts)


class PatchitPy:
    """Pattern-based vulnerability detector and patcher for Python code.

    Parameters
    ----------
    rules:
        The rule set to execute; defaults to the paper's 85-rule set.
    max_passes:
        Patching repeats detect→patch until a fixed point (or this limit),
        because one applied patch can reveal or shift later matches.
    metrics:
        A :class:`~repro.observability.ScanMetrics` collector that every
        detect/patch call reports into.  Defaults to the shared no-op
        collector, which keeps instrumentation off the hot path entirely.
        Per-call ``metrics=`` arguments on :meth:`detect`/:meth:`patch`/
        :meth:`analyze` override it (the project scanner uses that to give
        each file its own snapshot without mutating shared state).
    trace:
        A :class:`~repro.observability.TraceRecorder` that detect/patch
        calls emit structured span events into.  Defaults to the shared
        no-op recorder (:data:`~repro.observability.NULL_TRACE`); with an
        enabled recorder every finding additionally carries a
        :class:`~repro.observability.Provenance` record.  Per-call
        ``trace=`` arguments override it, mirroring ``metrics``.
    use_index:
        When on (the default) and the rule set exposes a candidate index
        (:class:`RuleSet` does), each detect consults one multi-literal
        pass instead of per-rule literal checks.  ``use_index=False`` is
        the ablation seam: identical findings, naive per-rule path.
    use_grouped:
        When on (the default, and only effective with ``use_index``),
        each candidate set's patterns additionally run as one grouped
        alternation (:mod:`repro.core.groupcompile`): a combined regex
        with no match clears its member rules outright, and only on a
        hit do the members take per-rule dispatch.  Identical findings
        either way — ``use_grouped=False`` is the ablation seam pinning
        the grouped tier independently of the index tier.
    verify:
        When on (the default) every :meth:`patch` call runs the Verifier
        stage (:mod:`repro.core.verify`) on its output and re-patches
        with failing patches banned, up to ``max_verify_attempts`` times;
        patches that cannot be verified are reverted instead of shipped.
        ``verify=False`` restores the pre-1.5 apply-and-hope behaviour.
    max_verify_attempts:
        Bound on the verify → ban → re-patch loop.  Each failed attempt
        bans at least one patch by finding identity, so the loop always
        terminates; when the bound is hit (or banning cannot make
        progress) the whole patch set is reverted and the original text
        is returned unchanged.
    """

    def __init__(
        self,
        rules: Optional[RuleSet] = None,
        max_passes: int = 3,
        prune_imports: bool = True,
        metrics: Optional[ScanMetrics] = None,
        trace: Optional[TraceRecorder] = None,
        use_index: bool = True,
        verify: bool = True,
        max_verify_attempts: int = 3,
        use_grouped: bool = True,
    ) -> None:
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        if max_verify_attempts < 1:
            raise ValueError("max_verify_attempts must be >= 1")
        self.rules = rules if rules is not None else default_ruleset()
        self.max_passes = max_passes
        self.prune_imports = prune_imports
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.trace = trace if trace is not None else NULL_TRACE
        self.use_index = use_index
        self.use_grouped = use_grouped
        self.verify = verify
        self.max_verify_attempts = max_verify_attempts

    def _metrics(self, override: Optional[ScanMetrics]) -> ScanMetrics:
        return override if override is not None else self.metrics

    def _trace(self, override: Optional[TraceRecorder]) -> TraceRecorder:
        return override if override is not None else self.trace

    def _detect_with(
        self, source: str, m: ScanMetrics, t: TraceRecorder = NULL_TRACE
    ) -> List[Finding]:
        """Internal detect that omits disabled observability arguments.

        Subclasses that predate observability override ``detect(source)``
        with no metrics/trace parameters; never handing them the extra
        arguments on the disabled path keeps those engines working
        unchanged.
        """
        if t.enabled:
            return self.detect(source, metrics=m if m.enabled else None, trace=t)
        if m.enabled:
            return self.detect(source, m)
        return self.detect(source)

    # ------------------------------------------------------------- detect

    def detect(
        self,
        source: str,
        metrics: Optional[ScanMetrics] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> List[Finding]:
        """Phase 1: all findings for ``source``."""
        m = self._metrics(metrics)
        t = self._trace(trace)
        if not m.enabled and not t.enabled:
            return run_rules(
                self.rules,
                source,
                use_index=self.use_index,
                use_grouped=self.use_grouped,
            )
        start = clock()
        findings = run_rules(
            self.rules,
            source,
            m if m.enabled else None,
            t,
            use_index=self.use_index,
            use_grouped=self.use_grouped,
        )
        if m.enabled:
            elapsed = clock() - start
            m.count("detect_calls")
            m.count("findings", len(findings))
            m.add_time("detect_time_s", elapsed)
            m.observe("phase_seconds/detect", elapsed)
        return findings

    def is_vulnerable(self, source: str) -> bool:
        """Sample-level verdict used by the evaluation (§III-B)."""
        return bool(self.detect(source))

    def warmup(self) -> int:
        """Prime the engine so the first real request pays no lazy costs.

        Builds the candidate index (when in use) and runs probe detects,
        so a long-lived process (the scan daemon) pays the index
        compilation and module-level matcher setup once at startup — the
        built index then serves every request.  The probes also prime
        the grouped-alternation cache for the masks clean code most
        often selects (comment-only and plain-import sources), so the
        compiled plans pickle into worker processes along with the
        index.  Returns the number of rules primed.
        """
        if self.use_index:
            builder = getattr(self.rules, "candidate_index", None)
            if builder is not None:
                builder()
        self.detect("# patchitpy warmup probe\n")
        self.detect(
            "import os\n"
            "\n"
            "\n"
            "def handler(event):\n"
            "    return os.path.join(event['root'], event['name'])\n"
        )
        return len(self.rules)

    # -------------------------------------------------------------- patch

    def render_patches(
        self,
        source: str,
        findings: Sequence[Finding],
        trace: Optional[TraceRecorder] = None,
    ) -> List[Patch]:
        """Render the safe alternative for each patchable finding.

        Findings carrying a provenance record get its ``patch`` section
        updated in place with the actually-rendered replacement (which may
        differ from the detection-time preview when the span re-anchors);
        an enabled ``trace`` emits one ``patch-render`` event per patch.
        """
        t = self._trace(trace)
        patches: List[Patch] = []
        for finding in findings:
            rule = self.rules.get(finding.rule_id)
            if rule.patch is None:
                continue
            match = rule.pattern.match(source, finding.span.start)
            if match is None or match.end() != finding.span.end:
                match = rule.pattern.search(source, finding.span.start)
            if match is None:
                continue
            span = finding.span
            if match.start() != span.start or match.end() != span.end:
                # The fallback search landed on a different (possibly later)
                # match than the finding's recorded span — rendering from
                # that match but splicing at the stale span would corrupt
                # the file.  Re-anchor the patch to the text the
                # replacement was actually rendered from.
                span = Span(match.start(), match.end())
            replacement, imports = rule.patch.render(match)
            if finding.provenance is not None:
                finding.provenance.patch = PatchProvenance(
                    description=rule.patch.description,
                    replacement=replacement,
                    imports=tuple(imports),
                )
            if t.enabled:
                t.event(
                    "patch-render",
                    rule.rule_id,
                    start=span.start,
                    end=span.end,
                    replacement=replacement,
                    imports=list(imports),
                )
            patches.append(
                Patch(
                    rule_id=rule.rule_id,
                    cwe_id=rule.cwe_id,
                    span=span,
                    replacement=replacement,
                    new_imports=imports,
                    description=rule.patch.description,
                    trigger_key=finding_key(source, finding.with_span(span)),
                )
            )
        return patches

    def _patch_passes(
        self,
        source: str,
        initial: Sequence[Finding],
        m: ScanMetrics,
        t: TraceRecorder,
        banned: frozenset = frozenset(),
    ):
        """One full fixpoint patching run, skipping ``banned`` findings.

        ``banned`` holds finding-identity keys (see
        :func:`repro.core.verify.finding_key`) of patches the verifier
        rejected on an earlier attempt; their patches are dropped at
        render time so a re-run converges without them.  Returns
        ``(patched, applied, skipped, passes, final_findings)``.
        """
        current = source
        all_applied: List[Patch] = []
        last_skipped: List[Patch] = []
        passes = 0
        pass_findings = list(initial)
        for _ in range(self.max_passes):
            patches = self.render_patches(current, pass_findings, t)
            if banned:
                patches = [p for p in patches if p.trigger_key not in banned]
            if not patches:
                break
            passes += 1
            outcome = apply_patches(current, patches)
            all_applied.extend(outcome.applied)
            last_skipped = outcome.skipped
            if not outcome.changed:
                break
            current = outcome.source
            pass_findings = self._detect_with(current, m, t)
            if not pass_findings:
                break
        if all_applied and self.prune_imports:
            from repro.core.imports import prune_unused_imports

            current = prune_unused_imports(current)
        final_findings = self._detect_with(current, m, t)
        return current, all_applied, last_skipped, passes, final_findings

    def patch(
        self,
        source: str,
        findings: Optional[Sequence[Finding]] = None,
        metrics: Optional[ScanMetrics] = None,
        trace: Optional[TraceRecorder] = None,
        verify: Optional[bool] = None,
        exclude: frozenset = frozenset(),
        verify_baseline: Optional[Sequence[Finding]] = None,
    ) -> PatchResult:
        """Phase 2: substitute safe alternatives for detected patterns.

        Runs repeated passes until no patchable finding remains or
        ``max_passes`` is reached; overlapping patches in one pass are
        retried on the next pass against the updated text.

        With verification on (the engine default, overridable per call
        via ``verify=``), the Verifier stage then re-scans the output:
        patches whose triggering finding survived, that introduced a new
        finding, broke the syntax, or collide with an existing binding
        are banned by finding identity and patching re-runs without them,
        up to ``max_verify_attempts`` times.  If the loop cannot converge
        on a fully verified patch set, *everything* is reverted — the
        original text ships unchanged rather than an unproven edit.  All
        examined patches keep their verdict in ``PatchResult.verdicts``.

        ``exclude`` holds finding-identity keys (see
        :func:`repro.core.verify.finding_key`) that must never be patched
        — the review workflow passes the pre-existing identities here so
        only what a change introduced is rewritten.  ``verify_baseline``
        overrides the verifier's identity baseline of ``source`` (it
        defaults to the findings being patched); pass the *full* finding
        set of ``source`` when patching a subset, so a deliberately
        unpatched finding is not mistaken for a regression.
        """
        m = self._metrics(metrics)
        t = self._trace(trace)
        do_verify = self.verify if verify is None else verify
        start = clock() if m.enabled else 0.0
        initial = (
            list(findings) if findings is not None else self._detect_with(source, m, t)
        )
        banned: set = set(exclude)
        reverted: List[PatchVerdict] = []
        verdicts: List[PatchVerdict] = []
        attempts = 0
        verifier = (
            PatchVerifier(lambda s: self._detect_with(s, NULL_METRICS))
            if do_verify
            else None
        )
        while True:
            current, all_applied, last_skipped, passes, final_findings = (
                self._patch_passes(source, initial, m, t, frozenset(banned))
            )
            if verifier is None or not all_applied:
                verdicts = list(reverted)
                break
            attempts += 1
            identity_baseline = (
                verify_baseline if verify_baseline is not None else initial
            )
            verify_started = clock() if m.enabled else 0.0
            judged = verifier.verify(
                source, identity_baseline, current, all_applied, final_findings
            )
            if m.enabled:
                verify_elapsed = clock() - verify_started
                m.add_time("verify_time_s", verify_elapsed)
                m.observe("phase_seconds/verify", verify_elapsed)
            failing = [v for v in judged if not v.ok]
            if not failing:
                verdicts = list(reverted) + judged
                break
            new_bans = {v.trigger_key for v in failing if v.trigger_key} - banned
            if new_bans and attempts < self.max_verify_attempts:
                for v in failing:
                    v.reverted = True
                reverted.extend(failing)
                banned |= new_bans
                continue
            # Cannot converge (ban made no progress, or attempts
            # exhausted): revert the whole patch set.  Shipping the
            # original unchanged is the only edit we can still prove
            # safe — failing patches cannot be excised surgically once
            # later spans have shifted around them.
            for v in judged:
                v.reverted = True
            verdicts = list(reverted) + judged
            current = source
            all_applied = []
            last_skipped = []
            final_findings = list(initial)
            break
        unpatchable = [f for f in final_findings if not f.fixable]
        self._record_verdicts(source, initial, verdicts, attempts, m, t)
        if m.enabled:
            elapsed = clock() - start
            m.count("patch_calls")
            m.count("patch_passes", passes)
            m.count("patches_applied", len(all_applied))
            m.count("patches_skipped", len(last_skipped))
            m.count("findings_unpatchable", len(unpatchable))
            m.add_time("patch_time_s", elapsed)
            m.observe("phase_seconds/patch", elapsed)
        return PatchResult(
            original=source,
            patched=current,
            applied=all_applied,
            skipped=last_skipped,
            unpatchable=unpatchable,
            verdicts=verdicts,
        )

    def _record_verdicts(
        self,
        source: str,
        initial: Sequence[Finding],
        verdicts: Sequence[PatchVerdict],
        attempts: int,
        m: ScanMetrics,
        t: TraceRecorder,
    ) -> None:
        """Propagate verdicts into metrics, trace events, and provenance."""
        if not verdicts:
            return
        if m.enabled:
            m.count("patch_verify_attempts", attempts)
            for verdict in verdicts:
                m.count("patch_verdict_" + verdict.status.replace("-", "_"))
                if verdict.reverted:
                    m.count("patches_reverted")
                elif verdict.ok:
                    m.count("patches_verified")
                # verdict-aware rule health: a template whose patches
                # chronically fail verification surfaces per rule, with
                # one concrete failing ruling as the exemplar.
                m.health_for(verdict.rule_id).note_verdict(
                    verdict.status, verdict.detail, ok=verdict.ok
                )
        if t.enabled:
            for verdict in verdicts:
                t.event(
                    "patch-verify",
                    verdict.rule_id,
                    status=verdict.status,
                    attempts=attempts,
                    reverted=verdict.reverted,
                    detail=verdict.detail,
                )
        by_key = {v.trigger_key: v for v in verdicts if v.trigger_key}
        for finding in initial:
            provenance = finding.provenance
            if provenance is None or getattr(provenance, "patch", None) is None:
                continue
            verdict = by_key.get(finding_key(source, finding))
            if verdict is not None:
                provenance.patch.verdict = verdict.status
                provenance.patch.verdict_detail = verdict.detail

    # ------------------------------------------------------------ analyze

    def _ensure_provenance(self, source: str, findings: List[Finding]) -> List[Finding]:
        """Attach provenance records to findings that lack one.

        Reconstructs the audit trail post hoc by re-matching each
        finding's rule at its recorded span — O(findings), not O(rules),
        so :meth:`analyze` affords it without slowing the detect hot
        path.  Findings whose rule is unknown or no longer matches (e.g.
        hand-built ones) pass through untouched.
        """
        enriched: List[Finding] = []
        for finding in findings:
            if finding.provenance is not None:
                enriched.append(finding)
                continue
            try:
                rule = self.rules.get(finding.rule_id)
            except ReproError:
                enriched.append(finding)
                continue
            match = rule.pattern.match(source, finding.span.start)
            if match is None or match.end() != finding.span.end:
                match = rule.pattern.search(source, finding.span.start)
            if match is None:
                enriched.append(finding)
                continue
            enriched.append(
                finding.with_provenance(provenance_from_match(rule, source, match))
            )
        return enriched

    def explain(self, source: str, finding: Finding) -> str:
        """Human-readable "why it fired" block for one finding.

        Findings without an attached provenance record (cache hits,
        untraced scans) get one reconstructed from ``source`` first.
        """
        if finding.provenance is None:
            finding = self._ensure_provenance(source, [finding])[0]
        return render_explain(finding)

    def analyze(
        self,
        source: str,
        *,
        patch: bool = True,
        metrics: Optional[ScanMetrics] = None,
        trace: Optional[TraceRecorder] = None,
        **legacy: Optional[bool],
    ) -> AnalysisReport:
        """Full detect(+patch) pipeline returning a consolidated report.

        ``patch=False`` stops after detection.  Every finding in the
        report carries a provenance record — recorded inline when tracing
        is enabled, reconstructed post hoc otherwise.  ``patch=`` is the
        only supported switch; the pre-1.1 spelling ``apply_patches_flag=``
        is accepted solely to warn (``DeprecationWarning``, removal in
        2.0) before being folded into ``patch``.
        """
        if legacy:
            patch = self._fold_legacy_patch_kwarg(legacy, patch)
        m = self._metrics(metrics)
        t = self._trace(trace)
        findings = self._ensure_provenance(source, self._detect_with(source, m, t))
        report = AnalysisReport(tool="patchitpy", source=source, findings=findings)
        if patch and findings:
            result = self.patch(source, findings, m, t)
            report.patches = result.applied
            report.patched_source = result.patched
            report.verdicts = result.verdicts
        return report

    @staticmethod
    def _fold_legacy_patch_kwarg(legacy: dict, patch: bool) -> bool:
        """Deprecation shim: map ``apply_patches_flag=`` onto ``patch=``."""
        unknown = set(legacy) - {"apply_patches_flag"}
        if unknown:
            name = sorted(unknown)[0]
            raise TypeError(
                f"analyze() got an unexpected keyword argument {name!r}"
            )
        value = legacy["apply_patches_flag"]
        if value is None:
            return patch
        warnings.warn(
            "PatchitPy.analyze(apply_patches_flag=...) is deprecated; "
            "use analyze(patch=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return bool(value)
