"""TextEdit / WorkspaceEdit — the editing API the extension drives.

The paper's extension "leverages VS Code's TextEdit API, using the
``replace()`` method of the editBuilder object to modify code" and places
new imports via the Position API.  :class:`EditBuilder` reproduces that
contract: edits are queued against a document snapshot and applied
atomically, back-to-front, rejecting overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import DocumentError
from repro.ide.document import Position, Range, TextDocument


@dataclass(frozen=True)
class TextEdit:
    """One pending replacement on a document snapshot."""

    range: Range
    new_text: str

    @staticmethod
    def replace(range_: Range, new_text: str) -> "TextEdit":
        """Queue a replacement edit."""
        return TextEdit(range_, new_text)

    @staticmethod
    def insert(position: Position, new_text: str) -> "TextEdit":
        """Queue an insertion edit."""
        return TextEdit(Range(position, position), new_text)

    @staticmethod
    def delete(range_: Range) -> "TextEdit":
        """Queue a deletion edit."""
        return TextEdit(range_, "")


class EditBuilder:
    """Queues edits against one document; mirrors VS Code's editBuilder."""

    def __init__(self, document: TextDocument) -> None:
        self._document = document
        self._edits: List[TextEdit] = []

    def replace(self, range_: Range, new_text: str) -> None:
        self._edits.append(TextEdit.replace(range_, new_text))

    def insert(self, position: Position, new_text: str) -> None:
        self._edits.append(TextEdit.insert(position, new_text))

    def delete(self, range_: Range) -> None:
        self._edits.append(TextEdit.delete(range_))

    @property
    def pending(self) -> List[TextEdit]:
        """The queued edits (copy)."""
        return list(self._edits)

    def apply(self) -> int:
        """Apply all queued edits atomically; returns the edit count.

        Edits are validated against the snapshot and applied in reverse
        document order so earlier offsets remain stable.  Overlapping
        edits raise :class:`DocumentError` and nothing is applied.
        """
        keyed = []
        for edit in self._edits:
            start = self._document.offset_at(edit.range.start)
            end = self._document.offset_at(edit.range.end)
            keyed.append((start, end, edit))
        keyed.sort(key=lambda item: (item[0], item[1]))
        for (_, prev_end, _), (next_start, _, _) in zip(keyed, keyed[1:]):
            if next_start < prev_end:
                raise DocumentError("overlapping edits in one edit builder batch")
        for start, end, edit in reversed(keyed):
            start_pos = self._document.position_at(start)
            end_pos = self._document.position_at(end)
            self._document.replace(Range(start_pos, end_pos), edit.new_text)
        applied = len(self._edits)
        self._edits.clear()
        return applied


class WorkspaceEdit:
    """Edits across multiple documents, applied per-document atomically."""

    def __init__(self) -> None:
        self._per_document: dict = {}

    def replace(self, document: TextDocument, range_: Range, new_text: str) -> None:
        self._builder(document).replace(range_, new_text)

    def insert(self, document: TextDocument, position: Position, new_text: str) -> None:
        self._builder(document).insert(position, new_text)

    def _builder(self, document: TextDocument) -> EditBuilder:
        if document.uri not in self._per_document:
            self._per_document[document.uri] = EditBuilder(document)
        return self._per_document[document.uri]

    def apply(self) -> int:
        return sum(builder.apply() for builder in self._per_document.values())
