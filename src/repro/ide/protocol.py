"""Language-server-style protocol surface for other editors.

The paper's conclusion names extending beyond VS Code as future work; the
portable way to do that is the Language Server Protocol.  This module
exposes the engine through LSP-shaped payloads over the in-memory
document model:

- ``textDocument/didOpen``/``didChange`` → diagnostics published per
  document (one diagnostic per finding, LSP severity mapping, CWE code);
- ``textDocument/codeAction`` → one quick-fix action per patchable
  finding in the requested range, carrying a workspace edit (span
  replacement + import insertion) the client applies verbatim.

Payloads are plain dicts in LSP 3.17 shapes, so a thin stdio transport
can serve any LSP-capable editor.

The language server normally embeds an in-process engine; pointing it at
a running scan daemon instead is one line —
``LanguageServer(engine=ServerTransport(ServerClient(port=8753)))`` —
because :class:`ServerTransport` exposes the two engine methods the
server calls (``detect`` and ``render_patches``) over the daemon's
``/v1/analyze`` endpoint.  Many editor windows then share one warm
engine instead of each paying rule-compilation at startup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core import PatchitPy
from repro.core.imports import ImportManager
from repro.ide.document import TextDocument
from repro.types import Finding, Patch, Severity, Span

# LSP DiagnosticSeverity: 1=Error, 2=Warning, 3=Information, 4=Hint
_LSP_SEVERITY = {
    Severity.CRITICAL: 1,
    Severity.HIGH: 1,
    Severity.MEDIUM: 2,
    Severity.LOW: 3,
}


def _position(document: TextDocument, offset: int) -> Dict[str, int]:
    position = document.position_at(offset)
    return {"line": position.line, "character": position.character}


def _range(document: TextDocument, start: int, end: int) -> Dict[str, object]:
    return {"start": _position(document, start), "end": _position(document, end)}


@dataclass
class LanguageServer:
    """A minimal PatchitPy language server over in-memory documents."""

    engine: PatchitPy = field(default_factory=PatchitPy)
    _documents: Dict[str, TextDocument] = field(default_factory=dict)
    _findings: Dict[str, List[Finding]] = field(default_factory=dict)

    # ------------------------------------------------------ lifecycle

    def initialize(self) -> Dict[str, object]:
        """The ``initialize`` response advertising server capabilities."""
        return {
            "capabilities": {
                "textDocumentSync": 1,  # full sync
                "codeActionProvider": {"codeActionKinds": ["quickfix"]},
                "diagnosticProvider": {
                    "interFileDependencies": False,
                    "workspaceDiagnostics": False,
                },
            },
            "serverInfo": {"name": "patchitpy-ls", "version": "1.0.0"},
        }

    # ------------------------------------------------- document sync

    def did_open(self, uri: str, text: str) -> Dict[str, object]:
        """Handle ``textDocument/didOpen``; returns publishDiagnostics."""
        self._documents[uri] = TextDocument(text, uri=uri)
        return self._publish(uri)

    def did_change(self, uri: str, text: str) -> Dict[str, object]:
        """Handle full-sync ``textDocument/didChange``."""
        if uri not in self._documents:
            return self.did_open(uri, text)
        document = self._documents[uri]
        document.replace(document.full_range(), text)
        return self._publish(uri)

    def did_close(self, uri: str) -> None:
        """Handle textDocument/didClose: drop server state."""
        self._documents.pop(uri, None)
        self._findings.pop(uri, None)

    def document_text(self, uri: str) -> str:
        """Current text of an open document."""
        return self._documents[uri].get_text()

    # ----------------------------------------------------- diagnostics

    def _publish(self, uri: str) -> Dict[str, object]:
        document = self._documents[uri]
        source = document.get_text()
        findings = self.engine.detect(source)
        self._findings[uri] = findings
        diagnostics = [
            {
                "range": _range(document, f.span.start, f.span.end),
                "severity": _LSP_SEVERITY[f.severity],
                "code": f.cwe_id,
                "source": "patchitpy",
                "message": f.message,
                "data": {"ruleId": f.rule_id, "fixable": f.fixable},
            }
            for f in findings
        ]
        return {"uri": uri, "diagnostics": diagnostics}

    # ----------------------------------------------------- code actions

    def code_actions(
        self,
        uri: str,
        start_offset: Optional[int] = None,
        end_offset: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Handle ``textDocument/codeAction`` for an offset range."""
        document = self._documents[uri]
        source = document.get_text()
        findings = self._findings.get(uri)
        if findings is None:
            findings = self.engine.detect(source)
            self._findings[uri] = findings

        if start_offset is None:
            start_offset = 0
        if end_offset is None:
            end_offset = len(source)

        actions: List[Dict[str, object]] = []
        for finding in findings:
            if finding.span.end < start_offset or finding.span.start > end_offset:
                continue
            patches = self.engine.render_patches(source, [finding])
            if not patches:
                continue
            patch = patches[0]
            edits = [
                {
                    "range": _range(document, patch.span.start, patch.span.end),
                    "newText": patch.replacement,
                }
            ]
            manager = ImportManager(source)
            missing = manager.missing(patch.new_imports)
            if missing:
                insert_at = manager.insertion_offset()
                edits.append(
                    {
                        "range": _range(document, insert_at, insert_at),
                        "newText": "\n".join(missing) + "\n",
                    }
                )
            actions.append(
                {
                    "title": f"PatchitPy: {patch.description or 'apply safe alternative'}",
                    "kind": "quickfix",
                    "diagnostics": [{"code": finding.cwe_id, "message": finding.message}],
                    "edit": {"changes": {uri: edits}},
                    "data": {"ruleId": finding.rule_id},
                }
            )
        return actions

    # ------------------------------------------------------- edit apply

    def apply_workspace_edit(self, edit: Dict[str, object]) -> Dict[str, object]:
        """Apply a ``WorkspaceEdit`` (as a client would) to the documents."""
        for uri, edits in edit.get("changes", {}).items():
            document = self._documents[uri]
            keyed = []
            for change in edits:
                start = document.offset_at(_to_position(document, change["range"]["start"]))
                end = document.offset_at(_to_position(document, change["range"]["end"]))
                keyed.append((start, end, change["newText"]))
            for start, end, new_text in sorted(keyed, reverse=True):
                start_pos = document.position_at(start)
                end_pos = document.position_at(end)
                from repro.ide.document import Range

                document.replace(Range(start_pos, end_pos), new_text)
        # refresh diagnostics for changed documents
        refreshed = {}
        for uri in edit.get("changes", {}):
            refreshed[uri] = self._publish(uri)
        return {"applied": True, "diagnostics": refreshed}


def _to_position(document: TextDocument, payload: Dict[str, int]):
    from repro.ide.document import Position

    return Position(payload["line"], payload["character"])


class ServerTransport:
    """An engine-shaped adapter that analyzes on a running scan daemon.

    Implements exactly the :class:`~repro.core.PatchitPy` surface
    :class:`LanguageServer` touches — :meth:`detect` and
    :meth:`render_patches` — by calling the daemon's ``/v1/analyze``
    endpoint and rebuilding the wire payloads into the ordinary
    :class:`~repro.types.Finding`/:class:`~repro.types.Patch`
    dataclasses.  ``client`` is any object with the
    :class:`~repro.server.client.ServerClient` ``analyze()`` signature.
    """

    def __init__(self, client) -> None:
        self.client = client

    def detect(self, source: str) -> List[Finding]:
        payload = self.client.analyze(source, patch=False)
        return [Finding.from_dict(raw) for raw in payload.get("findings", [])]

    def render_patches(
        self, source: str, findings: Sequence[Finding]
    ) -> List[Patch]:
        payload = self.client.analyze(source, patch=True)
        rendered = [
            Patch(
                rule_id=raw["rule_id"],
                cwe_id=raw["cwe_id"],
                span=Span(raw["span"][0], raw["span"][1]),
                replacement=raw["replacement"],
                new_imports=tuple(raw.get("imports", ())),
                description=raw.get("description", ""),
            )
            for raw in payload.get("patches", [])
        ]
        # The daemon rendered patches for every finding in the source;
        # keep only those belonging to the findings asked about (matched
        # by rule at the finding's span — the daemon may re-anchor spans,
        # so fall back to the rule alone when no span-exact patch exists).
        wanted: List[Patch] = []
        for finding in findings:
            exact = [
                p
                for p in rendered
                if p.rule_id == finding.rule_id and p.span.start == finding.span.start
            ]
            by_rule = exact or [p for p in rendered if p.rule_id == finding.rule_id]
            for patch in by_rule[:1]:
                if patch not in wanted:
                    wanted.append(patch)
        return wanted
