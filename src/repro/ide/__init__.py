"""IDE integration layer — a faithful model of the VS Code extension (§II-B).

The paper ships PatchitPy as a VS Code extension: the user selects a code
block (e.g. a Copilot completion), the extension analyzes the selection,
pop-ups report findings and offer fixes, and accepted patches are applied
through the ``TextEdit``/``Position`` APIs.  This package reproduces those
semantics on an in-memory editor document so the workflow is scriptable
and testable.
"""

from repro.ide.document import Position, Range, Selection, TextDocument
from repro.ide.edits import EditBuilder, TextEdit, WorkspaceEdit
from repro.ide.extension import ExtensionSession, PatchitPyExtension, Popup
from repro.ide.protocol import LanguageServer, ServerTransport

__all__ = [
    "EditBuilder",
    "LanguageServer",
    "ServerTransport",
    "ExtensionSession",
    "PatchitPyExtension",
    "Popup",
    "Position",
    "Range",
    "Selection",
    "TextDocument",
    "TextEdit",
    "WorkspaceEdit",
]
