"""The PatchitPy extension workflow over the editor model (§II-B).

The user right-clicks a selection (or the whole file) and runs the
"PatchitPy: Assess selection" command.  The extension analyzes the
selected text, raises a pop-up per finding with the fix suggestion, and —
if the user accepts — applies the patches through the edit API, placing
any new imports at the top of the file via the Position API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core import PatchitPy
from repro.core.imports import ImportManager
from repro.core.report import format_finding
from repro.ide.document import Range, TextDocument
from repro.ide.edits import EditBuilder
from repro.types import Finding

# A popup callback answers True for "Yes, patch it".
PopupHandler = Callable[["Popup"], bool]


@dataclass(frozen=True)
class Popup:
    """One notification shown to the user."""

    title: str
    body: str
    actions: tuple = ("Yes", "No")


@dataclass
class ExtensionSession:
    """Record of one command invocation: popups raised, edits applied."""

    findings: List[Finding] = field(default_factory=list)
    popups: List[Popup] = field(default_factory=list)
    accepted: List[Finding] = field(default_factory=list)
    applied_edit_count: int = 0
    imports_added: List[str] = field(default_factory=list)


class PatchitPyExtension:
    """Scriptable equivalent of the VS Code extension's activate() command.

    ``popup_handler`` decides each "patch this finding?" question; the
    default accepts everything (the behaviour measured in the paper's
    patching evaluation).
    """

    COMMAND = "patchitpy.assessSelection"

    def __init__(
        self,
        engine: Optional[PatchitPy] = None,
        popup_handler: Optional[PopupHandler] = None,
    ) -> None:
        self.engine = engine if engine is not None else PatchitPy()
        self.popup_handler = popup_handler or (lambda popup: True)

    def assess_selection(
        self,
        document: TextDocument,
        selection: Optional[Range] = None,
    ) -> ExtensionSession:
        """Run the full detect → popup → patch workflow on ``selection``.

        With no selection the entire document is assessed, matching the
        extension's "launch on the whole program" mode.
        """
        session = ExtensionSession()
        target_range = selection if selection is not None else document.full_range()
        base_offset = document.offset_at(target_range.start)
        selected_text = document.get_text(target_range)

        session.findings = self.engine.detect(selected_text)
        if not session.findings:
            session.popups.append(
                Popup(title="PatchitPy", body="No vulnerable patterns detected.", actions=("OK",))
            )
            return session

        for finding in session.findings:
            rule = self.engine.rules.get(finding.rule_id)
            suggestion = rule.patch.description if rule.patch else "no automated fix available"
            popup = Popup(
                title=f"PatchitPy: {finding.cwe_id}",
                body=f"{format_finding(finding, selected_text)}\nSuggested fix: {suggestion}",
            )
            session.popups.append(popup)
            if rule.patch is not None and self.popup_handler(popup):
                session.accepted.append(finding)

        if session.accepted:
            self._apply_accepted(document, selected_text, base_offset, session)
        return session

    # ------------------------------------------------------------------

    def _apply_accepted(
        self,
        document: TextDocument,
        selected_text: str,
        base_offset: int,
        session: ExtensionSession,
    ) -> None:
        patches = self.engine.render_patches(selected_text, session.accepted)
        builder = EditBuilder(document)
        seen_spans: List = []
        import_statements: List[str] = []
        for patch in patches:
            if any(patch.span.overlaps(span) for span in seen_spans):
                continue
            seen_spans.append(patch.span)
            start = document.position_at(base_offset + patch.span.start)
            end = document.position_at(base_offset + patch.span.end)
            builder.replace(Range(start, end), patch.replacement)
            for statement in patch.new_imports:
                if statement not in import_statements:
                    import_statements.append(statement)

        manager = ImportManager(document.get_text())
        missing = manager.missing(import_statements)
        if missing:
            insert_position = document.position_at(manager.insertion_offset())
            builder.insert(insert_position, "\n".join(missing) + "\n")
            session.imports_added = missing

        session.applied_edit_count = builder.apply()
