"""Editor document model: positions, ranges, selections, documents.

Positions follow the VS Code convention — zero-based ``line`` and
``character`` — and a :class:`TextDocument` converts between positions and
flat character offsets, which is how the extension maps engine findings
(character spans) onto editor ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import DocumentError


@dataclass(frozen=True, order=True)
class Position:
    """Zero-based (line, character) coordinate."""

    line: int
    character: int

    def __post_init__(self) -> None:
        if self.line < 0 or self.character < 0:
            raise DocumentError(f"negative position: {self}")


@dataclass(frozen=True)
class Range:
    """Half-open range between two positions (``start`` inclusive)."""

    start: Position
    end: Position

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise DocumentError(f"range end before start: {self}")

    @property
    def is_empty(self) -> bool:
        """True when start equals end."""
        return self.start == self.end

    def contains(self, position: Position) -> bool:
        """True when the position lies inside the range."""
        return self.start <= position <= self.end


class Selection(Range):
    """A user selection — a range with an active end (cursor side)."""


class TextDocument:
    """An in-memory editor buffer with position/offset conversion."""

    def __init__(self, text: str = "", uri: str = "untitled:Untitled-1") -> None:
        self._text = text
        self.uri = uri
        self.version = 1
        self._line_starts = _compute_line_starts(text)

    # ------------------------------------------------------------ content

    def get_text(self, range_: Range = None) -> str:
        """Document text, optionally restricted to a range."""
        if range_ is None:
            return self._text
        return self._text[self.offset_at(range_.start) : self.offset_at(range_.end)]

    @property
    def line_count(self) -> int:
        """Number of lines (a trailing newline adds an empty one)."""
        return len(self._line_starts)

    def line_text(self, line: int) -> str:
        """Text of one zero-based line, without its newline."""
        self._check_line(line)
        start = self._line_starts[line]
        end = (
            self._line_starts[line + 1] - 1
            if line + 1 < len(self._line_starts)
            else len(self._text)
        )
        return self._text[start:end]

    # ------------------------------------------------------- conversions

    def offset_at(self, position: Position) -> int:
        """Flat character offset of a position."""
        self._check_line(position.line)
        line_start = self._line_starts[position.line]
        line_length = len(self.line_text(position.line))
        if position.character > line_length:
            raise DocumentError(
                f"character {position.character} beyond line {position.line} "
                f"(length {line_length})"
            )
        return line_start + position.character

    def position_at(self, offset: int) -> Position:
        """Position of a flat character offset."""
        if offset < 0 or offset > len(self._text):
            raise DocumentError(f"offset {offset} outside document")
        low, high = 0, len(self._line_starts) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._line_starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        return Position(low, offset - self._line_starts[low])

    def full_range(self) -> Range:
        """Range covering the whole document."""
        return Range(Position(0, 0), self.position_at(len(self._text)))

    def range_of_lines(self, first_line: int, last_line: int) -> Range:
        """Inclusive line range as a :class:`Range` (selection helper)."""
        self._check_line(first_line)
        self._check_line(last_line)
        if last_line < first_line:
            raise DocumentError("last_line before first_line")
        end_character = len(self.line_text(last_line))
        return Range(Position(first_line, 0), Position(last_line, end_character))

    # ------------------------------------------------------------ editing

    def replace(self, range_: Range, new_text: str) -> None:
        """Low-level replace; the edit API layers on top of this."""
        start = self.offset_at(range_.start)
        end = self.offset_at(range_.end)
        self._text = self._text[:start] + new_text + self._text[end:]
        self._line_starts = _compute_line_starts(self._text)
        self.version += 1

    # ------------------------------------------------------------ helpers

    def _check_line(self, line: int) -> None:
        if not (0 <= line < len(self._line_starts)):
            raise DocumentError(
                f"line {line} outside document of {len(self._line_starts)} lines"
            )


def _compute_line_starts(text: str) -> List[int]:
    starts = [0]
    for index, char in enumerate(text):
        if char == "\n":
            starts.append(index + 1)
    return starts
