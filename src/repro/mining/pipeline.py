"""End-to-end mining: run Fig. 2 over the whole seed corpus.

``mine_ruleset`` executes the complete pipeline — group the seed pairs by
OWASP category, select similar pairs, extract standardized LCS patterns,
diff them, synthesize rules — and returns a deduplicated, executable
:class:`RuleSet`.  The E11 experiment compares this *mined* rule set's
detection performance against the hand-curated 85-rule catalog, measuring
how much of the tool the paper's mining methodology can recover
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.rules.base import DetectionRule, RuleSet
from repro.cwe import OwaspCategory
from repro.exceptions import MiningError
from repro.mining.pair_miner import mine_category
from repro.mining.rule_synthesizer import synthesize_rules
from repro.mining.seedcorpus import pairs_by_category


@dataclass
class MiningReport:
    """What the end-to-end mining run produced."""

    pairs_considered: int = 0
    patterns_extracted: int = 0
    rules_synthesized: int = 0
    rules_kept: int = 0
    per_category: Dict[str, int] = field(default_factory=dict)


# Generic fragments that synthesize into overly broad patterns (pure
# punctuation/keyword anchors); dropped during curation.
_MIN_DISTINCT_WORD_TOKENS = 2


def _is_specific(rule: DetectionRule) -> bool:
    """Keep only rules anchored on at least two concrete word tokens."""
    import re

    words = re.findall(r"[A-Za-z_]{3,}", rule.pattern.pattern.replace("var", ""))
    meaningful = [w for w in words if w not in ("P", "s")]
    return len(set(meaningful)) >= _MIN_DISTINCT_WORD_TOKENS


def mine_ruleset(
    pairs_per_category: int = 6,
    report: Optional[MiningReport] = None,
) -> RuleSet:
    """Mine a rule set from the seed corpus (the full Fig. 2 pipeline)."""
    if report is None:
        report = MiningReport()
    grouped = pairs_by_category()
    mined: List[DetectionRule] = []
    seen_patterns: Set[str] = set()

    for category in OwaspCategory:
        kept_for_category = 0
        for candidate, pattern in mine_category(
            category, grouped, limit=pairs_per_category
        ):
            report.pairs_considered += 1
            report.patterns_extracted += 1
            shared = candidate.shared_cwes
            cwe_id = shared[0] if shared else candidate.first.cwe_ids[0]
            prefix = f"MINED-{category.code}-{report.patterns_extracted:03d}"
            try:
                rules = synthesize_rules(pattern, cwe_id, rule_prefix=prefix)
            except MiningError:
                continue
            for rule in rules:
                report.rules_synthesized += 1
                if rule.pattern.pattern in seen_patterns:
                    continue
                if not _is_specific(rule):
                    continue
                seen_patterns.add(rule.pattern.pattern)
                mined.append(rule)
                kept_for_category += 1
        report.per_category[category.code] = kept_for_category

    report.rules_kept = len(mined)
    return RuleSet(mined)


@dataclass(frozen=True)
class MinedVsCuratedResult:
    """E11 outcome: mined rule set vs the curated catalog."""

    mined_rules: int
    curated_rules: int
    mined_precision: float
    mined_recall: float
    curated_precision: float
    curated_recall: float
    recall_recovered: float  # mined recall / curated recall


def evaluate_mined_ruleset(
    seed: int = 2025,
    pairs_per_category: int = 6,
) -> Tuple[MinedVsCuratedResult, MiningReport]:
    """Compare mined vs curated rule sets on the generated corpus."""
    from repro.core import PatchitPy
    from repro.core.rules import default_ruleset
    from repro.generators import generate_all_models
    from repro.metrics.confusion import from_verdicts

    report = MiningReport()
    mined = mine_ruleset(pairs_per_category=pairs_per_category, report=report)
    curated = default_ruleset()
    samples = [s for items in generate_all_models(seed).values() for s in items]

    matrices = {}
    for label, rules in (("mined", mined), ("curated", curated)):
        engine = PatchitPy(rules=rules)
        matrices[label] = from_verdicts(
            (s.is_vulnerable, engine.is_vulnerable(s.source)) for s in samples
        )

    result = MinedVsCuratedResult(
        mined_rules=len(mined),
        curated_rules=len(curated),
        mined_precision=matrices["mined"].precision,
        mined_recall=matrices["mined"].recall,
        curated_precision=matrices["curated"].precision,
        curated_recall=matrices["curated"].recall,
        recall_recovered=(
            matrices["mined"].recall / matrices["curated"].recall
            if matrices["curated"].recall
            else 0.0
        ),
    )
    return result, report
