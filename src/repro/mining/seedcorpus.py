"""Seed corpus for rule mining (the paper's 240-sample collection).

The original authors collected 240 vulnerable Python samples (SecurityEval
+ Copilot CWE Scenarios) and hand-wrote safe counterparts.  The
reproduction derives an equivalent collection from the scenario catalog:
every vulnerable variant is rendered in a couple of neutral styles and
paired with its scenario's safe implementation, grouped by OWASP category
exactly as the mining workflow of Fig. 2 expects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.corpus.scenarios import SCENARIOS
from repro.cwe import OwaspCategory, owasp_category_for
from repro.generators.style import CLAUDE_STYLE, COPILOT_STYLE, render_variant

_SEED_STYLES = (COPILOT_STYLE, CLAUDE_STYLE)


@dataclass(frozen=True)
class SeedPair:
    """One (vulnerable, safe) implementation pair with its labels."""

    pair_id: str
    scenario_key: str
    cwe_ids: Tuple[str, ...]
    owasp: Optional[OwaspCategory]
    vulnerable_code: str
    safe_code: str


def build_seed_corpus(target_size: int = 240) -> List[SeedPair]:
    """Render the seed collection deterministically (≈``target_size`` pairs)."""
    pairs: List[SeedPair] = []
    for scenario in SCENARIOS.all():
        safe_variant = scenario.safe[0]
        for variant in scenario.vulnerable:
            category = owasp_category_for(variant.cwe_ids[0]) if variant.cwe_ids else None
            for style_index, style in enumerate(_SEED_STYLES):
                rng = random.Random(f"seed-corpus:{scenario.key}:{variant.key}:{style.name}")
                vulnerable_code, _ = render_variant(variant, style, rng)
                safe_rng = random.Random(f"seed-corpus:{scenario.key}:safe:{style.name}")
                safe_code, _ = render_variant(safe_variant, style, safe_rng)
                pairs.append(
                    SeedPair(
                        pair_id=f"{scenario.key}/{variant.key}/{style.name}",
                        scenario_key=scenario.key,
                        cwe_ids=variant.cwe_ids,
                        owasp=category,
                        vulnerable_code=vulnerable_code,
                        safe_code=safe_code,
                    )
                )
                if len(pairs) >= target_size:
                    return pairs
    return pairs


def pairs_by_category(pairs: Optional[List[SeedPair]] = None) -> Dict[OwaspCategory, List[SeedPair]]:
    """Group seed pairs by OWASP Top 10 category (Fig. 2, first step)."""
    if pairs is None:
        pairs = build_seed_corpus()
    grouped: Dict[OwaspCategory, List[SeedPair]] = {}
    for pair in pairs:
        if pair.owasp is not None:
            grouped.setdefault(pair.owasp, []).append(pair)
    return grouped
