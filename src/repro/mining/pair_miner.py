"""Pair selection: choose sample pairs per OWASP category (Fig. 2).

Within each category, candidate pairs are ranked by the token similarity
of their standardized vulnerable snippets; only pairs whose similarity
clears a threshold produce a meaningful common pattern (a pair of
unrelated samples yields an LCS too generic to become a rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cwe import OwaspCategory
from repro.exceptions import MiningError
from repro.mining.pattern_extractor import MinedPattern, extract_pattern, standardized_tokens
from repro.mining.seedcorpus import SeedPair, pairs_by_category
from repro.textutils.lcs import similarity_ratio


@dataclass(frozen=True)
class CandidatePair:
    """Two seed pairs from the same OWASP category."""

    first: SeedPair
    second: SeedPair
    similarity: float

    @property
    def shared_cwes(self) -> Tuple[str, ...]:
        """CWE labels common to both seed pairs."""
        return tuple(sorted(set(self.first.cwe_ids) & set(self.second.cwe_ids)))


def candidate_pairs(
    category: OwaspCategory,
    grouped: Optional[Dict[OwaspCategory, List[SeedPair]]] = None,
    min_similarity: float = 0.45,
) -> List[CandidatePair]:
    """All sufficiently similar sample pairs of one category, best first."""
    if grouped is None:
        grouped = pairs_by_category()
    members = grouped.get(category, [])
    token_cache = {pair.pair_id: standardized_tokens(pair.vulnerable_code) for pair in members}
    out: List[CandidatePair] = []
    for i, first in enumerate(members):
        for second in members[i + 1 :]:
            if first.pair_id.split("/")[0:2] == second.pair_id.split("/")[0:2]:
                continue  # same variant rendered twice — trivially similar
            similarity = similarity_ratio(
                token_cache[first.pair_id], token_cache[second.pair_id]
            )
            if similarity >= min_similarity:
                out.append(CandidatePair(first, second, similarity))
    out.sort(key=lambda c: -c.similarity)
    return out


def mine_category(
    category: OwaspCategory,
    grouped: Optional[Dict[OwaspCategory, List[SeedPair]]] = None,
    limit: Optional[int] = None,
) -> Iterator[Tuple[CandidatePair, MinedPattern]]:
    """Yield mined patterns for one OWASP category, best pairs first."""
    count = 0
    for candidate in candidate_pairs(category, grouped):
        try:
            pattern = extract_pattern(
                candidate.first.vulnerable_code,
                candidate.second.vulnerable_code,
                candidate.first.safe_code,
                candidate.second.safe_code,
            )
        except MiningError:
            continue
        yield candidate, pattern
        count += 1
        if limit is not None and count >= limit:
            return
