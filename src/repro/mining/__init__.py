"""Rule mining: the Fig. 2 pipeline from sample pairs to rules."""

from repro.mining.pair_miner import CandidatePair, candidate_pairs, mine_category
from repro.mining.pipeline import (
    MinedVsCuratedResult,
    MiningReport,
    evaluate_mined_ruleset,
    mine_ruleset,
)
from repro.mining.pattern_extractor import MinedPattern, extract_pattern, standardized_tokens
from repro.mining.rule_synthesizer import (
    synthesize_fragment_rule,
    synthesize_rules,
    tokens_to_regex,
    tokens_to_replacement,
)
from repro.mining.seedcorpus import SeedPair, build_seed_corpus, pairs_by_category

__all__ = [
    "CandidatePair",
    "MinedVsCuratedResult",
    "MiningReport",
    "evaluate_mined_ruleset",
    "mine_ruleset",
    "MinedPattern",
    "SeedPair",
    "build_seed_corpus",
    "candidate_pairs",
    "extract_pattern",
    "mine_category",
    "pairs_by_category",
    "standardized_tokens",
    "synthesize_fragment_rule",
    "synthesize_rules",
    "tokens_to_regex",
    "tokens_to_replacement",
]
