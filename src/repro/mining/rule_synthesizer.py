"""Rule synthesis: mined patterns → executable detection/patching rules.

The last step of Fig. 2 ("Improvement of reg. expressions"): each diff
fragment of a mined pattern becomes a rule whose regular expression is the
fragment's vulnerable tokens with their anchor context, and whose patch
template substitutes the safe tokens.  ``var#`` placeholders from the
standardization become named capture groups so the patch preserves the
concrete identifiers of the code being fixed.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set, Tuple

from repro.core.rules.base import DetectionRule, PatchTemplate
from repro.exceptions import MiningError
from repro.mining.pattern_extractor import MinedPattern
from repro.textutils.diffing import DiffFragment
from repro.types import Confidence, Severity

_VAR_TOKEN_RE = re.compile(r"^var(\d+)$")
_WORDISH_RE = re.compile(r"^[\w'\"]")
# what a captured placeholder may match in real code
_VAR_CAPTURE = r"[\w.\[\]]+|f?['\"][^'\"\n]*['\"]"


def tokens_to_regex(tokens: Tuple[str, ...]) -> str:
    """Compile standardized tokens into a whitespace-flexible regex."""
    parts: List[str] = []
    seen_vars: Set[str] = set()
    previous: Optional[str] = None
    for token in tokens:
        if previous is not None:
            if _WORDISH_RE.match(token) and _WORDISH_RE.match(previous) and previous[-1].isalnum() and token[0].isalnum():
                parts.append(r"\s+")
            else:
                parts.append(r"\s*")
        var_match = _VAR_TOKEN_RE.match(token)
        if var_match:
            name = f"var{var_match.group(1)}"
            if name in seen_vars:
                parts.append(f"(?P={name})")
            else:
                seen_vars.add(name)
                parts.append(f"(?P<{name}>{_VAR_CAPTURE})")
        else:
            parts.append(re.escape(token))
        previous = token
    return "".join(parts)


def tokens_to_replacement(tokens: Tuple[str, ...]) -> str:
    """Render safe tokens as a patch template with ``\\g<varN>`` backrefs."""
    rendered: List[str] = []
    previous: Optional[str] = None
    for token in tokens:
        text = token
        var_match = _VAR_TOKEN_RE.match(token)
        if var_match:
            text = f"\\g<var{var_match.group(1)}>"
        if previous is not None and _needs_space(previous, token):
            rendered.append(" ")
        rendered.append(text)
        previous = token
    return "".join(rendered)


_NO_SPACE_BEFORE = {")", "]", "}", ",", ":", ";", ".", "(", "="}
_NO_SPACE_AFTER = {"(", "[", "{", ".", "="}


def _needs_space(previous: str, current: str) -> bool:
    if current in _NO_SPACE_BEFORE and current != "(":
        return False
    if current == "(":
        return False
    if previous in _NO_SPACE_AFTER:
        return False
    return True


def synthesize_rules(
    pattern: MinedPattern,
    cwe_id: str,
    rule_prefix: str = "MINED",
    min_fragment_context: int = 2,
) -> List[DetectionRule]:
    """Create one rule per safe-addition fragment of ``pattern``."""
    rules: List[DetectionRule] = []
    for index, fragment in enumerate(pattern.fragments):
        if not fragment.safe_tokens:
            continue
        rule = synthesize_fragment_rule(
            fragment,
            cwe_id=cwe_id,
            rule_id=f"{rule_prefix}-{index:02d}",
            min_context=min_fragment_context,
        )
        if rule is not None:
            rules.append(rule)
    if not rules:
        raise MiningError("pattern yielded no synthesizable fragments")
    return rules


def synthesize_fragment_rule(
    fragment: DiffFragment,
    cwe_id: str,
    rule_id: str,
    min_context: int = 2,
) -> Optional[DetectionRule]:
    """Build a rule for one fragment; ``None`` if context is too thin."""
    before = fragment.anchor_before[-min_context:] if min_context else ()
    after = fragment.anchor_after[:min_context] if min_context else ()
    pattern_tokens = tuple(before) + fragment.vulnerable_tokens + tuple(after)
    if len(pattern_tokens) < 2:
        return None
    try:
        compiled = re.compile(tokens_to_regex(pattern_tokens))
    except re.error:
        return None
    replacement_tokens = tuple(before) + fragment.safe_tokens + tuple(after)
    replacement = tokens_to_replacement(replacement_tokens)
    # every backref in the replacement must be captured by the pattern
    captured = set(compiled.groupindex)
    for reference in re.findall(r"\\g<(var\d+)>", replacement):
        if reference not in captured:
            return None
    return DetectionRule(
        rule_id=rule_id,
        cwe_id=cwe_id,
        description=f"Mined pattern rule for {cwe_id}",
        pattern=compiled,
        severity=Severity.MEDIUM,
        confidence=Confidence.MEDIUM,
        patch=PatchTemplate(
            replacement=replacement,
            description="Apply the mined safe alternative",
        ),
    )
