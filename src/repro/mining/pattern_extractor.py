"""Pattern extraction: the LCS + SequenceMatcher core of Fig. 2.

Given a pair of vulnerable samples ``(v_i, v_j)`` and their safe
counterparts ``(s_i, s_j)``:

1. standardize all four snippets with the named entity tagger;
2. compute the token-level LCS of the standardized vulnerable pair
   (``LCS_v``) and of the safe pair (``LCS_s``) — the bold text of
   Table I;
3. diff ``(LCS_v, LCS_s)`` with ``difflib.SequenceMatcher`` to isolate the
   *additional* safe fragments — the blue text of Table I that becomes the
   patch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import MiningError
from repro.standardize import standardize
from repro.textutils.diffing import DiffFragment, extract_additions
from repro.textutils.lcs import lcs_tokens, similarity_ratio
from repro.textutils.tokenizer import detokenize, tokenize


@dataclass(frozen=True)
class MinedPattern:
    """Outcome of mining one (vulnerable, safe) pair of pairs."""

    lcs_vulnerable: Tuple[str, ...]
    lcs_safe: Tuple[str, ...]
    fragments: Tuple[DiffFragment, ...]
    vulnerable_similarity: float
    safe_similarity: float

    @property
    def lcs_vulnerable_text(self) -> str:
        """LCS_v rendered back to readable text."""
        return detokenize(_as_tokens(self.lcs_vulnerable))

    @property
    def lcs_safe_text(self) -> str:
        """LCS_s rendered back to readable text."""
        return detokenize(_as_tokens(self.lcs_safe))

    @property
    def has_additions(self) -> bool:
        """True when at least one fragment adds safe tokens."""
        return any(f.safe_tokens for f in self.fragments)


def _token_texts(source: str) -> List[str]:
    return [t.text for t in tokenize(source)]


def _as_tokens(texts: Tuple[str, ...]):
    from repro.textutils.tokenizer import Token, TokenKind

    return [Token(TokenKind.NAME, text, 0, 0) for text in texts]


def standardized_tokens(source: str) -> List[str]:
    """Standardize a snippet and return its token texts."""
    return _token_texts(standardize(source).text)


def extract_pattern(
    vulnerable_a: str,
    vulnerable_b: str,
    safe_a: str,
    safe_b: str,
    min_lcs_tokens: int = 4,
) -> MinedPattern:
    """Run the full standardize → LCS → diff pipeline on one pair of pairs."""
    tokens_va = standardized_tokens(vulnerable_a)
    tokens_vb = standardized_tokens(vulnerable_b)
    tokens_sa = standardized_tokens(safe_a)
    tokens_sb = standardized_tokens(safe_b)

    lcs_v = lcs_tokens(tokens_va, tokens_vb)
    lcs_s = lcs_tokens(tokens_sa, tokens_sb)
    if len(lcs_v) < min_lcs_tokens or len(lcs_s) < min_lcs_tokens:
        raise MiningError(
            f"common pattern too short (|LCS_v|={len(lcs_v)}, |LCS_s|={len(lcs_s)})"
        )

    fragments = tuple(extract_additions(list(lcs_v), list(lcs_s)))
    return MinedPattern(
        lcs_vulnerable=tuple(lcs_v),
        lcs_safe=tuple(lcs_s),
        fragments=fragments,
        vulnerable_similarity=similarity_ratio(tokens_va, tokens_vb),
        safe_similarity=similarity_ratio(tokens_sa, tokens_sb),
    )
