"""``patchitpy fleet`` — a sharded scan fleet behind one front door.

One :class:`PatchitPyServer` saturates at its worker pool; the paper's
throughput story past that point is *horizontal*: N daemon processes,
each with its own warm engine, behind a router that makes the fleet look
like a single server.  This module is that router plus the supervisor
that owns the worker processes.

Design in one paragraph: :class:`FleetRouter` binds the public port and
speaks the exact daemon wire protocol (same endpoints, same JSON shapes,
same 429/503/504 semantics), so every existing client — ``ServerClient``,
the CI smoke scripts, an IDE plugin — points at the fleet unchanged.  It
spawns ``workers`` copies of ``python -m repro.server.daemon --port 0``,
learns each one's port from a port file, health-checks them on an
interval, and restarts the dead with capped exponential backoff.
Requests are routed by **content digest** over a consistent-hash ring
(:class:`~repro.server.router.HashRing`): the same snippet bytes always
land on the same worker, so each worker's in-memory caches stay hot and
disjoint.  All workers additionally share one content-addressed result
cache directory (:class:`~repro.core.cache.ScanCache` in shared mode),
so when the ring re-routes — a worker died mid-batch — the surviving
worker serves the bytes its dead sibling already scanned as a warm hit
instead of re-analyzing them.  Per-tenant token buckets
(:class:`~repro.server.router.TenantQuotas`) shed abusive load at the
front door with ``429`` + ``Retry-After`` before any worker spends a
queue slot on it.

Observability is fleet-wide: ``/metrics`` folds every worker's
:class:`~repro.observability.collector.ScanMetrics` snapshot into one
exposition with the collector's exact associative merge (histogram
quantiles match what a single process would have reported), plus
router-side ``fleet_*`` families and labeled per-tenant / per-worker
series; ``/statusz`` renders the worker table and routing health as one
HTML page (:mod:`repro.server.fleetz`).

Operational story, tunables, and failure drills: ``docs/fleet.md`` and
``docs/deployment.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import http.client
import json
import math
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.cache import hash_source
from repro.observability.collector import ScanMetrics, clock
from repro.observability.exporters import to_prometheus
from repro.observability.histogram import RollingWindow
from repro.server.client import ServerClient
from repro.server.fleetz import render_fleet_statusz
from repro.server.http11 import (
    ChunkedResponse,
    HttpError,
    Request,
    Response,
    read_request,
    write_chunked_response,
    write_response,
)
from repro.server.router import HashRing, TenantQuotas, tenant_label

__all__ = [
    "BackgroundFleet",
    "FleetConfig",
    "FleetRouter",
    "FleetWorker",
    "build_fleet_parser",
    "config_from_args",
    "main",
]

#: Transport-level failures that mean "this worker did not answer" — the
#: router marks the worker down and retries the request clockwise.
_PROXY_ERRORS = (http.client.HTTPException, ConnectionError, OSError)

#: Keep-alive connections pooled per worker; beyond this, extras close.
_POOL_LIMIT = 8

#: Caller-supplied trace ids the fleet echoes and forwards (same shape
#: the daemon accepts).
_TRACE_ID_OK = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


@dataclass
class FleetConfig:
    """Tunables for one :class:`FleetRouter` and its worker processes.

    ``workers`` is the shard count; each worker gets its own ``--jobs``
    analysis pool and ``--queue-depth`` backpressure limit, so total
    fleet capacity is ``workers x jobs`` warm engines.  ``tenant_rate``
    / ``tenant_burst`` shape the per-tenant token buckets (requests per
    second, burst allowance); ``max_tenants`` caps metric-label
    cardinality.  ``run_dir`` holds the port files, worker logs, and
    (unless ``shared_cache_dir`` points elsewhere) the shared cache
    tier; left unset, the router creates and owns a temp directory.
    """

    host: str = "127.0.0.1"
    port: int = 8750
    workers: int = 2
    jobs: int = 1
    queue_depth: int = 64
    shared_cache_dir: Optional[str] = None
    run_dir: Optional[str] = None
    replicas: int = 64
    tenant_rate: float = 50.0
    tenant_burst: float = 200.0
    max_tenants: int = 256
    health_interval_s: float = 0.5
    restart_backoff_s: float = 0.5
    restart_backoff_max_s: float = 30.0
    #: After this long continuously healthy, a worker's backoff resets
    #: to base — a crash loop backs off, a one-off crash stays cheap.
    backoff_reset_s: float = 30.0
    worker_start_timeout_s: float = 60.0
    proxy_timeout_s: float = 60.0
    max_body_bytes: int = 2 * 1024 * 1024
    io_timeout_s: float = 30.0
    idle_timeout_s: float = 120.0
    drain_timeout_s: float = 10.0
    access_log: bool = False
    extended: bool = False
    window_interval_s: float = 5.0
    window_slots: int = 60


class FleetWorker:
    """One supervised daemon process plus its connection pool.

    The router owns the state machine (``starting`` → ``up`` → ``down``
    → ``starting`` …); this class owns the process mechanics: spawning
    ``python -m repro.server.daemon --port 0 --port-file …`` with stdout
    and stderr captured to a per-worker log, learning the bound port
    from the port file, probing ``/healthz``, and pooling keep-alive
    :class:`ServerClient` connections.  Pooled clients are tagged with
    the spawn generation so a connection to a dead incarnation is never
    reused after a respawn rebinds the port.
    """

    def __init__(self, worker_id: str, config: FleetConfig, run_dir: Path) -> None:
        self.worker_id = worker_id
        self.config = config
        self.run_dir = run_dir
        self.port_file = run_dir / f"{worker_id}.port"
        self.log_file = run_dir / f"{worker_id}.log"
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.state = "starting"  # starting | up | down
        self.generation = 0
        self.restarts = 0  # respawns after the initial start
        self.proxied = 0  # requests this worker answered for the router
        self.backoff_s = config.restart_backoff_s
        self.next_restart_at = 0.0
        self.starting_since = 0.0
        self.up_since = 0.0
        self.probe_failures = 0
        self.fail_reason = ""
        self._pool: List[ServerClient] = []
        self._pool_lock = threading.Lock()
        self._log_handle = None

    # ------------------------------------------------------------- process

    def spawn(self) -> None:
        """Start (or restart) the daemon process for this shard."""
        with contextlib.suppress(FileNotFoundError, OSError):
            self.port_file.unlink()
        self.port = None
        self.generation += 1
        self.probe_failures = 0
        cfg = self.config
        cmd = [
            sys.executable,
            "-m",
            "repro.server.daemon",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--port-file",
            str(self.port_file),
            "--jobs",
            str(max(1, cfg.jobs)),
            "--queue-depth",
            str(max(1, cfg.queue_depth)),
        ]
        if cfg.shared_cache_dir:
            cmd += ["--shared-cache", str(cfg.shared_cache_dir)]
        if cfg.extended:
            cmd.append("--extended")
        if cfg.access_log:
            cmd.append("--access-log")
        env = dict(os.environ)
        # The fleet may be launched from an installed console script or a
        # source checkout; either way the child must import `repro`.
        import repro

        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root if not existing else os.pathsep.join([src_root, existing])
        )
        if self._log_handle is None:
            self._log_handle = open(self.log_file, "ab")
        self.process = subprocess.Popen(
            cmd, stdout=self._log_handle, stderr=self._log_handle, env=env
        )

    def alive(self) -> bool:
        """Whether the daemon process is still running."""
        return self.process is not None and self.process.poll() is None

    def poll_port(self) -> Optional[int]:
        """The port from the port file, once the daemon has bound one."""
        try:
            text = self.port_file.read_text(encoding="utf-8").strip()
            return int(text) if text else None
        except (FileNotFoundError, ValueError, OSError):
            return None

    def probe(self) -> bool:
        """One fresh-connection ``/healthz`` round trip (executor-side)."""
        if self.port is None:
            return False
        try:
            with ServerClient(
                port=self.port, timeout=min(5.0, self.config.proxy_timeout_s)
            ) as client:
                return client.healthz().get("status") == "ok"
        except Exception:  # noqa: BLE001 - any failure is "not healthy"
            return False

    def terminate(self) -> None:
        if self.alive():
            assert self.process is not None
            with contextlib.suppress(OSError):
                self.process.terminate()

    def kill(self) -> None:
        if self.alive():
            assert self.process is not None
            with contextlib.suppress(OSError):
                self.process.kill()

    def close(self) -> None:
        """Release the connection pool and the log handle."""
        self.clear_pool()
        if self._log_handle is not None:
            with contextlib.suppress(OSError):
                self._log_handle.close()
            self._log_handle = None

    # --------------------------------------------------------- connections

    def clear_pool(self) -> None:
        with self._pool_lock:
            stale, self._pool = self._pool, []
        for client in stale:
            client.close()

    def _acquire(self) -> ServerClient:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
            port = self.port
        if port is None:
            raise ConnectionError(f"worker {self.worker_id} has no bound port")
        client = ServerClient(port=port, timeout=self.config.proxy_timeout_s)
        client.fleet_generation = self.generation  # type: ignore[attr-defined]
        return client

    def _release(self, client: ServerClient) -> None:
        with self._pool_lock:
            same_generation = (
                getattr(client, "fleet_generation", -1) == self.generation
            )
            if (
                self.state == "up"
                and same_generation
                and len(self._pool) < _POOL_LIMIT
            ):
                self._pool.append(client)
                return
        client.close()

    def forward(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, str, bytes]:
        """Proxy one request on a pooled connection (blocking; executor).

        Transport failures close the connection and propagate so the
        router can mark this worker down and re-route; HTTP error
        *statuses* are data, returned to the client verbatim.
        """
        client = self._acquire()
        try:
            result = client.forward(method, path, body=body, headers=headers)
        except Exception:
            client.close()
            raise
        self._release(client)
        self.proxied += 1
        return result


class FleetRouter:
    """The fleet front door: one listener, N supervised daemon shards."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config if config is not None else FleetConfig()
        #: Router-side lifetime metrics (``fleet_*`` families only —
        #: worker families merge in at scrape time, never stored here).
        self.metrics = ScanMetrics()
        self.window = RollingWindow(
            interval_s=self.config.window_interval_s,
            slots=self.config.window_slots,
        )
        self.ring = HashRing(replicas=self.config.replicas)
        self.quotas = TenantQuotas(
            rate=self.config.tenant_rate,
            burst=self.config.tenant_burst,
            max_tenants=self.config.max_tenants,
        )
        self.workers: Dict[str, FleetWorker] = {}
        self.draining = False
        self.run_dir: Optional[Path] = None
        self.shared_cache_dir: Optional[Path] = None
        self._owns_run_dir = False
        self._executor = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._idle: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._inflight = 0
        self._started_at = 0.0
        self._routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/statusz"): self._handle_statusz,
            ("POST", "/v1/analyze"): self._handle_analyze,
            ("POST", "/v1/batch"): self._handle_batch,
            ("POST", "/v1/scan"): self._handle_scan,
            ("POST", "/v1/review"): self._handle_review,
        }

    # ----------------------------------------------------------- lifecycle

    @property
    def port(self) -> Optional[int]:
        """The bound front-door port (``None`` before start)."""
        if self._asyncio_server is None:
            return None
        sockets = self._asyncio_server.sockets or []
        return sockets[0].getsockname()[1] if sockets else None

    async def start(self) -> "FleetRouter":
        """Spawn the workers, wait for them healthy, bind the listener."""
        from concurrent.futures import ThreadPoolExecutor

        cfg = self.config
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        if cfg.run_dir:
            self.run_dir = Path(cfg.run_dir)
            self.run_dir.mkdir(parents=True, exist_ok=True)
        else:
            self.run_dir = Path(tempfile.mkdtemp(prefix="patchitpy-fleet-"))
            self._owns_run_dir = True
        if cfg.shared_cache_dir:
            self.shared_cache_dir = Path(cfg.shared_cache_dir)
        else:
            self.shared_cache_dir = self.run_dir / "shared-cache"
        self.shared_cache_dir.mkdir(parents=True, exist_ok=True)
        cfg.shared_cache_dir = str(self.shared_cache_dir)

        # Proxy calls block in http.client, so the thread pool — not the
        # event loop — bounds forwarding concurrency.
        self._executor = ThreadPoolExecutor(
            max_workers=max(8, 4 * max(1, cfg.workers)),
            thread_name_prefix="fleet-proxy",
        )
        for index in range(max(1, cfg.workers)):
            worker = FleetWorker(f"w{index}", cfg, self.run_dir)
            self.workers[worker.worker_id] = worker
            worker.spawn()
        await asyncio.gather(
            *(self._await_worker_up(w) for w in self.workers.values())
        )
        if not self.ring.members:
            raise OSError("no fleet worker became healthy before the timeout")

        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )
        self._started_at = time.monotonic()
        self._supervisor = asyncio.ensure_future(self._supervise())
        return self

    async def _await_worker_up(self, worker: FleetWorker) -> None:
        """Initial-start wait: port file, then a passing health probe."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.worker_start_timeout_s
        while loop.time() < deadline:
            if not worker.alive():
                break
            if worker.port is None:
                worker.port = worker.poll_port()
            if worker.port is not None and await loop.run_in_executor(
                self._executor, worker.probe
            ):
                worker.state = "up"
                worker.up_since = loop.time()
                self.ring.add(worker.worker_id)
                return
            await asyncio.sleep(0.05)
        # Did not come up: leave it "down" so the supervisor keeps trying
        # (unless *no* worker made it, which start() turns into an error).
        worker.kill()
        self._mark_down(worker, "did not become healthy at start")

    async def wait_stopped(self) -> None:
        """Block until :meth:`shutdown` has fully drained the fleet."""
        assert self._stopped is not None, "fleet not started"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Drain in-flight requests, stop the workers, clean the run dir."""
        if self.draining:
            return
        self.draining = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        assert self._idle is not None and self._stopped is not None
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout_s
            )
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        for worker in self.workers.values():
            worker.terminate()
        deadline = time.monotonic() + self.config.drain_timeout_s
        for worker in self.workers.values():
            while worker.alive() and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            worker.kill()
            worker.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._owns_run_dir and self.run_dir is not None:
            shutil.rmtree(self.run_dir, ignore_errors=True)
        self._stopped.set()

    # --------------------------------------------------------- supervision

    def _mark_down(self, worker: FleetWorker, reason: str) -> None:
        """Take a worker out of rotation and schedule its restart."""
        if worker.state == "down":
            return
        worker.state = "down"
        worker.fail_reason = reason
        self.ring.remove(worker.worker_id)
        worker.clear_pool()
        try:
            now = asyncio.get_event_loop().time()
        except RuntimeError:  # pragma: no cover - no loop during teardown
            now = time.monotonic()
        worker.next_restart_at = now + worker.backoff_s
        worker.backoff_s = min(
            self.config.restart_backoff_max_s, worker.backoff_s * 2
        )
        self.metrics.count("fleet_worker_downs")

    def _respawn(self, worker: FleetWorker, now: float) -> None:
        worker.kill()
        worker.spawn()
        worker.restarts += 1
        worker.state = "starting"
        worker.starting_since = now
        self.metrics.count("fleet_worker_restarts")

    async def _supervise(self) -> None:
        """The health/restart loop — one tick per ``health_interval_s``.

        State machine per worker: ``up`` workers are probed (three
        consecutive probe failures, or a process exit, mark them down);
        ``down`` workers respawn once their backoff expires; ``starting``
        workers rejoin the ring after a port file plus a passing probe,
        or go back down if the start budget runs out.  Sustained health
        resets the backoff so one crash stays cheap while a crash loop
        decays to ``restart_backoff_max_s``.
        """
        cfg = self.config
        loop = asyncio.get_running_loop()
        while not self.draining:
            await asyncio.sleep(cfg.health_interval_s)
            if self.draining:
                return
            now = loop.time()
            for worker in self.workers.values():
                if worker.state == "up":
                    if not worker.alive():
                        self._mark_down(worker, "process exited")
                        continue
                    healthy = await loop.run_in_executor(
                        self._executor, worker.probe
                    )
                    if healthy:
                        worker.probe_failures = 0
                        if (
                            worker.backoff_s > cfg.restart_backoff_s
                            and now - worker.up_since >= cfg.backoff_reset_s
                        ):
                            worker.backoff_s = cfg.restart_backoff_s
                    else:
                        worker.probe_failures += 1
                        if worker.probe_failures >= 3:
                            self._mark_down(worker, "failed 3 health probes")
                elif worker.state == "down":
                    if now >= worker.next_restart_at:
                        self._respawn(worker, now)
                elif worker.state == "starting":
                    if worker.port is None:
                        worker.port = worker.poll_port()
                    if worker.port is not None and await loop.run_in_executor(
                        self._executor, worker.probe
                    ):
                        worker.state = "up"
                        worker.up_since = now
                        worker.probe_failures = 0
                        self.ring.add(worker.worker_id)
                        continue
                    if (
                        not worker.alive()
                        or now - worker.starting_since
                        > cfg.worker_start_timeout_s
                    ):
                        worker.kill()
                        self._mark_down(worker, "restart did not become healthy")

    # ---------------------------------------------------------- connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        cfg = self.config
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        cfg.max_body_bytes,
                        cfg.idle_timeout_s,
                        cfg.io_timeout_s,
                    )
                except HttpError as error:
                    await write_response(writer, Response.from_error(error), False)
                    break
                if request is None:
                    break
                supplied = request.headers.get("x-trace-id", "")
                trace_id = (
                    supplied
                    if _TRACE_ID_OK.match(supplied)
                    else uuid.uuid4().hex[:16]
                )
                started = clock()
                self._inflight += 1
                assert self._idle is not None
                self._idle.clear()
                try:
                    response = await self._dispatch(request)
                except HttpError as error:
                    response = Response.from_error(error)
                except Exception as error:  # noqa: BLE001 - must answer 500
                    response = Response.from_error(
                        HttpError(500, f"internal error: {error}")
                    )
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                keep = request.keep_alive and not self.draining
                if isinstance(response, ChunkedResponse):
                    try:
                        await write_chunked_response(
                            writer,
                            response,
                            keep,
                            extra_headers={"X-Patchitpy-Trace-Id": trace_id},
                        )
                    except (ConnectionError, OSError):
                        self._account(request, response, clock() - started)
                        break
                    self._account(request, response, clock() - started)
                    if not keep:
                        break
                    continue
                self._account(request, response, clock() - started)
                try:
                    await write_response(
                        writer,
                        response,
                        keep,
                        extra_headers={"X-Patchitpy-Trace-Id": trace_id},
                    )
                except (ConnectionError, OSError):
                    break
                if not keep:
                    break
        except asyncio.CancelledError:
            pass  # drain cancelled an idle keep-alive connection
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _dispatch(self, request: Request):
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            if any(path == request.path for _, path in self._routes):
                raise HttpError(405, f"method {request.method} not allowed")
            raise HttpError(404, f"no such endpoint: {request.path}")
        if self.draining and request.path.startswith("/v1/"):
            raise HttpError(503, "fleet is draining", headers={"Retry-After": "1"})
        return await handler(request)

    def _endpoint_label(self, request: Request) -> str:
        if any(path == request.path for _, path in self._routes):
            return request.path
        return "other"

    def _account(self, request: Request, response, seconds: float) -> None:
        m = self.metrics
        m.count("fleet_requests")
        m.count(f"fleet_responses_{response.status // 100}xx")
        m.add_time("fleet_request_time_s", seconds)
        endpoint = self._endpoint_label(request)
        m.observe("fleet_request_seconds/" + endpoint, seconds)
        window = self.window
        window.count("requests/" + endpoint)
        window.observe("latency/" + endpoint, seconds)
        window.count(f"responses/{response.status // 100}xx")
        if response.status in (429, 503, 504):
            window.count(f"responses/{response.status}")

    # -------------------------------------------------------------- proxy

    def _forward_headers(self, request: Request) -> Dict[str, str]:
        headers = {
            "Content-Type": request.headers.get("content-type", "application/json")
        }
        supplied = request.headers.get("x-trace-id", "")
        if _TRACE_ID_OK.match(supplied):
            headers["X-Trace-Id"] = supplied
        return headers

    def _admit(self, request: Request, units: float = 1.0) -> None:
        """Per-tenant quota gate: 429 + Retry-After when over budget."""
        tenant = tenant_label(request.headers.get("x-tenant"))
        admitted, retry_after, label = self.quotas.admit(tenant, units)
        if not admitted:
            self.metrics.count("fleet_quota_rejections")
            raise HttpError(
                429,
                f"tenant {label!r} is over its request quota",
                headers={"Retry-After": str(int(math.ceil(retry_after)))},
            )

    async def _forward(
        self,
        key: str,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, str, bytes, str]:
        """Route ``key`` on the ring and proxy, failing over clockwise.

        A transport failure marks the owner down and retries on the next
        worker the ring would assign after removal — so the failover
        target and the permanent re-hash agree, and the client sees one
        ordinary response.  Only when every worker is down does the
        fleet answer 503.
        """
        loop = asyncio.get_running_loop()
        exclude: set = set()
        for _ in range(max(1, len(self.workers))):
            worker_id = self.ring.route(key, exclude=exclude)
            if worker_id is None:
                break
            worker = self.workers[worker_id]
            try:
                status, content_type, raw = await loop.run_in_executor(
                    self._executor, worker.forward, method, path, body, headers
                )
            except _PROXY_ERRORS:
                self.metrics.count("fleet_proxy_failures")
                self._mark_down(worker, "request forwarding failed")
                exclude.add(worker_id)
                continue
            return status, content_type, raw, worker_id
        raise HttpError(
            503, "no healthy workers available", headers={"Retry-After": "1"}
        )

    async def _proxy(self, request: Request, key: str) -> Response:
        """Forward the request body verbatim; pass the answer through."""
        status, content_type, raw, worker_id = await self._forward(
            key, request.method, request.path, request.body,
            self._forward_headers(request),
        )
        return Response(
            status=status,
            body=raw,
            content_type=content_type,
            headers={"X-Fleet-Worker": worker_id},
        )

    # ------------------------------------------------------------ handlers

    @staticmethod
    def _json_object(request: Request) -> dict:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        return body

    async def _handle_analyze(self, request: Request) -> Response:
        body = self._json_object(request)
        source = body.get("source")
        if not isinstance(source, str):
            raise HttpError(400, "analyze requests must carry a string 'source'")
        self._admit(request, units=1.0)
        # Same digest ScanCache uses — the ring and the shared cache
        # tier agree on what "the same snippet" means.
        return await self._proxy(request, hash_source(source))

    async def _handle_scan(self, request: Request) -> Response:
        return await self._proxy_rooted(request, "scan")

    async def _handle_review(self, request: Request) -> Response:
        return await self._proxy_rooted(request, "review")

    async def _proxy_rooted(self, request: Request, kind: str) -> Response:
        body = self._json_object(request)
        root = body.get("root")
        if not isinstance(root, str) or not root:
            raise HttpError(400, f"{kind} requests need a string 'root' field")
        self._admit(request, units=1.0)
        # Scans and reviews key by root so one project's incremental
        # cache stays resident on one worker across requests.
        return await self._proxy(request, f"root:{root}")

    async def _handle_batch(self, request: Request):
        body = self._json_object(request)
        items = body.get("items")
        if not isinstance(items, list) or not items:
            raise HttpError(400, "batch requests need a non-empty 'items' list")
        patch = bool(body.get("patch", False))
        stream = bool(body.get("stream", False))
        deadline_ms = body.get("deadline_ms")
        started = clock()
        # A batch debits one token per item: a tenant's quota is spent
        # in units of analysis work, not HTTP envelopes.
        self._admit(request, units=float(len(items)))

        headers = self._forward_headers(request)
        jobs: List[Tuple[Any, str, bytes]] = []
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                raise HttpError(400, f"items[{index}] must be a JSON object")
            source = item.get("source")
            if not isinstance(source, str):
                raise HttpError(
                    400, f"items[{index}] must carry a string 'source' field"
                )
            sub: Dict[str, Any] = {"source": source, "patch": patch}
            if deadline_ms is not None:
                sub["deadline_ms"] = deadline_ms
            jobs.append(
                (
                    item.get("id", index),
                    hash_source(source),
                    json.dumps(sub).encode("utf-8"),
                )
            )

        tasks = [
            asyncio.ensure_future(self._batch_item(item_id, key, payload, headers))
            for item_id, key, payload in jobs
        ]
        if stream:
            return self._stream_batch(tasks, started)
        lines = await asyncio.gather(*tasks)
        failed = sum(1 for line in lines if "error" in line)
        return Response.json_response(
            {
                "results": lines,
                "count": len(lines),
                "failed": failed,
                "duration_ms": round((clock() - started) * 1000.0, 3),
            }
        )

    async def _batch_item(
        self, item_id: Any, key: str, payload: bytes, headers: Dict[str, str]
    ) -> dict:
        """One batch item as one routed ``/v1/analyze`` — never raises.

        Items fan out *per digest*, so a single batch spreads over every
        worker that owns a slice of it; failures (worker 4xx/5xx, or the
        whole fleet down) become per-item error entries, matching the
        daemon's own batch shape.
        """
        try:
            status, _, raw, _ = await self._forward(
                key, "POST", "/v1/analyze", payload, headers
            )
        except HttpError as error:
            return {"id": item_id, "error": error.detail}
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return {"id": item_id, "error": "worker answered an undecodable body"}
        if status >= 400:
            detail = (
                decoded.get("error", f"worker answered {status}")
                if isinstance(decoded, dict)
                else f"worker answered {status}"
            )
            return {"id": item_id, "error": detail}
        if isinstance(decoded, dict):
            decoded["id"] = item_id
            return decoded
        return {"id": item_id, "error": "worker answered a non-object body"}

    def _stream_batch(
        self, tasks: List["asyncio.Future"], started: float
    ) -> ChunkedResponse:
        """NDJSON out as items complete anywhere in the fleet."""

        async def produce():
            count = 0
            failed = 0
            for next_done in asyncio.as_completed(tasks):
                line = await next_done
                count += 1
                if "error" in line:
                    failed += 1
                yield (json.dumps(line, sort_keys=True) + "\n").encode("utf-8")
            summary = {
                "done": True,
                "count": count,
                "failed": failed,
                "duration_ms": round((clock() - started) * 1000.0, 3),
            }
            yield (json.dumps(summary, sort_keys=True) + "\n").encode("utf-8")

        return ChunkedResponse(chunks=produce())

    # -------------------------------------------------- fleet observability

    def worker_table(self) -> List[Dict[str, Any]]:
        """Per-worker status rows (healthz JSON and /statusz share these)."""
        rows = []
        for worker in self.workers.values():
            rows.append(
                {
                    "id": worker.worker_id,
                    "state": worker.state,
                    "port": worker.port,
                    "pid": worker.process.pid if worker.process else None,
                    "restarts": worker.restarts,
                    "proxied": worker.proxied,
                    "reason": worker.fail_reason if worker.state != "up" else "",
                }
            )
        return rows

    async def _handle_healthz(self, request: Request) -> Response:
        from repro import __version__

        up = sum(1 for w in self.workers.values() if w.state == "up")
        status = "draining" if self.draining else ("ok" if up else "degraded")
        return Response.json_response(
            {
                "status": status,
                "role": "fleet",
                "version": __version__,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "workers": len(self.workers),
                "workers_up": up,
                "worker_table": self.worker_table(),
                "shared_cache_dir": str(self.shared_cache_dir),
                "requests_total": self.metrics.counters.get("fleet_requests", 0),
                "inflight": self._inflight,
            },
            status=503 if self.draining or not up else 200,
        )

    async def _collect_worker_docs(self) -> List[Dict[str, Any]]:
        """Every up worker's ``/v1/metrics.json`` document, in parallel."""
        loop = asyncio.get_running_loop()

        def fetch(worker: FleetWorker) -> Optional[Dict[str, Any]]:
            if worker.state != "up" or worker.port is None:
                return None
            try:
                with ServerClient(
                    port=worker.port, timeout=min(10.0, self.config.proxy_timeout_s)
                ) as client:
                    return client.metrics_json()
            except Exception:  # noqa: BLE001 - a scrape never kills a worker
                return None

        docs = await asyncio.gather(
            *(
                loop.run_in_executor(self._executor, fetch, worker)
                for worker in self.workers.values()
            )
        )
        return [doc for doc in docs if isinstance(doc, dict)]

    def merged_metrics(self, docs: List[Dict[str, Any]]) -> ScanMetrics:
        """Worker collectors + the router's own, one associative merge.

        :meth:`ScanMetrics.merge` is exact for counters, timers, *and*
        histograms (bucket-wise addition), so fleet-wide quantiles are
        what a single process handling all the traffic would report —
        not an average of averages.
        """
        merged = ScanMetrics()
        for doc in docs:
            snapshot = doc.get("metrics")
            if isinstance(snapshot, dict):
                merged.merge(ScanMetrics.from_dict(snapshot))
        merged.merge(self.metrics)
        return merged

    async def _handle_metrics(self, request: Request) -> Response:
        docs = await self._collect_worker_docs()
        merged = self.merged_metrics(docs)
        up = sum(1 for w in self.workers.values() if w.state == "up")
        gauges = {
            "fleet_uptime_seconds": time.monotonic() - self._started_at,
            "fleet_inflight_requests": float(self._inflight),
            "fleet_workers": float(len(self.workers)),
            "fleet_workers_up": float(up),
        }
        for doc in docs:
            for name, value in (doc.get("gauges") or {}).items():
                if isinstance(value, (int, float)) and not name.startswith("server_uptime"):
                    gauges[name] = gauges.get(name, 0.0) + float(value)
        text = to_prometheus(merged, extra_gauges=gauges)
        text += self._labeled_families()
        return Response.text_response(text)

    def _labeled_families(self) -> str:
        """Hand-rendered labeled series the plain exporter cannot emit."""

        def esc(value: str) -> str:
            return (
                value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
            )

        out: List[str] = []
        rejections = self.quotas.snapshot_rejections()
        out.append(
            "# HELP patchitpy_fleet_quota_rejections_total Requests shed "
            "by per-tenant quota."
        )
        out.append("# TYPE patchitpy_fleet_quota_rejections_total counter")
        for tenant in sorted(rejections):
            out.append(
                f'patchitpy_fleet_quota_rejections_total{{tenant="{esc(tenant)}"}} '
                f"{rejections[tenant]}"
            )
        out.append("# HELP patchitpy_fleet_worker_up Worker liveness (1 up, 0 not).")
        out.append("# TYPE patchitpy_fleet_worker_up gauge")
        for row in self.worker_table():
            out.append(
                f'patchitpy_fleet_worker_up{{worker="{esc(row["id"])}"}} '
                f"{1 if row['state'] == 'up' else 0}"
            )
        out.append(
            "# HELP patchitpy_fleet_worker_restarts_total Supervisor restarts "
            "per worker."
        )
        out.append("# TYPE patchitpy_fleet_worker_restarts_total counter")
        for row in self.worker_table():
            out.append(
                f'patchitpy_fleet_worker_restarts_total{{worker="{esc(row["id"])}"}} '
                f"{row['restarts']}"
            )
        out.append(
            "# HELP patchitpy_fleet_worker_proxied_total Requests answered "
            "per worker."
        )
        out.append("# TYPE patchitpy_fleet_worker_proxied_total counter")
        for row in self.worker_table():
            out.append(
                f'patchitpy_fleet_worker_proxied_total{{worker="{esc(row["id"])}"}} '
                f"{row['proxied']}"
            )
        return "\n".join(out) + "\n"

    async def _handle_statusz(self, request: Request) -> Response:
        docs = await self._collect_worker_docs()
        return Response.html_response(
            render_fleet_statusz(self, self.merged_metrics(docs))
        )


class BackgroundFleet:
    """Run a :class:`FleetRouter` on a thread — tests and benchmarks.

    Mirrors :class:`~repro.server.app.BackgroundServer`: the event loop
    spins on a daemon thread, ``start`` blocks until the front door is
    bound (which itself waits for every worker's first health pass)::

        with BackgroundFleet(FleetRouter(FleetConfig(port=0))) as fleet:
            client = ServerClient(port=fleet.port)
            ...
    """

    def __init__(self, router: FleetRouter) -> None:
        self.router = router
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> Optional[int]:
        return self.router.port

    def start(self) -> "BackgroundFleet":
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.router.start())
            except BaseException as error:  # noqa: BLE001 - reported to caller
                self._startup_error = error
                ready.set()
                return
            ready.set()
            try:
                loop.run_until_complete(self.router.wait_stopped())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=run, name="patchitpy-fleet", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=120)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.router.shutdown(), self._loop
        )
        with contextlib.suppress(Exception):
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundFleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


# ------------------------------------------------------------------ CLI


def build_fleet_parser() -> argparse.ArgumentParser:
    """Construct the ``patchitpy fleet`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="patchitpy fleet",
        description=(
            "Run a sharded scan fleet: N supervised daemon workers behind "
            "one front door that consistent-hashes requests by content "
            "digest, shares a cross-worker result cache, enforces "
            "per-tenant quotas, and serves the daemon's exact wire "
            "protocol plus fleet-wide /metrics and /statusz."
        ),
        epilog=(
            "exit codes: 0 = clean shutdown (SIGTERM/SIGINT drain), "
            "2 = fleet could not start"
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="front-door bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8750,
        metavar="N",
        help="front-door TCP port (default 8750; 0 picks a free port)",
    )
    parser.add_argument(
        "--workers",
        "-w",
        type=int,
        default=2,
        metavar="N",
        help="daemon shard count; each gets its own warm engine and "
        "loopback port (default 2)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="analysis pool size inside each worker (default 1); fleet "
        "capacity is workers x jobs engines",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="per-worker backpressure limit, passed through to each "
        "daemon (default 64)",
    )
    parser.add_argument(
        "--shared-cache",
        metavar="DIR",
        help="cross-worker result cache directory (default: a "
        "'shared-cache' dir inside --run-dir)",
    )
    parser.add_argument(
        "--run-dir",
        metavar="DIR",
        help="directory for port files, per-worker logs, and the default "
        "shared cache (default: a private temp dir, removed on exit)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=64,
        metavar="N",
        help="virtual nodes per worker on the consistent-hash ring "
        "(default 64)",
    )
    parser.add_argument(
        "--tenant-rate",
        type=float,
        default=50.0,
        metavar="R",
        help="per-tenant sustained request budget in requests/second; "
        "batches debit one token per item (default 50)",
    )
    parser.add_argument(
        "--tenant-burst",
        type=float,
        default=200.0,
        metavar="N",
        help="per-tenant burst allowance in tokens (default 200)",
    )
    parser.add_argument(
        "--max-tenants",
        type=int,
        default=256,
        metavar="N",
        help="distinct tenants tracked before overflow shares one "
        "'other' bucket and label (default 256)",
    )
    parser.add_argument(
        "--health-interval-s",
        type=float,
        default=0.5,
        metavar="S",
        help="supervisor tick: health-probe cadence per worker "
        "(default 0.5)",
    )
    parser.add_argument(
        "--restart-backoff-s",
        type=float,
        default=0.5,
        metavar="S",
        help="base delay before restarting a dead worker; doubles per "
        "consecutive failure (default 0.5)",
    )
    parser.add_argument(
        "--restart-backoff-max-s",
        type=float,
        default=30.0,
        metavar="S",
        help="cap on the restart backoff (default 30)",
    )
    parser.add_argument(
        "--max-body-bytes",
        type=int,
        default=2 * 1024 * 1024,
        metavar="N",
        help="largest accepted request body at the front door; bigger "
        "answers 413 (default 2097152)",
    )
    parser.add_argument(
        "--drain-timeout-s",
        type=float,
        default=10.0,
        metavar="S",
        help="on SIGTERM/SIGINT, how long to wait for in-flight requests "
        "and worker shutdown (default 10)",
    )
    parser.add_argument(
        "--access-log",
        action="store_true",
        help="pass --access-log through to every worker daemon",
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="workers serve the extended rule catalog instead of the "
        "paper's 85 rules",
    )
    parser.add_argument(
        "--window-interval-s",
        type=float,
        default=5.0,
        metavar="S",
        help="fleet /statusz rolling-window slot width in seconds "
        "(default 5)",
    )
    parser.add_argument(
        "--window-slots",
        type=int,
        default=60,
        metavar="N",
        help="fleet /statusz rolling-window slot count (default 60)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> FleetConfig:
    """Map parsed fleet-mode arguments onto a :class:`FleetConfig`."""
    return FleetConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        jobs=max(1, args.jobs),
        queue_depth=max(1, args.queue_depth),
        shared_cache_dir=args.shared_cache,
        run_dir=args.run_dir,
        replicas=max(1, args.replicas),
        tenant_rate=max(0.0, args.tenant_rate),
        tenant_burst=max(1.0, args.tenant_burst),
        max_tenants=max(1, args.max_tenants),
        health_interval_s=max(0.05, args.health_interval_s),
        restart_backoff_s=max(0.05, args.restart_backoff_s),
        restart_backoff_max_s=max(0.05, args.restart_backoff_max_s),
        max_body_bytes=max(1, args.max_body_bytes),
        drain_timeout_s=max(0.0, args.drain_timeout_s),
        access_log=args.access_log,
        extended=args.extended,
        window_interval_s=max(0.1, args.window_interval_s),
        window_slots=max(1, args.window_slots),
    )


async def _serve(router: FleetRouter) -> None:
    await router.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(router.shutdown())
            )
        except (NotImplementedError, RuntimeError):
            pass
    print(
        f"patchitpy fleet listening on http://{router.config.host}:{router.port} "
        f"({len(router.workers)} workers x jobs={max(1, router.config.jobs)}, "
        f"shared cache {router.shared_cache_dir})",
        file=sys.stderr,
    )
    await router.wait_stopped()


def main(argv: Optional[List[str]] = None) -> int:
    """``patchitpy fleet`` entry point; returns the process exit code."""
    parser = build_fleet_parser()
    args = parser.parse_args(argv)
    router = FleetRouter(config=config_from_args(args))
    try:
        asyncio.run(_serve(router))
    except OSError as error:
        print(f"error: cannot start fleet: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
