"""Routing primitives for the scan fleet: consistent hashing and quotas.

Two small, deterministic data structures that :class:`~repro.server.fleet.
FleetRouter` composes, kept free of sockets and subprocesses so their
contracts can be pinned by fast property tests
(``tests/test_fleet.py``):

- :class:`HashRing` — a consistent-hash ring mapping content digests to
  worker ids.  The fleet keys every ``/v1/analyze`` request by the
  snippet's SHA-256 digest (the exact key
  :class:`~repro.core.cache.ScanCache` uses), so the same bytes always
  land on the same worker while that worker lives — which keeps each
  worker's in-memory state warm and makes the shared cache tier a
  *fallback*, not the common path.  Virtual nodes smooth the key
  distribution; membership changes move only the keys they must:
  removing a member relocates exactly the keys it owned, adding one
  steals keys only *for* the newcomer.

- :class:`TokenBucket` / :class:`TenantQuotas` — continuous-refill token
  buckets, one per tenant, with bounded label cardinality.  These layer
  *policy* (per-tenant fairness) on top of the per-worker *mechanics*
  the daemon already has (queue-depth backpressure): a tenant over its
  budget is shed at the front door with ``429`` + ``Retry-After`` before
  any worker spends a queue slot on it.
"""

from __future__ import annotations

import bisect
import hashlib
import re
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "DEFAULT_TENANT",
    "HashRing",
    "OVERFLOW_TENANT",
    "TenantQuotas",
    "TokenBucket",
    "tenant_label",
]

#: Tenant id used when a request carries no (or a malformed) ``X-Tenant``.
DEFAULT_TENANT = "anonymous"

#: Label that absorbs tenants beyond the cardinality cap.
OVERFLOW_TENANT = "other"

#: Shape a caller-supplied ``X-Tenant`` must match to become a metric
#: label — same discipline as trace ids: no control characters, bounded
#: length, so a hostile client cannot forge exposition lines.
_TENANT_OK = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def tenant_label(header_value: Optional[str]) -> str:
    """The tenant id for a request, defaulting malformed/missing to
    :data:`DEFAULT_TENANT`."""
    if header_value and _TENANT_OK.match(header_value):
        return header_value
    return DEFAULT_TENANT


class HashRing:
    """Consistent-hash ring: stable key → member assignment.

    Each member contributes ``replicas`` virtual points (SHA-256 of
    ``"{member}#{i}"``); a key routes to the member owning the first
    ring point at or clockwise of the key's own hash point.  Two
    properties the fleet relies on (pinned by hypothesis tests):

    - **removal locality** — removing a member re-routes exactly the
      keys that member owned; every other key keeps its assignment;
    - **addition locality** — adding a member only moves keys *onto*
      the new member; no key moves between two surviving members.

    Not thread-safe by itself; the router mutates it only from the
    event loop.
    """

    def __init__(
        self, members: Iterable[str] = (), replicas: int = 64
    ) -> None:
        self.replicas = max(1, replicas)
        self._points: List[Tuple[int, str]] = []
        self._members: Set[str] = set()
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def members(self) -> Tuple[str, ...]:
        """Current membership, sorted for determinism."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> bool:
        """Add a member (idempotent); True when membership changed."""
        if member in self._members:
            return False
        self._members.add(member)
        for replica in range(self.replicas):
            point = (self._hash(f"{member}#{replica}"), member)
            bisect.insort(self._points, point)
        return True

    def remove(self, member: str) -> bool:
        """Remove a member (idempotent); True when membership changed."""
        if member not in self._members:
            return False
        self._members.discard(member)
        self._points = [p for p in self._points if p[1] != member]
        return True

    def route(
        self, key: str, exclude: Iterable[str] = ()
    ) -> Optional[str]:
        """The member owning ``key``, or ``None`` when no member remains.

        ``exclude`` skips members mid-failover: the router retries a
        request on the *next* owner clockwise, which is exactly where
        the key will permanently live once the dead member is removed
        from the ring — so failover and re-hash agree.
        """
        if not self._points:
            return None
        excluded = set(exclude)
        candidates = self._members - excluded
        if not candidates:
            return None
        start = bisect.bisect_left(self._points, (self._hash(key), ""))
        for offset in range(len(self._points)):
            point, member = self._points[(start + offset) % len(self._points)]
            if member not in excluded:
                return member
        return None


class TokenBucket:
    """A continuous-refill token bucket (monotonic clock, injectable).

    ``rate`` tokens accrue per second up to ``burst``; :meth:`take`
    either debits the requested units or refuses without debiting.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = max(0.0, rate)
        self.burst = max(1.0, burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill()
        return self._tokens

    def take(self, units: float = 1.0) -> bool:
        """Debit ``units`` tokens, or refuse (no partial debit)."""
        self._refill()
        if units <= self._tokens:
            self._tokens -= units
            return True
        return False

    def retry_after_s(self, units: float = 1.0) -> float:
        """Seconds until ``units`` tokens could be available.

        Demands above ``burst`` are clamped to it (they could otherwise
        never be served); a zero refill rate advertises a minute.
        """
        self._refill()
        deficit = min(units, self.burst) - self._tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0:
            return 60.0
        return deficit / self.rate


class TenantQuotas:
    """Per-tenant token buckets with bounded label cardinality.

    The first ``max_tenants`` distinct tenant ids get private buckets;
    later arrivals share the :data:`OVERFLOW_TENANT` bucket *and* its
    metric label, so a client minting random tenant ids can neither
    escape throttling nor balloon the ``/metrics`` exposition.
    Thread-safe: the router's proxy threads and event loop both call in.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        max_tenants: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_tenants = max(1, max_tenants)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        #: Rejection counts by (bounded) tenant label — the fleet's
        #: ``patchitpy_fleet_quota_rejections_total{tenant=...}`` family.
        self.rejections: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _label_for(self, tenant: str) -> str:
        if tenant in self._buckets or len(self._buckets) < self.max_tenants:
            return tenant
        return OVERFLOW_TENANT

    def admit(self, tenant: str, units: float = 1.0) -> Tuple[bool, float, str]:
        """Try to admit ``units`` of work for ``tenant``.

        Returns ``(admitted, retry_after_s, label)``; a refusal is
        recorded in :attr:`rejections` under the bounded label.
        """
        with self._lock:
            label = self._label_for(tenant)
            bucket = self._buckets.get(label)
            if bucket is None:
                bucket = self._buckets[label] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
            if bucket.take(units):
                return True, 0.0, label
            self.rejections[label] = self.rejections.get(label, 0) + 1
            return False, max(1.0, bucket.retry_after_s(units)), label

    def snapshot_rejections(self) -> Dict[str, int]:
        """A copy of the per-tenant rejection counters."""
        with self._lock:
            return dict(self.rejections)
