"""``patchitpy serve`` — run the scan daemon in the foreground.

This module owns the serve-mode argument parser and the process-level
glue (signal handling, event loop lifetime) around
:class:`~repro.server.app.PatchitPyServer`.  The CLI dispatches here
when the first argument is ``serve``; everything else about the daemon
lives in :mod:`repro.server.app`.

Exit codes mirror the main CLI contract: ``0`` for a clean (signalled)
shutdown, ``2`` when the server cannot start (bad arguments, bind
failure).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro.server.app import PatchitPyServer, ServerConfig

__all__ = ["build_serve_parser", "main"]


def build_serve_parser() -> argparse.ArgumentParser:
    """Construct the ``patchitpy serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="patchitpy serve",
        description=(
            "Run the persistent scan server: one warm engine, an open "
            "result cache per scan root, and a reusable worker pool "
            "behind POST /v1/analyze, /v1/batch, /v1/scan, /v1/review "
            "plus GET /healthz, /metrics, and the /statusz dashboard."
        ),
        epilog=(
            "exit codes: 0 = clean shutdown (SIGTERM/SIGINT drain), "
            "2 = server could not start"
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1; ignored with --unix-socket)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8753,
        metavar="N",
        help="TCP port to listen on (default 8753; 0 picks a free port)",
    )
    parser.add_argument(
        "--unix-socket",
        metavar="PATH",
        help="listen on a unix domain socket at PATH instead of TCP",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="analysis pool size: 1 = a single worker thread, N>1 = a "
        "process pool of N warm engines (default 1)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="max queued-plus-running analysis units before requests are "
        "refused with 429 (default 64)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=30_000.0,
        metavar="MS",
        help="default per-request deadline; expiry answers 504 "
        "(default 30000; 0 disables, requests may override)",
    )
    parser.add_argument(
        "--max-body-bytes",
        type=int,
        default=2 * 1024 * 1024,
        metavar="N",
        help="largest accepted request body; bigger answers 413 "
        "(default 2097152)",
    )
    parser.add_argument(
        "--drain-timeout-s",
        type=float,
        default=10.0,
        metavar="S",
        help="on SIGTERM/SIGINT, how long to wait for in-flight requests "
        "before stopping anyway (default 10)",
    )
    parser.add_argument(
        "--shared-cache",
        metavar="DIR",
        help="open the cross-process shared snippet cache at DIR: analyze "
        "and batch results are keyed by content digest and written "
        "through, so fleet siblings serve each other's warm hits "
        "(see docs/fleet.md)",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        help="after binding, write the actual listening port to PATH — how "
        "a supervisor (patchitpy fleet) learns the port when --port 0 "
        "picked a free one",
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="serve the extended rule catalog instead of the paper's 85 rules",
    )
    parser.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON log line per request (trace id, "
        "method, path, status, bytes, durations by phase) to stderr",
    )
    parser.add_argument(
        "--window-interval-s",
        type=float,
        default=5.0,
        metavar="S",
        help="rolling SLO window slot width in seconds; /statusz rates and "
        "percentiles aggregate over these slots (default 5)",
    )
    parser.add_argument(
        "--window-slots",
        type=int,
        default=60,
        metavar="N",
        help="number of rolling-window slots; slots x interval bounds the "
        "/statusz look-back (default 60, i.e. 5 minutes)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    """Map parsed serve-mode arguments onto a :class:`ServerConfig`."""
    return ServerConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        jobs=max(1, args.jobs),
        queue_depth=max(1, args.queue_depth),
        default_deadline_ms=max(0.0, args.deadline_ms),
        max_body_bytes=max(1, args.max_body_bytes),
        drain_timeout_s=max(0.0, args.drain_timeout_s),
        access_log=args.access_log,
        window_interval_s=max(0.1, args.window_interval_s),
        window_slots=max(1, args.window_slots),
        shared_cache_dir=args.shared_cache,
    )


async def _serve(server: PatchitPyServer, port_file: Optional[str] = None) -> None:
    await server.start()
    if port_file and server.port is not None:
        # Written post-bind so a supervisor polling the file always reads
        # a live port; the temp+replace keeps the read atomic.
        target = Path(port_file)
        tmp = target.with_suffix(target.suffix + f".tmp{os.getpid()}")
        tmp.write_text(f"{server.port}\n", encoding="utf-8")
        os.replace(tmp, target)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.shutdown())
            )
        except (NotImplementedError, RuntimeError):
            # Non-main thread or platforms without loop signal support;
            # the embedder stops the server via shutdown() directly.
            pass
    where = (
        server.config.unix_socket
        if server.config.unix_socket
        else f"http://{server.config.host}:{server.port}"
    )
    print(
        f"patchitpy server listening on {where} "
        f"({len(server.engine.rules)} rules, pool={server._pool_kind}, "
        f"jobs={max(1, server.config.jobs)}, "
        f"queue_depth={server.config.queue_depth})",
        file=sys.stderr,
    )
    await server.wait_stopped()


def main(argv: Optional[List[str]] = None) -> int:
    """``patchitpy serve`` entry point; returns the process exit code."""
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    from repro import PatchitPy, extended_ruleset

    engine = PatchitPy(rules=extended_ruleset() if args.extended else None)
    server = PatchitPyServer(engine=engine, config=config_from_args(args))
    try:
        asyncio.run(_serve(server, port_file=args.port_file))
    except OSError as error:
        print(f"error: cannot start server: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
