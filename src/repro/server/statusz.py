"""The ``/statusz`` operator dashboard — one self-contained HTML page.

Site-reliability tooling scrapes ``/metrics``; a human debugging a
misbehaving daemon wants one page they can open in a browser with no
Grafana between them and the process.  :func:`render_statusz` builds
that page from state the server already holds — the rolling SLO windows
(request rates, error rates, and latency percentiles over the last
minute and five minutes), the lifetime collector (cache hit ratio,
rule-health table with patch-verdict counts), and the point-in-time
process gauges (worker-pool saturation, queue depth, uptime).

Everything is inlined: no external CSS, no JavaScript beyond a
``<meta http-equiv="refresh">`` tag, so the page renders from ``curl``
output, behind an SSH tunnel, or in an air-gapped environment.  The
renderer only reads server state; it never mutates the collector or the
windows, so hitting ``/statusz`` in a loop cannot skew the numbers it
reports (beyond the request accounting every endpoint shares).
"""

from __future__ import annotations

import html
import time
from typing import List, Optional

__all__ = ["render_statusz"]

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 1.5em; color: #1a1a2e; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
table { border-collapse: collapse; margin-top: 0.5em; }
th, td { border: 1px solid #c8c8d4; padding: 0.25em 0.7em; text-align: right; }
th { background: #eef0f6; } td.name, th.name { text-align: left; }
td.bad { color: #b00020; font-weight: 600; }
.muted { color: #6b6b7b; font-size: 0.9em; }
"""


def _fmt_ms(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1000.0:.1f}"


def _fmt_rate(per_second: float) -> str:
    return f"{per_second:.2f}"


def render_statusz(server) -> str:
    """The dashboard HTML for one :class:`PatchitPyServer` instance.

    Duck-typed against the server (``metrics``, ``window``, ``config``,
    and the liveness gauges) so tests can render from a stub.
    """
    cfg = server.config
    metrics = server.metrics
    one_minute = server.window.window(60.0)
    five_minutes = server.window.window(300.0)
    uptime_s = time.monotonic() - server._started_at if server._started_at else 0.0

    from repro import __version__

    out: List[str] = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta http-equiv="refresh" content="5">',
        "<title>patchitpy /statusz</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>patchitpy server &mdash; statusz</h1>",
        '<p class="muted">'
        f"version {html.escape(__version__)} &middot; "
        f"uptime {uptime_s:.0f}s &middot; "
        f"pool {html.escape(server._pool_kind)}&times;{max(1, cfg.jobs)} &middot; "
        f"rolling windows {server.window.slots}&times;{server.window.interval_s:g}s "
        "&middot; auto-refreshes every 5s</p>",
    ]

    # ---- saturation: queue + in-flight against capacity -----------------
    depth = max(1, cfg.queue_depth)
    saturation = server._pending / depth
    out.append("<h2>Saturation</h2><table>")
    out.append(
        "<tr><th class=name>gauge</th><th>value</th><th>capacity</th></tr>"
    )
    cells = "bad" if saturation >= 0.8 else ""
    out.append(
        f'<tr><td class=name>analysis queue</td><td class="{cells}">'
        f"{server._pending}</td><td>{depth}</td></tr>"
    )
    out.append(
        f"<tr><td class=name>in-flight requests</td>"
        f"<td>{server._inflight}</td><td>&mdash;</td></tr>"
    )
    out.append(
        f"<tr><td class=name>open caches</td>"
        f"<td>{len(server._caches)}</td><td>&mdash;</td></tr>"
    )
    out.append("</table>")

    # ---- request rates and latency percentiles per endpoint -------------
    endpoints = sorted(
        {
            name.partition("/")[2]
            for name in set(one_minute.counters) | set(five_minutes.counters)
            if name.startswith("requests/")
        }
        | {
            name.partition("/")[2]
            for name in set(one_minute.histograms) | set(five_minutes.histograms)
            if name.startswith("latency/")
        }
    )
    out.append("<h2>Endpoints (rolling windows)</h2><table>")
    out.append(
        "<tr><th class=name>endpoint</th><th>req/s 1m</th><th>req/s 5m</th>"
        "<th>p50 ms 5m</th><th>p95 ms 5m</th><th>p99 ms 5m</th></tr>"
    )
    if not endpoints:
        out.append(
            '<tr><td class=name colspan="6">no requests in the window yet</td></tr>'
        )
    for endpoint in endpoints:
        latency = five_minutes.histograms.get("latency/" + endpoint)
        p50 = latency.quantile(0.5) if latency else None
        p95 = latency.quantile(0.95) if latency else None
        p99 = latency.quantile(0.99) if latency else None
        out.append(
            f"<tr><td class=name>{html.escape(endpoint)}</td>"
            f"<td>{_fmt_rate(one_minute.rate('requests/' + endpoint))}</td>"
            f"<td>{_fmt_rate(five_minutes.rate('requests/' + endpoint))}</td>"
            f"<td>{_fmt_ms(p50)}</td><td>{_fmt_ms(p95)}</td>"
            f"<td>{_fmt_ms(p99)}</td></tr>"
        )
    out.append("</table>")

    # ---- SLO counters: error / backpressure / deadline rates ------------
    out.append("<h2>Errors and shed load (rolling windows)</h2><table>")
    out.append(
        "<tr><th class=name>class</th><th>per s, 1m</th><th>per s, 5m</th>"
        "<th>total 5m</th></tr>"
    )
    for label, key in (
        ("5xx responses", "responses/5xx"),
        ("4xx responses", "responses/4xx"),
        ("429 backpressure", "responses/429"),
        ("504 deadline missed", "responses/504"),
    ):
        total = five_minutes.total(key)
        cells = "bad" if total and key in ("responses/5xx",) else ""
        out.append(
            f"<tr><td class=name>{label}</td>"
            f"<td>{_fmt_rate(one_minute.rate(key))}</td>"
            f"<td>{_fmt_rate(five_minutes.rate(key))}</td>"
            f'<td class="{cells}">{total}</td></tr>'
        )
    out.append("</table>")

    # ---- lifetime cache efficiency --------------------------------------
    out.append("<h2>Cache (lifetime)</h2>")
    rate = metrics.cache_hit_rate()
    hits = metrics.counters.get("cache_hits", 0)
    misses = metrics.counters.get("cache_misses", 0)
    if rate is None:
        out.append('<p class="muted">no cache traffic yet</p>')
    else:
        out.append(
            f"<p>{hits} hit(s) / {misses} miss(es) &mdash; "
            f"hit ratio <b>{rate:.1%}</b></p>"
        )

    # ---- rule health: watchdog breaches + patch verdicts ----------------
    out.append("<h2>Rule health (lifetime)</h2>")
    health = metrics.rule_health
    if not health:
        out.append('<p class="muted">no slow rules or patch verdicts recorded</p>')
    else:
        out.append("<table>")
        out.append(
            "<tr><th class=name>rule</th><th>breaches</th><th>worst ms</th>"
            "<th>verified</th><th>unverified</th><th class=name>exemplar</th></tr>"
        )
        for rule_id in sorted(health):
            entry = health[rule_id]
            unverified = entry.unverified()
            cells = "bad" if unverified else ""
            out.append(
                f"<tr><td class=name>{html.escape(rule_id)}</td>"
                f"<td>{entry.breaches}</td><td>{entry.worst_ms:.1f}</td>"
                f"<td>{entry.verdicts.get('verified', 0)}</td>"
                f'<td class="{cells}">{unverified}</td>'
                f"<td class=name>{html.escape(entry.failing_exemplar or entry.worst_file or '')}</td></tr>"
            )
        out.append("</table>")

    out.append(
        '<p class="muted">machine-readable twins: '
        '<a href="/metrics">/metrics</a> (Prometheus) and '
        '<a href="/healthz">/healthz</a> (JSON)</p>'
    )
    out.append("</body></html>")
    return "\n".join(out) + "\n"
