"""The persistent scan server (``patchitpy serve``) and its client.

Layering:

- :mod:`repro.server.http11` — minimal HTTP/1.1 framing over asyncio
  streams (limits, timeouts, keep-alive);
- :mod:`repro.server.app` — :class:`PatchitPyServer`: the warm engine,
  open caches, worker pool, endpoints, backpressure, deadlines, and
  graceful drain; :class:`BackgroundServer` embeds one on a thread;
- :mod:`repro.server.daemon` — the ``patchitpy serve`` argument parser
  and foreground process glue (signals, event loop);
- :mod:`repro.server.client` — a stdlib keep-alive JSON client
  (:class:`ServerClient`), over TCP or a unix socket;
- :mod:`repro.server.router` — fleet routing primitives: the
  consistent-hash ring and per-tenant token-bucket quotas;
- :mod:`repro.server.fleet` — ``patchitpy fleet``:
  :class:`FleetRouter`, the sharded front door that supervises N daemon
  workers behind one port (:class:`BackgroundFleet` embeds one);
- :mod:`repro.server.fleetz` — the fleet-wide ``/statusz`` page.

See ``docs/server.md`` (single daemon) and ``docs/fleet.md`` (sharded
fleet) for the operational guides.
"""

from repro.server.app import BackgroundServer, PatchitPyServer, ServerConfig
from repro.server.client import ServerClient, ServerError
from repro.server.fleet import BackgroundFleet, FleetConfig, FleetRouter
from repro.server.router import HashRing, TenantQuotas, TokenBucket

__all__ = [
    "BackgroundFleet",
    "BackgroundServer",
    "FleetConfig",
    "FleetRouter",
    "HashRing",
    "PatchitPyServer",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "TenantQuotas",
    "TokenBucket",
]
