"""The persistent scan server (``patchitpy serve``) and its client.

Layering:

- :mod:`repro.server.http11` — minimal HTTP/1.1 framing over asyncio
  streams (limits, timeouts, keep-alive);
- :mod:`repro.server.app` — :class:`PatchitPyServer`: the warm engine,
  open caches, worker pool, endpoints, backpressure, deadlines, and
  graceful drain; :class:`BackgroundServer` embeds one on a thread;
- :mod:`repro.server.daemon` — the ``patchitpy serve`` argument parser
  and foreground process glue (signals, event loop);
- :mod:`repro.server.client` — a stdlib keep-alive JSON client
  (:class:`ServerClient`), over TCP or a unix socket.

See ``docs/server.md`` for the operational guide.
"""

from repro.server.app import BackgroundServer, PatchitPyServer, ServerConfig
from repro.server.client import ServerClient, ServerError

__all__ = [
    "BackgroundServer",
    "PatchitPyServer",
    "ServerClient",
    "ServerConfig",
    "ServerError",
]
