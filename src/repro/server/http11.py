"""Minimal HTTP/1.1 framing over asyncio streams.

The scan daemon deliberately does not use ``http.server`` (blocking, one
thread per connection) or any third-party framework (the repository is
stdlib-only by contract).  What a JSON-over-HTTP analyzer service needs
from HTTP is small and this module implements exactly that:

- request parsing (request line, headers, ``Content-Length`` bodies)
  with hard limits — header size, body size, and read deadlines — so a
  slow or hostile client cannot pin a connection open or balloon memory;
- response serialization with correct ``Content-Length`` framing and
  explicit keep-alive control;
- chunked *response* streaming (:class:`ChunkedResponse` /
  :func:`write_chunked_response`) so ``/v1/batch`` can emit per-item
  results as they complete instead of buffering the whole batch;
- a typed :class:`HttpError` that handlers raise and the connection loop
  turns into the matching status response.

No chunked *request* bodies, no TLS, no HTTP/2: the daemon sits on
loopback or a unix socket behind whatever real ingress the deployment
already has (see ``docs/server.md``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Reason phrases for every status the daemon emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_REQUEST_LINE_BYTES = 8 * 1024
MAX_HEADER_BYTES = 16 * 1024


class HttpError(Exception):
    """A protocol- or handler-level failure with an HTTP status.

    ``detail`` lands in the JSON error body; ``headers`` (e.g.
    ``Retry-After`` on 429) are merged into the response.
    """

    def __init__(
        self,
        status: int,
        detail: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body decoded as JSON (400 on undecodable/invalid input)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "request body is not valid JSON")

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class Response:
    """One HTTP response ready to serialize."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json_response(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        """A JSON body response (sorted keys, trailing newline)."""
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body, headers=dict(headers or {}))

    @classmethod
    def text_response(cls, text: str, status: int = 200) -> "Response":
        """A plain-text response (the ``/metrics`` exposition format)."""
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @classmethod
    def html_response(cls, html: str, status: int = 200) -> "Response":
        """An HTML body response (the ``/statusz`` dashboard)."""
        return cls(
            status=status,
            body=html.encode("utf-8"),
            content_type="text/html; charset=utf-8",
        )

    @classmethod
    def from_error(cls, error: HttpError) -> "Response":
        """The JSON error body for a raised :class:`HttpError`."""
        return cls.json_response(
            {"error": error.detail, "status": error.status},
            status=error.status,
            headers=error.headers,
        )


@dataclass
class ChunkedResponse:
    """A streaming response: head now, body chunks as they are produced.

    ``chunks`` is an async iterator of byte strings; each non-empty item
    becomes one ``Transfer-Encoding: chunked`` frame on the wire, so a
    client sees results the moment the producer yields them.  ``body``
    stays empty — it exists so accounting code written against
    :class:`Response` (``len(response.body)``) keeps working.
    """

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "application/x-ndjson"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
    idle_timeout_s: float,
    io_timeout_s: float,
) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` on a clean close (EOF before any bytes of a new
    request, or an idle keep-alive connection timing out) — the caller
    just drops the connection.  Anything malformed or over-limit raises
    :class:`HttpError`, which the caller answers before closing:
    408 for a client that stalls mid-request, 413/431 for over-limit
    payloads/headers, 400 for unparseable framing.
    """
    try:
        line = await asyncio.wait_for(reader.readline(), timeout=idle_timeout_s)
    except asyncio.TimeoutError:
        return None  # idle keep-alive connection: close without a response
    if not line.strip():
        # EOF or a bare CRLF between requests followed by EOF
        if not line:
            return None
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=io_timeout_s)
        except asyncio.TimeoutError:
            return None
        if not line.strip():
            return None
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise HttpError(431, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await asyncio.wait_for(reader.readline(), timeout=io_timeout_s)
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading request headers")
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise HttpError(400, "connection closed mid-headers")
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "request headers too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length")
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > max_body_bytes:
        raise HttpError(
            413, f"request body of {length} bytes exceeds limit {max_body_bytes}"
        )
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked request bodies are not supported")

    body = b""
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=io_timeout_s
            )
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading request body")
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")

    path, query = _split_target(target)
    return Request(
        method=method.upper(), path=path, query=query, headers=headers, body=body
    )


def _split_target(target: str) -> Tuple[str, Dict[str, str]]:
    parts = urlsplit(target)
    return parts.path or "/", dict(parse_qsl(parts.query))


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialize ``response`` onto the stream and flush it."""
    reason = REASONS.get(response.status, "Unknown")
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        "Connection": "keep-alive" if keep_alive else "close",
        **response.headers,
        **(extra_headers or {}),
    }
    head = [f"HTTP/1.1 {response.status} {reason}"]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()


async def write_chunked_response(
    writer: asyncio.StreamWriter,
    response: ChunkedResponse,
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> int:
    """Stream a :class:`ChunkedResponse` onto the wire; returns body bytes.

    The head goes out before the first chunk is awaited, so a client
    blocked on slow analysis still sees headers (and its trace id)
    immediately.  Chunked framing self-delimits, so keep-alive works the
    same as with ``Content-Length`` responses.  Empty chunks are skipped:
    a zero-length frame would terminate the stream early.
    """
    reason = REASONS.get(response.status, "Unknown")
    headers = {
        "Content-Type": response.content_type,
        "Transfer-Encoding": "chunked",
        "Connection": "keep-alive" if keep_alive else "close",
        **response.headers,
        **(extra_headers or {}),
    }
    head = [f"HTTP/1.1 {response.status} {reason}"]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    sent = 0
    async for chunk in response.chunks:
        if not chunk:
            continue
        writer.write(f"{len(chunk):X}\r\n".encode("latin-1") + chunk + b"\r\n")
        sent += len(chunk)
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
    return sent
