"""The fleet's ``/statusz`` — one page for the whole shard set.

A single daemon's ``/statusz`` (:mod:`repro.server.statusz`) answers
"is this process healthy"; the fleet page answers the operator's next
question: "is the *fleet* healthy, and if not, which shard".  It renders
the worker table (state, port, pid, restarts, requests served), the
router's rolling request/latency windows, per-tenant quota rejections,
and the fleet-wide lifetime cache ratio from the exact-merged worker
collectors.

Same construction rules as the single-server page: inline CSS, no
JavaScript beyond a meta refresh, renders from ``curl`` output.  The
renderer is duck-typed against :class:`~repro.server.fleet.FleetRouter`
(``worker_table``, ``window``, ``quotas``, ``config``) so tests can
drive it from a stub.
"""

from __future__ import annotations

import html
import time
from typing import List, Optional

__all__ = ["render_fleet_statusz"]

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 1.5em; color: #1a1a2e; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
table { border-collapse: collapse; margin-top: 0.5em; }
th, td { border: 1px solid #c8c8d4; padding: 0.25em 0.7em; text-align: right; }
th { background: #eef0f6; } td.name, th.name { text-align: left; }
td.bad { color: #b00020; font-weight: 600; }
td.ok { color: #00691c; font-weight: 600; }
.muted { color: #6b6b7b; font-size: 0.9em; }
"""


def _fmt_ms(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1000.0:.1f}"


def _fmt_rate(per_second: float) -> str:
    return f"{per_second:.2f}"


def render_fleet_statusz(router, merged_metrics) -> str:
    """The dashboard HTML for one :class:`FleetRouter` instance.

    ``merged_metrics`` is the fleet-wide :class:`ScanMetrics` (worker
    collectors exact-merged with the router's own) the caller already
    gathered — the renderer never talks to workers itself.
    """
    cfg = router.config
    one_minute = router.window.window(60.0)
    five_minutes = router.window.window(300.0)
    uptime_s = (
        time.monotonic() - router._started_at if router._started_at else 0.0
    )

    from repro import __version__

    rows = router.worker_table()
    up = sum(1 for row in rows if row["state"] == "up")

    out: List[str] = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta http-equiv="refresh" content="5">',
        "<title>patchitpy fleet /statusz</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>patchitpy fleet &mdash; statusz</h1>",
        '<p class="muted">'
        f"version {html.escape(__version__)} &middot; "
        f"uptime {uptime_s:.0f}s &middot; "
        f"{up}/{len(rows)} workers up &middot; "
        f"jobs per worker {max(1, cfg.jobs)} &middot; "
        f"ring replicas {cfg.replicas} &middot; auto-refreshes every 5s</p>",
    ]

    # ---- worker table ----------------------------------------------------
    out.append("<h2>Workers</h2><table>")
    out.append(
        "<tr><th class=name>worker</th><th class=name>state</th><th>port</th>"
        "<th>pid</th><th>restarts</th><th>requests served</th>"
        "<th class=name>last failure</th></tr>"
    )
    for row in rows:
        state = str(row["state"])
        cells = "ok" if state == "up" else "bad"
        out.append(
            f"<tr><td class=name>{html.escape(str(row['id']))}</td>"
            f'<td class="name {cells}">{html.escape(state)}</td>'
            f"<td>{row['port'] if row['port'] is not None else '-'}</td>"
            f"<td>{row['pid'] if row['pid'] is not None else '-'}</td>"
            f"<td>{row['restarts']}</td><td>{row['proxied']}</td>"
            f"<td class=name>{html.escape(str(row['reason'] or ''))}</td></tr>"
        )
    out.append("</table>")

    # ---- front-door rates and latency percentiles ------------------------
    endpoints = sorted(
        {
            name.partition("/")[2]
            for name in set(one_minute.counters) | set(five_minutes.counters)
            if name.startswith("requests/")
        }
        | {
            name.partition("/")[2]
            for name in set(one_minute.histograms) | set(five_minutes.histograms)
            if name.startswith("latency/")
        }
    )
    out.append("<h2>Front door (rolling windows)</h2><table>")
    out.append(
        "<tr><th class=name>endpoint</th><th>req/s 1m</th><th>req/s 5m</th>"
        "<th>p50 ms 5m</th><th>p95 ms 5m</th><th>p99 ms 5m</th></tr>"
    )
    if not endpoints:
        out.append(
            '<tr><td class=name colspan="6">no requests in the window yet</td></tr>'
        )
    for endpoint in endpoints:
        latency = five_minutes.histograms.get("latency/" + endpoint)
        p50 = latency.quantile(0.5) if latency else None
        p95 = latency.quantile(0.95) if latency else None
        p99 = latency.quantile(0.99) if latency else None
        out.append(
            f"<tr><td class=name>{html.escape(endpoint)}</td>"
            f"<td>{_fmt_rate(one_minute.rate('requests/' + endpoint))}</td>"
            f"<td>{_fmt_rate(five_minutes.rate('requests/' + endpoint))}</td>"
            f"<td>{_fmt_ms(p50)}</td><td>{_fmt_ms(p95)}</td>"
            f"<td>{_fmt_ms(p99)}</td></tr>"
        )
    out.append("</table>")

    # ---- shed load: quota rejections by tenant ---------------------------
    out.append("<h2>Quota rejections by tenant (lifetime)</h2>")
    rejections = router.quotas.snapshot_rejections()
    if not rejections:
        out.append('<p class="muted">no requests shed by quota yet</p>')
    else:
        out.append("<table>")
        out.append("<tr><th class=name>tenant</th><th>rejections</th></tr>")
        for tenant in sorted(rejections):
            out.append(
                f"<tr><td class=name>{html.escape(tenant)}</td>"
                f"<td class=bad>{rejections[tenant]}</td></tr>"
            )
        out.append("</table>")

    # ---- error budget at the front door ----------------------------------
    out.append("<h2>Errors and shed load (rolling windows)</h2><table>")
    out.append(
        "<tr><th class=name>class</th><th>per s, 1m</th><th>per s, 5m</th>"
        "<th>total 5m</th></tr>"
    )
    for label, key in (
        ("5xx responses", "responses/5xx"),
        ("4xx responses", "responses/4xx"),
        ("429 quota shed", "responses/429"),
        ("503 no workers", "responses/503"),
        ("504 deadline missed", "responses/504"),
    ):
        total = five_minutes.total(key)
        cells = "bad" if total and key in ("responses/5xx", "responses/503") else ""
        out.append(
            f"<tr><td class=name>{label}</td>"
            f"<td>{_fmt_rate(one_minute.rate(key))}</td>"
            f"<td>{_fmt_rate(five_minutes.rate(key))}</td>"
            f'<td class="{cells}">{total}</td></tr>'
        )
    out.append("</table>")

    # ---- fleet-wide cache efficiency (exact merge of all workers) --------
    out.append("<h2>Cache, fleet-wide (lifetime)</h2>")
    rate = merged_metrics.cache_hit_rate()
    hits = merged_metrics.counters.get("cache_hits", 0)
    misses = merged_metrics.counters.get("cache_misses", 0)
    shared_hits = merged_metrics.counters.get("snippet_cache_hits", 0)
    if rate is None:
        out.append('<p class="muted">no cache traffic yet</p>')
    else:
        out.append(
            f"<p>{hits} hit(s) / {misses} miss(es) &mdash; "
            f"hit ratio <b>{rate:.1%}</b> &middot; "
            f"{shared_hits} served from the shared snippet tier</p>"
        )

    out.append(
        '<p class="muted">machine-readable twins: '
        '<a href="/metrics">/metrics</a> (fleet-merged Prometheus) and '
        '<a href="/healthz">/healthz</a> (JSON worker table)</p>'
    )
    out.append("</body></html>")
    return "\n".join(out) + "\n"
